"""Tests for block generation (paper §4.1)."""

import pytest

from repro.blocks import (
    AttentionSpec,
    BatchSpec,
    BlockKind,
    CompBlock,
    DataBlockId,
    TokenSlice,
    generate_blocks,
)
from repro.masks import CausalMask, LambdaMask, mask_workload_matrix


class TestAttentionSpec:
    def test_head_groups_default_to_kv_groups(self):
        spec = AttentionSpec(num_q_heads=8, num_kv_groups=2)
        assert spec.head_groups == 2
        assert spec.q_heads_per_group == 4

    def test_block_bytes(self):
        spec = AttentionSpec(num_q_heads=8, num_kv_groups=2, head_dim=128,
                             dtype_bytes=2)
        assert spec.q_block_bytes(1024) == 4 * 1024 * 128 * 2
        assert spec.kv_block_bytes(1024) == 2 * 1024 * 128 * 2
        assert spec.o_block_bytes(512) == spec.q_block_bytes(512)
        assert spec.slice_bytes(100) == 2 * (
            spec.q_block_bytes(100) + spec.kv_block_bytes(100)
            + spec.o_block_bytes(100)
        )

    def test_tile_flops(self):
        spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        assert spec.tile_flops(10) == 4 * 10 * 16 * 2

    def test_uneven_heads_rejected(self):
        with pytest.raises(ValueError):
            AttentionSpec(num_q_heads=7, num_kv_groups=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AttentionSpec().block_bytes("x", 10)


class TestIdentities:
    def test_token_slice_validation(self):
        with pytest.raises(ValueError):
            TokenSlice(0, 0, 5, 5)

    def test_data_block_kind_validation(self):
        with pytest.raises(ValueError):
            DataBlockId("bogus", 0, 0, 0)

    def test_comp_block_links(self):
        comp = CompBlock(seq_index=1, head_group=0, q_block=2, kv_block=3,
                         pairs=7)
        assert comp.q_input == DataBlockId(BlockKind.Q, 1, 2, 0)
        assert comp.kv_input == DataBlockId(BlockKind.KV, 1, 3, 0)
        assert comp.output == DataBlockId(BlockKind.O, 1, 2, 0)

    def test_comp_block_requires_pairs(self):
        with pytest.raises(ValueError):
            CompBlock(0, 0, 0, 0, pairs=0)


class TestBatchSpec:
    def test_build_with_shared_mask(self):
        batch = BatchSpec.build([10, 20], CausalMask())
        assert batch.total_tokens == 30

    def test_build_with_mask_list(self):
        batch = BatchSpec.build([10, 20], [CausalMask(), LambdaMask(1, 2)])
        assert batch.sequences[1].mask.window == 2

    def test_mismatched_masks_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec.build([10, 20], [CausalMask()])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec(tuple())


class TestGenerateBlocks:
    def test_slices_cover_tokens_exactly(self):
        batch = BatchSpec.build([100, 33], CausalMask())
        blocks = generate_blocks(batch, AttentionSpec(), block_size=16)
        by_seq = {}
        for ts in blocks.token_slices:
            by_seq.setdefault(ts.seq_index, []).append(ts)
        for seq_index, seq in enumerate(batch.sequences):
            slices = sorted(by_seq[seq_index], key=lambda t: t.block_index)
            assert slices[0].start == 0
            assert slices[-1].stop == seq.seqlen
            for a, b in zip(slices, slices[1:]):
                assert a.stop == b.start

    def test_comp_blocks_match_nonzero_tiles(self):
        mask = LambdaMask(sink=2, window=6)
        batch = BatchSpec.build([64], mask)
        spec = AttentionSpec(num_q_heads=4, num_kv_groups=2)
        blocks = generate_blocks(batch, spec, block_size=8)
        workload = mask_workload_matrix(mask, 64, 8)
        nonzero = int((workload > 0).sum())
        assert len(blocks.comp_blocks) == nonzero * spec.head_groups
        for comp in blocks.comp_blocks:
            assert comp.pairs == workload[comp.q_block, comp.kv_block]

    def test_masked_tiles_never_constructed(self):
        batch = BatchSpec.build([64], CausalMask())
        blocks = generate_blocks(batch, AttentionSpec(), block_size=8)
        for comp in blocks.comp_blocks:
            assert comp.q_block >= comp.kv_block

    def test_total_flops_and_bytes(self):
        batch = BatchSpec.build([32], CausalMask())
        spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=8)
        blocks = generate_blocks(batch, spec, block_size=16)
        expected_pairs = 32 * 33 // 2 * spec.head_groups
        assert blocks.total_pairs == expected_pairs
        assert blocks.total_bytes == spec.slice_bytes(16) * 2

    def test_tile_pairs_lookup(self):
        batch = BatchSpec.build([40], CausalMask())
        blocks = generate_blocks(batch, AttentionSpec(), block_size=16)
        assert blocks.tile_pairs(0, 0, 0) == 16 * 17 // 2
        assert blocks.tile_pairs(0, 1, 0) == 16 * 16
        assert blocks.tile_pairs(0, 0, 1) == 0

    def test_comp_blocks_of_output(self):
        batch = BatchSpec.build([32], CausalMask())
        blocks = generate_blocks(batch, AttentionSpec(num_q_heads=2,
                                                      num_kv_groups=1),
                                 block_size=16)
        by_output = blocks.comp_blocks_of_output()
        second_row = DataBlockId(BlockKind.O, 0, 1, 0)
        assert len(by_output[second_row]) == 2  # diagonal + first column

    def test_block_bytes_for_ragged_tail(self):
        batch = BatchSpec.build([20], CausalMask())
        spec = AttentionSpec()
        blocks = generate_blocks(batch, spec, block_size=16)
        tail = DataBlockId(BlockKind.Q, 0, 1, 0)
        assert blocks.block_bytes(tail) == spec.q_block_bytes(4)
