"""Tests for division scheduling, buffers and plan serialization."""

import pytest

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.masks import CausalMask
from repro.placement import PlacementConfig, place_blocks
from repro.scheduling import (
    BlockwiseAttention,
    BufferManager,
    CommLaunch,
    CommWait,
    build_schedule,
    serialize_schedule,
)
from repro.sim import ClusterSpec


def planned(seqlens=(96, 48), block_size=16, num_divisions=4, mask=None,
            machines=2, devices=2, seed=0):
    batch = BatchSpec.build(list(seqlens), mask or CausalMask())
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    block_set = generate_blocks(batch, spec, block_size=block_size)
    cluster = ClusterSpec(num_machines=machines, devices_per_machine=devices)
    placement = place_blocks(
        block_set, cluster, PlacementConfig(seed=seed, restarts=1)
    )
    schedule = build_schedule(block_set, placement, num_divisions)
    return block_set, placement, schedule


class TestBufferManager:
    def test_alloc_sequential(self):
        manager = BufferManager()
        assert [manager.alloc("q") for _ in range(3)] == [0, 1, 2]
        assert manager.high_water("q") == 3

    def test_free_and_reuse(self):
        manager = BufferManager()
        first = manager.alloc("kv")
        manager.alloc("kv")
        manager.free("kv", first)
        assert manager.alloc("kv") == first
        assert manager.high_water("kv") == 2

    def test_double_free_rejected(self):
        manager = BufferManager()
        slot = manager.alloc("q")
        manager.free("q", slot)
        with pytest.raises(ValueError):
            manager.free("q", slot)

    def test_namespaces_independent(self):
        manager = BufferManager()
        assert manager.alloc("q") == 0
        assert manager.alloc("kv") == 0
        assert manager.live_count("q") == 1


class TestDivisions:
    def test_every_block_scheduled_exactly_once(self):
        block_set, placement, schedule = planned()
        seen = []
        for device_schedule in schedule.device_schedules.values():
            seen.extend(device_schedule.all_blocks())
        assert sorted(seen) == sorted(block_set.comp_blocks)

    def test_blocks_stay_on_assigned_device(self):
        block_set, placement, schedule = planned()
        comp_dev = {
            comp: int(dev)
            for comp, dev in zip(block_set.comp_blocks, placement.comp_device)
        }
        for device, device_schedule in schedule.device_schedules.items():
            for comp in device_schedule.all_blocks():
                assert comp_dev[comp] == device

    def test_division_zero_is_communication_free(self):
        block_set, placement, schedule = planned()
        slice_idx = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }
        for device, device_schedule in schedule.device_schedules.items():
            assert device_schedule.fetches[0] == []
            for comp in device_schedule.divisions[0]:
                for block in comp.inputs:
                    home = int(
                        placement.slice_device[
                            slice_idx[(block.seq_index, block.block_index)]
                        ]
                    )
                    assert home == device

    def test_fetches_are_marginal(self):
        _, _, schedule = planned(seqlens=(128, 64), num_divisions=3)
        for device_schedule in schedule.device_schedules.values():
            flat = [
                block
                for fetch_list in device_schedule.fetches
                for block in fetch_list
            ]
            assert len(flat) == len(set(flat)), "remote block fetched twice"

    def test_output_sends_match_placement(self):
        block_set, placement, schedule = planned(seed=2)
        slice_idx = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }
        for device, device_schedule in schedule.device_schedules.items():
            expected = set()
            for comp in device_schedule.all_blocks():
                home = int(
                    placement.slice_device[
                        slice_idx[(comp.seq_index, comp.q_block)]
                    ]
                )
                if home != device:
                    expected.add(comp.output)
            assert set(device_schedule.output_sends) == expected

    def test_single_division(self):
        _, _, schedule = planned(num_divisions=1)
        for device_schedule in schedule.device_schedules.values():
            assert device_schedule.num_divisions == 1

    def test_invalid_divisions_rejected(self):
        block_set, placement, _ = planned()
        with pytest.raises(ValueError):
            build_schedule(block_set, placement, 0)


class TestSerialization:
    def test_every_wait_has_a_launch(self):
        _, _, schedule = planned()
        plan = serialize_schedule(schedule)
        for device_plan in plan.device_plans.values():
            launched = set()
            for instruction in device_plan.instructions:
                if isinstance(instruction, CommLaunch):
                    launched.add(instruction.op_id)
                elif isinstance(instruction, CommWait):
                    assert instruction.op_id in launched

    def test_sends_and_recvs_pair_up(self):
        _, _, schedule = planned(seqlens=(128, 64, 32))
        plan = serialize_schedule(schedule)
        sends, recvs = set(), set()
        for device, device_plan in plan.device_plans.items():
            for instruction in device_plan.instructions:
                if not isinstance(instruction, CommLaunch):
                    continue
                for send in instruction.sends:
                    sends.add((device, send.peer, send.tag))
                for recv in instruction.recvs:
                    recvs.add((recv.peer, device, recv.tag))
        assert sends == recvs

    def test_tiles_reference_valid_slots(self):
        _, _, schedule = planned()
        plan = serialize_schedule(schedule)
        for device_plan in plan.device_plans.values():
            sizes = device_plan.buffer_sizes
            for instruction in device_plan.instructions:
                if not isinstance(instruction, BlockwiseAttention):
                    continue
                for tile in instruction.tiles:
                    assert 0 <= tile.q_slot < sizes.get("q", 0)
                    assert 0 <= tile.kv_slot < sizes.get("kv", 0)
                    assert 0 <= tile.acc_slot < sizes.get("acc", 0)

    def test_o_slots_cover_local_outputs(self):
        block_set, placement, schedule = planned()
        plan = serialize_schedule(schedule)
        groups = block_set.attention.head_groups
        for device, device_plan in plan.device_plans.items():
            expected = {
                (ts.seq_index, ts.block_index, hg)
                for ts in device_plan.local_slices
                for hg in range(groups)
            }
            assert set(device_plan.o_slots) == expected

    def test_comm_bytes_match_placement_report(self):
        block_set, placement, schedule = planned(seqlens=(128, 48, 32))
        plan = serialize_schedule(schedule)
        assert plan.total_comm_bytes() == placement.comm_report().total_bytes

    def test_division_count_in_meta(self):
        _, _, schedule = planned(num_divisions=3)
        plan = serialize_schedule(schedule)
        assert plan.meta["num_divisions"] == 3


class TestBlockPool:
    """O(1)-removal block pool backing the division scheduler."""

    def _pool(self, n=5):
        from repro.scheduling.divisions import _BlockPool

        block_set, _, _ = planned()
        blocks = list(block_set.comp_blocks)[:n]
        return _BlockPool(blocks), blocks

    def test_iteration_preserves_order(self):
        pool, blocks = self._pool()
        assert list(pool) == blocks

    def test_removal_is_permanent_and_order_stable(self):
        pool, blocks = self._pool()
        pool.remove(blocks[2])
        pool.remove(blocks[0])
        assert list(pool) == [blocks[1], blocks[3], blocks[4]]
        assert len(pool) == 3 and bool(pool)

    def test_double_remove_rejected(self):
        pool, blocks = self._pool()
        pool.remove(blocks[1])
        with pytest.raises(ValueError):
            pool.remove(blocks[1])

    def test_drains_to_empty(self):
        pool, blocks = self._pool()
        for block in blocks:
            pool.remove(block)
        assert not pool and list(pool) == []
