"""Tests for the multi-tenant plan service (repro.service)."""

import threading
import time

import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import batch_signature
from repro.pipeline import ServicePlannerBackend, plan_fingerprint
from repro.service import (
    AdmissionController,
    FairScheduler,
    HashRing,
    PlanRejected,
    PlanService,
    ShardedPlanStore,
    WorkloadForecast,
    signature_key,
)


def make_planner():
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(cluster, attention,
                      DCPConfig(block_size=16, restarts=1))


def batch(seqlens):
    return BatchSpec.build(list(seqlens), make_mask("causal"))


class CountingPlanner:
    """Wraps a planner, counting plan_batch dispatches (thread-safe)."""

    def __init__(self, planner=None, delay_s=0.0, gate=None):
        self.planner = planner if planner is not None else make_planner()
        self.delay_s = delay_s
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()

    def plan_batch(self, spec):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0)
        if self.delay_s:
            time.sleep(self.delay_s)
        return self.planner.plan_batch(spec)


# -- consistent hashing / sharded store ---------------------------------------


class TestHashRing:
    def test_deterministic_assignment(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key{i}" for i in range(100)]
        first = [ring.node_for(key) for key in keys]
        assert first == [ring.node_for(key) for key in keys]
        assert set(first) == {"a", "b", "c"}  # all nodes take traffic

    def test_add_node_moves_only_a_fraction(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key{i}" for i in range(400)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add("d")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        # Consistency: only keys now owned by d moved, roughly 1/4.
        assert 0 < moved < len(keys) // 2
        for key in keys:
            if ring.node_for(key) != before[key]:
                assert ring.node_for(key) == "d"

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")


class TestShardedPlanStore:
    def test_round_trip_spreads_across_shards(self):
        store = ShardedPlanStore(shards=4)
        for i in range(64):
            store.put(f"sig/{i:04x}", bytes([i]) * 8)
        assert store.try_get("sig/0001") == b"\x01" * 8
        assert store.try_get("sig/ffff") is None
        sizes = store.shard_sizes()
        assert len(sizes) == 4
        assert sum(1 for size in sizes.values() if size > 0) >= 2

    def test_add_node_rebalances_and_keeps_every_key(self):
        store = ShardedPlanStore(shards=3)
        payloads = {f"sig/{i:04x}": bytes([i % 251]) * 16 for i in range(96)}
        for key, value in payloads.items():
            store.put(key, value)
        name, moved = store.add_node()
        assert name == "shard3"
        assert moved > 0
        assert store.rebalanced_keys == moved
        # Every key still readable, byte-identical, from its new owner.
        for key, value in payloads.items():
            assert store.try_get(key) == value
        # The new shard actually took residency.
        assert store.shard_sizes()[name] > 0

    def test_per_shard_residency_budget(self):
        store = ShardedPlanStore(shards=2, max_bytes_per_shard=64)
        for i in range(32):
            store.put(f"sig/{i:04x}", b"x" * 30)
        assert all(size <= 64 for size in store.shard_sizes().values())


# -- admission + fair queueing ------------------------------------------------


class TestFairScheduler:
    def test_wdrr_serves_proportionally_to_weight(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=64)
        )
        scheduler.set_weight("heavy", 4.0)
        scheduler.set_weight("light", 1.0)
        for i in range(40):
            scheduler.submit("heavy", ("h", i))
            scheduler.submit("light", ("l", i))
        served = [scheduler.pop(timeout=1.0)[0] for _ in range(30)]
        heavy = served.count("heavy")
        light = served.count("light")
        # 4:1 credit per round -> heavy drains ~4x light's jobs.
        assert heavy == 24 and light == 6

    def test_fifo_within_a_tenant(self):
        scheduler = FairScheduler()
        for i in range(5):
            scheduler.submit("t", i)
        order = [scheduler.pop(timeout=1.0)[1] for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_rejects_on_tenant_queue_depth(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=2,
                                          retry_after_s=0.03)
        )
        scheduler.submit("t", 1)
        scheduler.submit("t", 2)
        with pytest.raises(PlanRejected) as info:
            scheduler.submit("t", 3)
        assert info.value.reason == "tenant_queue_full"
        assert info.value.tenant == "t"
        assert info.value.retry_after_s == pytest.approx(0.03)
        # Another tenant is unaffected: caps are per-tenant.
        scheduler.submit("other", 1)

    def test_rejects_on_global_saturation(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=8,
                                          max_queued_total=3)
        )
        for who in ("a", "b", "c"):
            scheduler.submit(who, 0)
        with pytest.raises(PlanRejected) as info:
            scheduler.submit("d", 0)
        assert info.value.reason == "service_saturated"

    def test_backoff_retry_succeeds_after_drain(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=1,
                                          retry_after_s=0.01)
        )
        scheduler.submit("t", "first")
        deadline = time.time() + 5.0
        while True:
            try:
                scheduler.submit("t", "second")
                break
            except PlanRejected as exc:
                assert time.time() < deadline, "backoff never admitted"
                # Drain one job like a worker would, then honor the hint.
                popped = scheduler.pop(timeout=1.0)
                if popped is not None:
                    scheduler.task_done(popped[0])
                time.sleep(exc.retry_after_s)

    def test_close_wakes_blocked_pop(self):
        scheduler = FairScheduler()
        results = []

        def popper():
            results.append(scheduler.pop(timeout=10.0))

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        scheduler.close()
        thread.join(timeout=5.0)
        assert results == [None]

    def test_rejection_metrics(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=1)
        )
        scheduler.submit("t", 1)
        for _ in range(3):
            with pytest.raises(PlanRejected):
                scheduler.submit("t", 2)
        snapshot = scheduler.metrics.snapshot()
        assert snapshot["service.rejected"]["value"] == 3
        assert snapshot["service.rejected_tenant_queue_full"]["value"] == 3
        assert snapshot["service.admitted"]["value"] == 1


# -- workload forecasting -----------------------------------------------------


class TestWorkloadForecast:
    def test_predicts_hottest_signatures_first(self):
        forecast = WorkloadForecast()
        for _ in range(5):
            forecast.record("hot")
        for _ in range(2):
            forecast.record("warm")
        forecast.record("cold")
        forecast.roll_epoch()
        assert forecast.predict(top_k=2) == ["hot", "warm"]

    def test_decay_prefers_recent_epochs(self):
        forecast = WorkloadForecast(decay=0.5)
        forecast.record("old", count=3)
        forecast.roll_epoch()
        forecast.record("new", count=2)
        forecast.roll_epoch()
        # new scores 2.0, old scores 3 * 0.5 = 1.5.
        assert forecast.predict(top_k=2) == ["new", "old"]

    def test_history_bound(self):
        forecast = WorkloadForecast(history=2)
        forecast.record("ancient", count=100)
        forecast.roll_epoch()
        forecast.roll_epoch()
        forecast.roll_epoch()  # ancient's epoch fell out of the window
        assert forecast.scores() == {}


# -- the service facade -------------------------------------------------------


class TestPlanService:
    def test_concurrent_tenants_one_signature_one_dispatch(self):
        planner = CountingPlanner()
        spec = batch([48, 32])
        with PlanService(planner, workers=2) as service:
            plans = [None] * 8
            errors = []

            def client(who):
                try:
                    plans[who] = service.fetch_plan(
                        f"tenant{who}", spec, timeout=30.0
                    )
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(who,))
                for who in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors
        assert planner.calls == 1  # exactly one dispatch for 8 tenants
        assert all(plan is plans[0] for plan in plans)

    def test_fingerprint_identical_to_synchronous(self):
        spec = batch([64, 32])
        reference = make_planner().plan_batch(spec)
        with PlanService(make_planner(), workers=1) as service:
            served = service.fetch_plan("t", spec, timeout=30.0)
            assert plan_fingerprint(served) == plan_fingerprint(reference)
            # And again after a cache-eviction round trip through the
            # sharded store's wire encoding.
            service.cache.invalidate()
            decoded = service.fetch_plan("t", spec, timeout=30.0)
            assert plan_fingerprint(decoded) == plan_fingerprint(reference)

    def test_store_hit_skips_replanning(self):
        planner = CountingPlanner()
        spec = batch([48, 16])
        with PlanService(planner, workers=1) as service:
            service.fetch_plan("t", spec, timeout=30.0)
            assert planner.calls == 1
            service.cache.invalidate()  # evict from the hot cache only
            service.fetch_plan("t", spec, timeout=30.0)
            assert planner.calls == 1  # decoded from the store
            assert service.stats()["store_hits"] == 1

    def test_rejection_is_typed_and_not_sticky(self):
        gate = threading.Event()
        planner = CountingPlanner(gate=gate)
        with PlanService(
            planner,
            workers=1,
            admission=AdmissionController(max_queued_per_tenant=1,
                                          max_inflight_per_tenant=1,
                                          retry_after_s=0.01),
        ) as service:
            fetches = []

            def background(spec):
                thread = threading.Thread(
                    target=lambda: fetches.append(
                        service.fetch_plan("t", spec, timeout=30.0)
                    )
                )
                thread.start()
                return thread

            first = background(batch([32]))   # worker picks it up, blocks
            deadline = time.time() + 5.0
            while planner.calls < 1 and time.time() < deadline:
                time.sleep(0.005)
            second = background(batch([48]))  # sits in t's queue
            deadline = time.time() + 5.0
            while service.scheduler.total_queued < 1 \
                    and time.time() < deadline:
                time.sleep(0.005)
            rejected = batch([64])
            with pytest.raises(PlanRejected) as info:
                service.fetch_plan("t", rejected, timeout=30.0)
            assert info.value.reason == "tenant_queue_full"
            assert info.value.retry_after_s > 0
            gate.set()
            first.join(timeout=30.0)
            second.join(timeout=30.0)
            # The shed reservation was abandoned, not stranded: the
            # same signature plans fine on retry.
            plan = service.fetch_plan("t", rejected, timeout=30.0)
            assert plan is not None
            assert len(fetches) == 2

    def test_prewarm_and_demand_never_double_plan(self):
        planner = CountingPlanner()
        hot, warm = batch([32, 16]), batch([48, 16])
        fillers = [batch([64 + 16 * i]) for i in range(6)]
        with PlanService(planner, workers=2, cache_capacity=6,
                         prewarm_top_k=16) as service:
            for _ in range(3):
                service.fetch_plan("t", hot, timeout=30.0)
            for _ in range(2):
                service.fetch_plan("t", warm, timeout=30.0)
            planned_once = planner.calls
            assert planned_once == 2
            assert service.roll_epoch() == 0  # hot set fully cached
            # Churn hot+warm out of the 6-entry cache with fillers.
            for filler in fillers:
                service.fetch_plan("t", filler, timeout=30.0)
            assert planner.calls == planned_once + len(fillers)
            assert service.cache.peek(batch_signature(hot)) is None
            # Epoch roll: forecast still ranks hot/warm from history;
            # pre-warm promotes them from the store without planning.
            service.roll_epoch()
            assert planner.calls == planned_once + len(fillers)
            assert service.cache.peek(batch_signature(hot)) is not None
            # The next demand fetch is a pre-warm hit.
            service.fetch_plan("t", hot, timeout=30.0)
            stats = service.stats()
            assert stats["prewarm_hits"] == 1
            assert planner.calls == planned_once + len(fillers)

    def test_prewarm_reservations_do_not_skew_demand_hit_rate(self):
        planner = CountingPlanner()
        spec = batch([32, 32])
        with PlanService(planner, workers=1) as service:
            service.fetch_plan("t", spec, timeout=30.0)
            before = service.cache.stats()
            service.prewarm([batch_signature(spec)])
            after = service.cache.stats()
            assert (after["hits"], after["misses"]) == (
                before["hits"], before["misses"]
            )

    def test_signature_key_stable_and_shard_friendly(self):
        a = signature_key(batch_signature(batch([32, 16])))
        b = signature_key(batch_signature(batch([32, 16])))
        c = signature_key(batch_signature(batch([16, 32])))
        assert a == b and a != c and a.startswith("sig/")


class TestServicePlannerBackend:
    def test_pipeline_plans_through_the_service(self):
        from repro.pipeline import OverlapPipeline

        planner = CountingPlanner()
        batches = [batch([64, 32]), batch([48, 16]), batch([64, 32])]
        with PlanService(planner, workers=2) as service:
            backend = ServicePlannerBackend(service, tenant="pipeline")
            pipeline = OverlapPipeline(
                batches, planner, lookahead=1, backend=backend
            )
            plans = [plan for _data, plan in pipeline]
        assert len(plans) == 3
        # The repeated signature was served from the service cache.
        assert planner.calls == 2
        assert plan_fingerprint(plans[0]) == plan_fingerprint(plans[2])
