"""Tests for the packing-strategy module (repro.data.packing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PACKERS,
    pack_batches,
    pack_first_fit_decreasing,
    pack_length_grouped,
    pack_sequential,
    pack_workload_balanced,
    packing_stats,
    sample_lengths,
)

LENGTHS = [9000, 200, 4100, 700, 7800, 300, 2500, 1200, 6200, 150]
BUDGET = 10000


lengths_strategy = st.lists(
    st.integers(min_value=1, max_value=8000), min_size=1, max_size=40
)


class TestInvariants:
    """Properties every packer must satisfy."""

    @pytest.mark.parametrize("name", sorted(PACKERS))
    def test_conserves_tokens(self, name):
        batches = PACKERS[name](LENGTHS, token_budget=BUDGET)
        assert sorted(n for batch in batches for n in batch) == sorted(
            LENGTHS
        )

    @pytest.mark.parametrize("name", sorted(PACKERS))
    def test_respects_budget(self, name):
        batches = PACKERS[name](LENGTHS, token_budget=BUDGET)
        assert all(sum(batch) <= BUDGET for batch in batches)

    @pytest.mark.parametrize("name", sorted(PACKERS))
    def test_caps_lengths(self, name):
        batches = PACKERS[name](LENGTHS, token_budget=BUDGET, max_seqlen=4096)
        assert all(n <= 4096 for batch in batches for n in batch)

    @pytest.mark.parametrize("name", sorted(PACKERS))
    def test_no_empty_batches(self, name):
        batches = PACKERS[name](LENGTHS, token_budget=BUDGET)
        assert all(batch for batch in batches)

    @pytest.mark.parametrize("name", sorted(PACKERS))
    def test_rejects_bad_budget(self, name):
        with pytest.raises(ValueError):
            PACKERS[name](LENGTHS, token_budget=0)

    @pytest.mark.parametrize("name", sorted(PACKERS))
    @given(lengths=lengths_strategy)
    @settings(max_examples=25, deadline=None)
    def test_property_budget_and_conservation(self, name, lengths):
        batches = PACKERS[name](lengths, token_budget=8192)
        flat = sorted(n for batch in batches for n in batch)
        assert flat == sorted(min(n, 8192) for n in lengths)
        assert all(sum(batch) <= 8192 for batch in batches)


class TestStrategies:
    def test_sequential_matches_pack_batches(self):
        assert pack_sequential(LENGTHS, BUDGET) == pack_batches(
            LENGTHS, BUDGET
        )

    def test_ffd_never_needs_more_batches(self):
        for seed in range(4):
            lengths = sample_lengths("longdatacollections", 120, seed=seed)
            lengths = [min(int(n), BUDGET) for n in lengths]
            ffd = pack_first_fit_decreasing(lengths, BUDGET)
            sequential = pack_sequential(lengths, BUDGET)
            assert len(ffd) <= len(sequential)

    def test_workload_balanced_beats_sequential_imbalance(self):
        lengths = sample_lengths("longdatacollections", 200, seed=1)
        lengths = [min(int(n), BUDGET) for n in lengths]
        wlb = packing_stats(pack_workload_balanced(lengths, BUDGET))
        seq = packing_stats(pack_sequential(lengths, BUDGET))
        assert (
            wlb["workload_imbalance"] <= seq["workload_imbalance"] + 1e-9
        )

    def test_workload_balanced_same_iteration_count_or_fewer(self):
        lengths = sample_lengths("longdatacollections", 200, seed=2)
        lengths = [min(int(n), BUDGET) for n in lengths]
        wlb = pack_workload_balanced(lengths, BUDGET)
        seq = pack_sequential(lengths, BUDGET)
        # WLB fixes the batch count to sequential's, opening extras only
        # when budgets force it.
        assert len(wlb) <= len(seq) + 2

    def test_length_grouped_minimizes_intra_spread(self):
        lengths = sample_lengths("longdatacollections", 200, seed=3)
        lengths = [min(int(n), BUDGET) for n in lengths]
        grouped = packing_stats(pack_length_grouped(lengths, BUDGET))
        sequential = packing_stats(pack_sequential(lengths, BUDGET))
        assert (
            grouped["max_intra_spread"] <= sequential["max_intra_spread"]
        )

    def test_single_oversized_sequence(self):
        batches = pack_first_fit_decreasing([50000], token_budget=BUDGET)
        assert batches == [[BUDGET]]

    def test_empty_input(self):
        for name, packer in PACKERS.items():
            assert packer([], token_budget=BUDGET) == []


class TestStats:
    def test_empty(self):
        stats = packing_stats([])
        assert stats["num_batches"] == 0

    def test_balanced_batches_zero_imbalance(self):
        stats = packing_stats([[100, 100], [100, 100]])
        assert stats["token_imbalance"] == pytest.approx(0.0)
        assert stats["workload_imbalance"] == pytest.approx(0.0)

    def test_skewed_batches_positive_imbalance(self):
        stats = packing_stats([[1000], [10]])
        assert stats["token_imbalance"] > 0.9
        assert stats["workload_imbalance"] > stats["token_imbalance"]

    def test_intra_spread(self):
        stats = packing_stats([[1000, 10]])
        assert stats["max_intra_spread"] == pytest.approx(100.0)
