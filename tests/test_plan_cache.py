"""Tests for the LRU plan cache."""

import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import PlanCache, batch_signature


def make_cache(capacity=4):
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    planner = DCPPlanner(cluster, attention,
                         DCPConfig(block_size=16, restarts=1))
    return PlanCache(planner, capacity=capacity)


def batch(seqlens, mask_name="causal", **kw):
    return BatchSpec.build(list(seqlens), make_mask(mask_name, **kw))


class TestSignature:
    def test_same_shape_same_signature(self):
        assert batch_signature(batch([32, 16])) == batch_signature(
            batch([32, 16])
        )

    def test_mask_params_distinguish(self):
        a = batch([32], "lambda", sink=2, window=8)
        b = batch([32], "lambda", sink=2, window=16)
        assert batch_signature(a) != batch_signature(b)

    def test_order_matters(self):
        assert batch_signature(batch([32, 16])) != batch_signature(
            batch([16, 32])
        )


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = make_cache()
        first = cache.plan_batch(batch([48, 32]))
        second = cache.plan_batch(batch([48, 32]))
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_different_batches_miss(self):
        cache = make_cache()
        cache.plan_batch(batch([48, 32]))
        cache.plan_batch(batch([48, 16]))
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction(self):
        cache = make_cache(capacity=2)
        a, b, c = batch([16]), batch([32]), batch([48])
        cache.plan_batch(a)
        cache.plan_batch(b)
        cache.plan_batch(a)  # refresh a; b is now least recent
        cache.plan_batch(c)  # evicts b
        assert len(cache) == 2
        misses_before = cache.misses
        cache.plan_batch(b)
        assert cache.misses == misses_before + 1

    def test_clear(self):
        cache = make_cache()
        cache.plan_batch(batch([16]))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_cache(capacity=0)

    def test_cached_plans_execute(self):
        import numpy as np

        from repro.runtime import (
            BatchInputs,
            SimExecutor,
            reference_batch_outputs,
        )

        cache = make_cache()
        plan = cache.plan_batch(batch([64, 32]))
        plan = cache.plan_batch(batch([64, 32]))  # from cache
        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=0)
        executor.load_inputs(inputs)
        executor.run()
        for out, ref in zip(executor.gather_outputs(),
                            reference_batch_outputs(plan.block_set, inputs)):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)


class TestThreadSafety:
    """PlanCache is shared by the overlap pipeline's planner workers."""

    def test_concurrent_mixed_access(self):
        import threading

        cache = make_cache(capacity=4)
        batches = [batch([16 * (1 + i)]) for i in range(6)]
        errors = []
        lookups_per_thread = 30

        def worker(seed):
            try:
                for i in range(lookups_per_thread):
                    plan = cache.plan_batch(batches[(seed + i) % len(batches)])
                    assert plan.num_devices == 2
                    if i % 7 == 0:
                        cache.stats()
                        len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * lookups_per_thread
        assert len(cache) <= cache.capacity

    def test_concurrent_get_put_consistency(self):
        import threading

        from repro.core import batch_signature

        cache = make_cache(capacity=16)
        spec = batch([48, 32])
        key = batch_signature(spec)
        plan = cache.plan_batch(spec)
        seen = []

        def reader():
            for _ in range(200):
                got = cache.get(key)
                if got is not None:
                    seen.append(got)

        def writer():
            for _ in range(200):
                cache.put(key, plan)

        threads = [threading.Thread(target=reader) for _ in range(4)] + [
            threading.Thread(target=writer) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen and all(got is plan for got in seen)
