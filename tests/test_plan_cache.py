"""Tests for the LRU plan cache."""

import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import PlanCache, batch_signature


def make_cache(capacity=4):
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    planner = DCPPlanner(cluster, attention,
                         DCPConfig(block_size=16, restarts=1))
    return PlanCache(planner, capacity=capacity)


def batch(seqlens, mask_name="causal", **kw):
    return BatchSpec.build(list(seqlens), make_mask(mask_name, **kw))


class TestSignature:
    def test_same_shape_same_signature(self):
        assert batch_signature(batch([32, 16])) == batch_signature(
            batch([32, 16])
        )

    def test_mask_params_distinguish(self):
        a = batch([32], "lambda", sink=2, window=8)
        b = batch([32], "lambda", sink=2, window=16)
        assert batch_signature(a) != batch_signature(b)

    def test_order_matters(self):
        assert batch_signature(batch([32, 16])) != batch_signature(
            batch([16, 32])
        )


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = make_cache()
        first = cache.plan_batch(batch([48, 32]))
        second = cache.plan_batch(batch([48, 32]))
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_different_batches_miss(self):
        cache = make_cache()
        cache.plan_batch(batch([48, 32]))
        cache.plan_batch(batch([48, 16]))
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction(self):
        cache = make_cache(capacity=2)
        a, b, c = batch([16]), batch([32]), batch([48])
        cache.plan_batch(a)
        cache.plan_batch(b)
        cache.plan_batch(a)  # refresh a; b is now least recent
        cache.plan_batch(c)  # evicts b
        assert len(cache) == 2
        misses_before = cache.misses
        cache.plan_batch(b)
        assert cache.misses == misses_before + 1

    def test_clear(self):
        cache = make_cache()
        cache.plan_batch(batch([16]))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_cache(capacity=0)

    def test_cached_plans_execute(self):
        import numpy as np

        from repro.runtime import (
            BatchInputs,
            SimExecutor,
            reference_batch_outputs,
        )

        cache = make_cache()
        plan = cache.plan_batch(batch([64, 32]))
        plan = cache.plan_batch(batch([64, 32]))  # from cache
        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=0)
        executor.load_inputs(inputs)
        executor.run()
        for out, ref in zip(executor.gather_outputs(),
                            reference_batch_outputs(plan.block_set, inputs)):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)


class TestThreadSafety:
    """PlanCache is shared by the overlap pipeline's planner workers."""

    def test_concurrent_mixed_access(self):
        import threading

        cache = make_cache(capacity=4)
        batches = [batch([16 * (1 + i)]) for i in range(6)]
        errors = []
        lookups_per_thread = 30

        def worker(seed):
            try:
                for i in range(lookups_per_thread):
                    plan = cache.plan_batch(batches[(seed + i) % len(batches)])
                    assert plan.num_devices == 2
                    if i % 7 == 0:
                        cache.stats()
                        len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * lookups_per_thread
        assert len(cache) <= cache.capacity

    def test_reserve_exactly_one_dispatch_under_contention(self):
        """N threads reserving one signature => one planner dispatch.

        Regression for the lock-guarded get/put added in PR 2: the
        check-cache / check-in-flight / claim sequence must be atomic,
        or two racing threads both plan the signature.  A counting
        backend stub stands in for the planner worker.
        """
        import threading

        from repro.core import batch_signature

        class CountingBackendStub:
            def __init__(self, plan):
                self.plan = plan
                self.dispatches = 0
                self._lock = threading.Lock()

            def dispatch(self):
                with self._lock:
                    self.dispatches += 1
                return self.plan

        cache = make_cache(capacity=8)
        spec = batch([48, 32])
        key = batch_signature(spec)
        stub = CountingBackendStub(cache.planner.plan_batch(spec))
        barrier = threading.Barrier(12)
        results = []
        errors = []
        lock = threading.Lock()

        def worker():
            try:
                barrier.wait()
                status, payload, _epoch = cache.reserve(key)
                if status == "own":
                    plan = stub.dispatch()
                    cache.fulfill(key, plan)
                elif status == "wait":
                    plan = payload.result(timeout=5)
                else:
                    plan = payload
                with lock:
                    results.append(plan)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert stub.dispatches == 1
        assert len(results) == 12
        assert all(plan is stub.plan for plan in results)
        assert cache.get(key) is stub.plan

    def test_reserve_stress_many_rounds_and_keys(self):
        """Repeated contention rounds: one dispatch per (round, key)."""
        import threading

        from repro.core import batch_signature

        cache = make_cache(capacity=32)
        specs = [batch([16 * (1 + i)]) for i in range(3)]
        keys = [batch_signature(s) for s in specs]
        plans = {k: cache.planner.plan_batch(s)
                 for k, s in zip(keys, specs)}
        dispatches = {k: 0 for k in keys}
        lock = threading.Lock()
        errors = []

        def worker(seed):
            try:
                for round_index in range(10):
                    key = keys[(seed + round_index) % len(keys)]
                    status, payload, _epoch = cache.reserve(key)
                    if status == "own":
                        with lock:
                            dispatches[key] += 1
                        cache.fulfill(key, plans[key])
                    elif status == "wait":
                        assert payload.result(timeout=5) is plans[key]
                    else:
                        assert payload is plans[key]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every key is planned exactly once, ever: after the first
        # fulfill it is cached, so later rounds are hits.
        assert all(count == 1 for count in dispatches.values())

    def test_abandoned_reservation_releases_waiters(self):
        import threading

        from repro.core import PlanAbandoned, batch_signature

        cache = make_cache()
        key = batch_signature(batch([48, 32]))
        status, _future, _epoch = cache.reserve(key)
        assert status == "own"
        status, future, _epoch = cache.reserve(key)
        assert status == "wait"
        released = []

        def waiter():
            try:
                future.result(timeout=5)
            except PlanAbandoned:
                released.append(True)

        thread = threading.Thread(target=waiter)
        thread.start()
        cache.abandon(key)
        thread.join(timeout=5)
        assert released == [True]
        # The key is claimable again after the abandon.
        status, _future, _epoch = cache.reserve(key)
        assert status == "own"
        cache.abandon(key)

    def test_invalidate_drops_matching_entries_and_reservations(self):
        from repro.core import PlanAbandoned, batch_signature

        cache = make_cache(capacity=8)
        stay, go = batch([16]), batch([32])
        cache.plan_batch(stay)
        cache.plan_batch(go)
        go_key = batch_signature(go)
        pending = batch([48])
        pending_key = batch_signature(pending)
        status, future, _epoch = cache.reserve(pending_key)
        assert status == "own"
        dropped = cache.invalidate(
            lambda key: key in (go_key, pending_key)
        )
        assert dropped == 1  # one cached entry; the reservation is extra
        assert cache.get(batch_signature(stay)) is not None
        assert batch_signature(go) not in cache
        with pytest.raises(PlanAbandoned):
            future.result(timeout=1)
        assert cache.stats()["invalidations"] == 1

    def test_invalidate_all(self):
        cache = make_cache()
        cache.plan_batch(batch([16]))
        cache.plan_batch(batch([32]))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_publish_rejected_after_invalidation_epoch(self):
        """A plan computed across an invalidation (the pipeline's retry
        path) must not resurrect the stale entry."""
        from repro.core import batch_signature

        cache = make_cache()
        spec = batch([48, 32])
        key = batch_signature(spec)
        epoch = cache.epoch
        status, _future, _epoch = cache.reserve(key)
        assert status == "own"
        plan = cache.planner.plan_batch(spec)
        cache.invalidate()  # bumps the epoch, drops the reservation
        assert not cache.publish(key, plan, epoch)
        assert key not in cache

    def test_publish_with_current_epoch_fulfills_waiters(self):
        from repro.core import batch_signature

        cache = make_cache()
        spec = batch([48, 32])
        key = batch_signature(spec)
        epoch = cache.epoch
        assert cache.reserve(key)[0] == "own"
        status, future, _epoch = cache.reserve(key)
        assert status == "wait"
        plan = cache.planner.plan_batch(spec)
        assert cache.publish(key, plan, epoch)
        assert future.result(timeout=1) is plan
        assert cache.get(key) is plan

    def test_publish_honors_surviving_reservation_across_epochs(self):
        """An invalidation that does not target a key must not strand
        that key's waiters: the surviving reservation is fulfilled even
        though the global epoch moved."""
        from repro.core import batch_signature

        cache = make_cache()
        keep_spec, drop_spec = batch([48, 32]), batch([16])
        keep_key = batch_signature(keep_spec)
        drop_key = batch_signature(drop_spec)
        epoch = cache.epoch
        assert cache.reserve(keep_key)[0] == "own"
        status, future, _epoch = cache.reserve(keep_key)
        assert status == "wait"
        cache.plan_batch(drop_spec)
        cache.invalidate(lambda key: key == drop_key)  # bumps the epoch
        plan = cache.planner.plan_batch(keep_spec)
        assert cache.publish(keep_key, plan, epoch)  # reservation survived
        assert future.result(timeout=1) is plan

    def test_publish_never_adopts_post_invalidation_reservation(self):
        """A stale (pre-invalidation) publication must not fulfill a
        reservation a *newer* cohort created after the invalidation —
        invalidate(None) exists exactly to force re-planning for state
        the key does not capture."""
        from repro.core import batch_signature

        cache = make_cache()
        spec = batch([48, 32])
        key = batch_signature(spec)
        old_epoch = cache.epoch
        assert cache.reserve(key)[0] == "own"
        stale_plan = cache.planner.plan_batch(spec)
        cache.invalidate()  # pops the old reservation, bumps the epoch
        assert cache.reserve(key)[0] == "own"  # new cohort claims it
        status, waiter, _epoch = cache.reserve(key)
        assert status == "wait"
        # The old cohort's late publication is refused outright...
        assert not cache.publish(key, stale_plan, old_epoch)
        assert key not in cache
        assert not waiter.done()
        # ...and its late failure cannot shoot the new claim down.
        cache.abandon(key, RuntimeError("old crash"), epoch=old_epoch)
        assert not waiter.done()
        # The new cohort publishes normally.
        fresh_plan = cache.planner.plan_batch(spec)
        assert cache.publish(key, fresh_plan, cache.epoch)
        assert waiter.result(timeout=1) is fresh_plan

    def test_fulfill_after_invalidate_does_not_resurrect(self):
        """A worker finishing after invalidation must not re-publish."""
        from repro.core import batch_signature

        cache = make_cache()
        key = batch_signature(batch([48, 32]))
        status, _future, _epoch = cache.reserve(key)
        assert status == "own"
        plan = cache.planner.plan_batch(batch([48, 32]))
        cache.invalidate(lambda k: k == key)
        assert not cache.fulfill(key, plan)
        assert key not in cache

    def test_concurrent_get_put_consistency(self):
        import threading

        from repro.core import batch_signature

        cache = make_cache(capacity=16)
        spec = batch([48, 32])
        key = batch_signature(spec)
        plan = cache.plan_batch(spec)
        seen = []

        def reader():
            for _ in range(200):
                got = cache.get(key)
                if got is not None:
                    seen.append(got)

        def writer():
            for _ in range(200):
                cache.put(key, plan)

        threads = [threading.Thread(target=reader) for _ in range(4)] + [
            threading.Thread(target=writer) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen and all(got is plan for got in seen)
