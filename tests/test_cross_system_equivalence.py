"""Randomized cross-system equivalence: every planner, same numbers.

The repository's central invariant: whatever the planner (DCP with
either scheduler, ring, zigzag, TE, Ulysses, FlexSP), whatever the mask
and sequence mix, the executed plan reproduces dense masked attention.
Hypothesis drives the batch shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    FlexSPPlanner,
    RingAttentionPlanner,
    TransformerEnginePlanner,
    UlyssesPlanner,
)
from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask, LambdaMask, SharedQuestionMask
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import ClusterSpec

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=8)
CLUSTER = ClusterSpec(num_machines=1, devices_per_machine=2)

batch_strategy = st.lists(
    st.integers(min_value=8, max_value=160), min_size=1, max_size=4
)
mask_strategy = st.sampled_from(
    [
        CausalMask(),
        LambdaMask(sink=4, window=16),
        SharedQuestionMask(num_answers=2, answer_fraction=0.25),
    ]
)


def _check(planner, block_set, seed):
    plan = planner.plan(block_set, CLUSTER)
    executor = SimExecutor(plan)
    inputs = BatchInputs.random(block_set, seed=seed)
    executor.load_inputs(inputs)
    executor.run()
    outputs = executor.gather_outputs()
    references = reference_batch_outputs(block_set, inputs)
    for out, ref in zip(outputs, references):
        np.testing.assert_allclose(out, ref, rtol=3e-4, atol=3e-5)


@given(seqlens=batch_strategy, mask=mask_strategy, seed=st.integers(0, 100))
@settings(max_examples=12, deadline=None)
def test_dcp_random_batches(seqlens, mask, seed):
    block_set = generate_blocks(
        BatchSpec.build(seqlens, mask), ATTENTION, block_size=16
    )
    planner = DCPPlanner(
        CLUSTER, ATTENTION, DCPConfig(block_size=16, restarts=1)
    )
    _check(planner, block_set, seed)


@given(seqlens=batch_strategy, mask=mask_strategy, seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_dcp_balanced_scheduler_random_batches(seqlens, mask, seed):
    block_set = generate_blocks(
        BatchSpec.build(seqlens, mask), ATTENTION, block_size=16
    )
    planner = DCPPlanner(
        CLUSTER, ATTENTION,
        DCPConfig(block_size=16, restarts=1, scheduler="balanced"),
    )
    _check(planner, block_set, seed)


@pytest.mark.parametrize(
    "planner",
    [
        RingAttentionPlanner(zigzag=False),
        RingAttentionPlanner(zigzag=True),
        TransformerEnginePlanner(),
        UlyssesPlanner(),
        FlexSPPlanner(),
    ],
    ids=lambda p: p.name,
)
@given(seqlens=batch_strategy, mask=mask_strategy, seed=st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_baselines_random_batches(planner, seqlens, mask, seed):
    block_set = generate_blocks(
        BatchSpec.build(seqlens, mask), ATTENTION, block_size=16
    )
    _check(planner, block_set, seed)
