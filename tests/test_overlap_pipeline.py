"""Tests for the overlap pipeline (repro.pipeline, §6.1 measured)."""

import time

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import DCPDataloader, KVStore, PlanCache, PlannerPool
from repro.pipeline import (
    KVPlannerBackend,
    OverlapPipeline,
    PipelineRunner,
    ThreadPlannerBackend,
    cost_model_executor,
    plan_fingerprint,
)
from repro.sim import overlap_chrome_trace


def make_planner(devices=2, block_size=16):
    cluster = ClusterSpec(num_machines=1, devices_per_machine=devices)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(
        cluster, attention, DCPConfig(block_size=block_size, restarts=1)
    )


def make_batches(count=4, base=48):
    mask = make_mask("causal")
    return [
        BatchSpec.build([base + 16 * (i % 3), 32], mask) for i in range(count)
    ]


class SlowPlanner:
    """Planner wrapper injecting a fixed delay per plan."""

    def __init__(self, planner, delay):
        self.planner = planner
        self.delay = delay
        self.calls = 0

    def plan_batch(self, batch):
        self.calls += 1
        time.sleep(self.delay)
        return self.planner.plan_batch(batch)


class TestDeterminism:
    def test_pipeline_plans_byte_identical_to_synchronous(self):
        """Same batch_signature => same plan: the pipeline's background
        workers yield exactly what the synchronous path computes."""
        planner = make_planner()
        batches = make_batches(5)
        synchronous = [planner.plan_batch(batch) for batch in batches]
        pipeline = OverlapPipeline(
            batches, planner, lookahead=2, max_workers=2
        )
        overlapped = [plan for _, plan in pipeline]
        assert len(overlapped) == len(synchronous)
        for fast, slow in zip(overlapped, synchronous):
            assert plan_fingerprint(fast) == plan_fingerprint(slow)

    def test_dataloader_wrapper_matches_pipeline(self):
        planner = make_planner()
        batches = make_batches(3)
        loader_plans = [plan for _, plan in DCPDataloader(batches, planner)]
        direct = [planner.plan_batch(batch) for batch in batches]
        for a, b in zip(loader_plans, direct):
            assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_process_backend_plans_byte_identical(self):
        planner = make_planner()
        batches = make_batches(3)
        pipeline = OverlapPipeline(
            batches, planner, lookahead=2, max_workers=2, backend="process"
        )
        plans = [plan for _, plan in pipeline]
        for plan, batch in zip(plans, batches):
            assert plan_fingerprint(plan) == plan_fingerprint(
                planner.plan_batch(batch)
            )

    def test_kv_backend_round_trips_identical_plans(self):
        planner = make_planner()
        batches = make_batches(3)
        with PlannerPool(planner, KVStore(), num_machines=2) as pool:
            pipeline = OverlapPipeline(
                batches, planner, lookahead=1,
                backend=KVPlannerBackend(pool),
            )
            plans = [plan for _, plan in pipeline]
        for plan, batch in zip(plans, batches):
            assert plan_fingerprint(plan) == plan_fingerprint(
                planner.plan_batch(batch)
            )

    def test_fingerprint_distinguishes_different_batches(self):
        planner = make_planner()
        mask = make_mask("causal")
        a = planner.plan_batch(BatchSpec.build([48, 32], mask))
        b = planner.plan_batch(BatchSpec.build([64, 32], mask))
        assert plan_fingerprint(a) != plan_fingerprint(b)


class TestLookaheadEdgeCases:
    def test_zero_lookahead_is_synchronous(self):
        planner = make_planner()
        batches = make_batches(3)
        pipeline = OverlapPipeline(batches, planner, lookahead=0)
        plans = [plan for _, plan in pipeline]
        stats = pipeline.stats()
        assert len(plans) == 3
        # Every iteration waits out its own full planning time.
        assert stats.stall_count == 3
        assert stats.hidden_fraction < 0.2
        assert stats.total_stall_s >= stats.total_plan_s * 0.8

    def test_lookahead_beyond_stream_length(self):
        planner = make_planner()
        batches = make_batches(3)
        pipeline = OverlapPipeline(batches, planner, lookahead=16)
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 3
        assert [r.index for r in pipeline.stats().records] == [0, 1, 2]

    def test_empty_batch_stream(self):
        pipeline = OverlapPipeline([], make_planner(), lookahead=2)
        assert list(pipeline) == []
        assert pipeline.stats().iterations == 0

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ValueError):
            OverlapPipeline([], make_planner(), lookahead=-1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            OverlapPipeline([], make_planner(), lookahead=1, backend="gpu")

    def test_iterator_is_single_use(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(2), planner, lookahead=1)
        assert len(list(pipeline)) == 2
        assert list(pipeline) == []
        assert pipeline.stats().iterations == 2


class TestOverlapMeasurement:
    def test_slow_planner_exposes_stalls(self):
        """A planner slower than execution cannot hide: stalls appear in
        steady state and the hidden fraction drops below 1."""
        planner = SlowPlanner(make_planner(), delay=0.08)
        batches = make_batches(4)
        pipeline = OverlapPipeline(
            batches, planner, lookahead=1, max_workers=1
        )
        for _, _plan in pipeline:
            pass  # executes instantly: nothing to hide behind
        stats = pipeline.stats()
        assert stats.stall_count >= 3
        assert stats.steady_stall_count >= 2
        assert stats.hidden_fraction < 0.9
        assert stats.total_stall_s > 0.0

    def test_slow_execution_hides_planning(self):
        planner = SlowPlanner(make_planner(), delay=0.02)
        batches = make_batches(5)
        pipeline = OverlapPipeline(
            batches, planner, lookahead=2, max_workers=2
        )
        for _, _plan in pipeline:
            time.sleep(0.1)  # execution dominates: planning hides
        stats = pipeline.stats()
        # Genuinely exposed planning would stall >= the 20 ms injected
        # delay; anything under a few ms is scheduler jitter around the
        # STALL_EPS threshold, not a hiding failure (seed-era flake).
        assert stats.steady_stall_s < 5e-3
        assert stats.steady_hidden_fraction > 0.5
        assert stats.timeline().planning_hidden(tolerance=5e-3)

    def test_meta_carries_overlap_record(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(2), planner, lookahead=1)
        plans = [plan for _, plan in pipeline]
        for i, plan in enumerate(plans):
            overlap = plan.meta["overlap"]
            assert overlap["index"] == i
            assert overlap["plan_s"] >= 0.0
            assert "running" in overlap
            assert 0.0 <= overlap["running"]["hidden_fraction"] <= 1.0

    def test_timeline_matches_analytic_shape(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(3), planner, lookahead=1)
        for _, _plan in pipeline:
            time.sleep(0.01)
        timeline = pipeline.stats().timeline()
        assert len(timeline.exec_start) == 3
        for i in range(1, 3):
            assert timeline.exec_start[i] >= timeline.exec_end[i - 1] - 1e-9
            assert timeline.plan_end[i] <= timeline.exec_start[i] + 1e-9
        trace = overlap_chrome_trace(timeline)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) >= 6  # 3 exec + 3 plan

    def test_queue_depth_reported(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(4), planner, lookahead=3)
        for _, _plan in pipeline:
            time.sleep(0.05)
        stats = pipeline.stats()
        assert stats.queue_depth_max >= 1
        assert stats.queue_depth_mean > 0.0


class TestCacheIntegration:
    def test_cache_consulted_before_dispatch(self):
        planner = SlowPlanner(make_planner(), delay=0.0)
        cache = PlanCache(planner, capacity=8)
        mask = make_mask("causal")
        batches = [BatchSpec.build([48, 32], mask) for _ in range(3)]
        warm = OverlapPipeline(
            [batches[0]], planner, lookahead=1, cache=cache
        )
        list(warm)
        assert planner.calls == 1
        pipeline = OverlapPipeline(
            batches, planner, lookahead=2, cache=cache
        )
        plans = [plan for _, plan in pipeline]
        stats = pipeline.stats()
        assert planner.calls == 1  # every batch served from the cache
        assert stats.cache_hits == 3
        assert stats.total_plan_s == 0.0
        assert stats.plan_cache["hits"] == 3
        assert all(p is plans[0] for p in plans)

    def test_inflight_duplicates_deduplicated(self):
        planner = SlowPlanner(make_planner(), delay=0.02)
        cache = PlanCache(planner, capacity=8)
        mask = make_mask("causal")
        batches = [BatchSpec.build([48, 32], mask) for _ in range(4)]
        pipeline = OverlapPipeline(
            batches, planner, lookahead=3, max_workers=2, cache=cache
        )
        plans = [plan for _, plan in pipeline]
        # All four batches share one signature: one planner call total.
        assert planner.calls == 1
        assert len({id(p) for p in plans}) == 1

    def test_cache_stats_land_in_stats(self):
        planner = make_planner()
        cache = PlanCache(planner, capacity=4)
        pipeline = OverlapPipeline(
            make_batches(3), planner, lookahead=1, cache=cache
        )
        list(pipeline)
        stats = pipeline.stats()
        assert stats.plan_cache is not None
        assert stats.plan_cache["misses"] >= 1


class TestThrottle:
    """max_concurrent_plans bounds concurrency; observed via the
    semaphore's effect on entry counts, never via wall-clock timing."""

    class GatedPlanner:
        """Blocks every plan on an event, recording who got in."""

        def __init__(self, planner):
            import threading

            self.planner = planner
            self.entered = []
            self.release = threading.Event()
            self._lock = threading.Lock()

        def plan_batch(self, batch):
            with self._lock:
                self.entered.append(len(self.entered))
            assert self.release.wait(timeout=10), "gate never released"
            return self.planner.plan_batch(batch)

    def _wait_for(self, predicate, timeout=5.0):
        import time as _time

        deadline = _time.monotonic() + timeout
        while not predicate():
            if _time.monotonic() > deadline:
                return False
            _time.sleep(0.005)
        return True

    def test_throttle_caps_concurrent_plan_bodies(self):
        gated = self.GatedPlanner(make_planner())
        backend = ThreadPlannerBackend(
            gated, max_workers=4, max_concurrent_plans=2
        )
        batches = make_batches(4)
        tickets = [backend.submit(i, b) for i, b in enumerate(batches)]
        # Exactly the throttle's worth of plan bodies start...
        assert self._wait_for(lambda: len(gated.entered) == 2)
        # ...and the other two stay parked in the semaphore, even though
        # four workers are available.  (No sleep-based assertion: the
        # claim is that entry count *cannot* pass 2 while the gate
        # holds, which the final count after release confirms.)
        assert len(gated.entered) == 2
        gated.release.set()
        for ticket in tickets:
            ticket.result(timeout=10)
        assert len(gated.entered) == 4
        backend.close()

    def test_unthrottled_backend_uses_all_workers(self):
        gated = self.GatedPlanner(make_planner())
        backend = ThreadPlannerBackend(gated, max_workers=4)
        tickets = [backend.submit(i, b) for i, b in enumerate(make_batches(4))]
        assert self._wait_for(lambda: len(gated.entered) == 4)
        gated.release.set()
        for ticket in tickets:
            ticket.result(timeout=10)
        backend.close()

    def test_throttle_reaches_pipeline_kwarg(self):
        planner = make_planner()
        pipeline = OverlapPipeline(
            make_batches(3), planner, lookahead=2, max_workers=4,
            max_concurrent_plans=1,
        )
        assert pipeline._backend.max_concurrent_plans == 1
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 3

    def test_invalid_throttle_rejected(self):
        with pytest.raises(ValueError):
            ThreadPlannerBackend(make_planner(), max_concurrent_plans=0)


class TestWorkerRetries:
    def test_retries_counted_in_stats(self):
        import threading

        class FlakyOnce:
            def __init__(self, planner):
                self.planner = planner
                self.calls = 0
                self._lock = threading.Lock()

            def plan_batch(self, batch):
                with self._lock:
                    self.calls += 1
                    crash = self.calls == 1
                if crash:
                    raise RuntimeError("injected")
                return self.planner.plan_batch(batch)

        flaky = FlakyOnce(make_planner())
        pipeline = OverlapPipeline(
            make_batches(3), flaky, lookahead=1, max_workers=2
        )
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 3
        stats = pipeline.stats()
        assert stats.plan_retries == 1
        assert stats.as_dict()["plan_retries"] == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            OverlapPipeline([], make_planner(), max_plan_retries=-1)

    def test_joined_item_inline_fallback_records_real_interval(self):
        """A joined item forced to the inline fallback did real blocking
        planning work: its interval must not be zeroed as 'free'."""
        import threading

        class AlwaysCrashInWorkers:
            def __init__(self, planner):
                self.planner = planner
                self.inline_calls = 0

            def plan_batch(self, batch):
                if threading.current_thread() is not threading.main_thread():
                    raise RuntimeError("worker crash")
                self.inline_calls += 1
                return self.planner.plan_batch(batch)

        flaky = AlwaysCrashInWorkers(make_planner())
        cache = PlanCache(flaky, capacity=8)
        mask = make_mask("causal")
        batches = [BatchSpec.build([48, 32], mask) for _ in range(2)]
        pipeline = OverlapPipeline(
            batches, flaky, lookahead=1, max_workers=1,
            cache=cache, max_plan_retries=0,
        )
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 2
        records = pipeline.stats().records
        # Item 0 owns its job and falls back inline: real work, real
        # interval.
        assert records[0].plan_s > 0.0
        # Item 1 joined the doomed reservation.  Depending on whether
        # item 0's publication or the crash's abandon reaches it first,
        # it is served for free (fine) or plans inline itself — and in
        # that case the interval must not be zeroed as 'free'.
        if flaky.inline_calls == 2:
            assert records[1].plan_s > 0.0

    def test_retry_success_wakes_reservation_waiters(self):
        """When the owner's hung worker is respawned successfully, the
        fulfilled plan must release waiters joined on the reservation —
        they must not burn their own timeout + duplicate dispatch."""
        import threading

        class HangFirst:
            def __init__(self, planner, delay=1.0):
                self.planner = planner
                self.delay = delay
                self.calls = 0
                self._lock = threading.Lock()

            def plan_batch(self, batch):
                with self._lock:
                    self.calls += 1
                    hang = self.calls == 1
                if hang:
                    time.sleep(self.delay)
                return self.planner.plan_batch(batch)

        hangy = HangFirst(make_planner())
        cache = PlanCache(hangy, capacity=8)
        mask = make_mask("causal")
        # Same signature: batch 1+ joins batch 0's reservation.
        batches = [BatchSpec.build([48, 32], mask) for _ in range(3)]
        pipeline = OverlapPipeline(
            batches, hangy, lookahead=2, max_workers=2,
            cache=cache, plan_timeout=0.15,
        )
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 3
        # Exactly the owner's respawn: the joined items resolved off
        # the fulfilled reservation, not their own timeouts.
        assert pipeline.stats().plan_retries == 1


class TestEarlyExit:
    def test_sync_path_reservations_released_on_close(self):
        """lookahead=0 prefetches one owned reservation with no backend
        ticket; abandoning the loop must release it or other pipelines
        sharing the cache would wait on it forever."""
        planner = make_planner()
        cache = PlanCache(planner, capacity=8)
        mask = make_mask("causal")
        batches = [BatchSpec.build([48, 32], mask) for _ in range(3)]
        pipeline = OverlapPipeline(
            batches, planner, lookahead=0, cache=cache
        )
        iterator = iter(pipeline)
        next(iterator)  # window now holds batch 1's owned reservation
        pipeline.close()
        # A second pipeline on the same cache must not hang: the
        # reservation was abandoned, so it can claim and plan freely.
        second = OverlapPipeline(
            [BatchSpec.build([48, 32], mask)], planner,
            lookahead=1, cache=cache, plan_timeout=5.0,
        )
        plans = [plan for _, plan in second]
        assert len(plans) == 1


class TestBoundedRecords:
    def test_records_limit_keeps_totals_exact(self):
        planner = make_planner()
        pipeline = OverlapPipeline(
            make_batches(5), planner, lookahead=1, records_limit=2
        )
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 5
        stats = pipeline.stats()
        assert stats.iterations == 5  # totals ignore the truncation
        assert len(stats.records) == 2  # history is the retained tail
        assert [r.index for r in stats.records] == [3, 4]
        assert stats.total_plan_s > 0.0
        assert 0.0 <= stats.hidden_fraction <= 1.0
        # The last plan's running meta reflects all five iterations.
        assert plans[-1].meta["overlap"]["running"]["iterations"] == 5

    def test_records_limit_validated(self):
        with pytest.raises(ValueError):
            OverlapPipeline([], make_planner(), records_limit=0)

    def test_unbounded_default_keeps_everything(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(4), planner, lookahead=1)
        list(pipeline)
        assert len(pipeline.stats().records) == 4


class TestPipelineRunner:
    def test_sim_executor_outputs_correct(self):
        """The runner executes pipeline plans on SimExecutor; numerics
        must match the reference implementation."""
        from repro.runtime import BatchInputs, SimExecutor
        from repro.runtime import reference_batch_outputs

        planner = make_planner()
        batches = make_batches(2)
        pipeline = OverlapPipeline(batches, planner, lookahead=1)
        outputs = []

        def execute(local_data, plan):
            executor = SimExecutor(plan)
            inputs = BatchInputs.random(plan.block_set, seed=1)
            executor.load_inputs(inputs)
            elapsed = executor.run()
            assert elapsed > 0.0
            for out, ref in zip(
                executor.gather_outputs(),
                reference_batch_outputs(plan.block_set, inputs),
            ):
                np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
            outputs.append(True)
            return {"elapsed": elapsed}

        report = PipelineRunner(pipeline, execute=execute).run()
        assert len(report.executions) == 2
        assert len(outputs) == 2
        assert report.stats.total_exec_s > 0.0
        assert len(report.timeline.exec_start) == 2

    def test_default_executor_runs(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(2), planner, lookahead=1)
        report = PipelineRunner(pipeline).run()
        assert len(report.executions) == 2
        assert all(e["executor_wall_s"] > 0 for e in report.executions)

    def test_cost_model_executor_occupies_time(self):
        planner = make_planner()
        pipeline = OverlapPipeline(make_batches(2), planner, lookahead=1)
        execute = cost_model_executor(time_scale=0.01)
        report = PipelineRunner(pipeline, execute=execute).run()
        assert len(report.executions) == 2
        for info in report.executions:
            assert info["simulated_iteration_s"] > 0.0
            assert info["executed_wall_s"] > 0.0

    def test_cost_model_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            cost_model_executor(time_scale=-1.0)
