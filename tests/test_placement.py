"""Tests for hypergraph construction, heuristics and hierarchical placement."""

import numpy as np
import pytest

from repro.blocks import AttentionSpec, BatchSpec, BlockKind, generate_blocks
from repro.masks import CausalMask, SharedQuestionMask
from repro.placement import (
    PlacementConfig,
    build_block_hypergraph,
    communication_report,
    dp_pack_labels,
    place_blocks,
    zigzag_chunk_device,
    zigzag_labels,
)
from repro.sim import ClusterSpec


def small_block_set(seqlens=(64, 32), block_size=16, mask=None):
    batch = BatchSpec.build(list(seqlens), mask or CausalMask())
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return generate_blocks(batch, spec, block_size=block_size)


class TestBuildHypergraph:
    def test_vertex_counts_and_weights(self):
        block_set = small_block_set()
        bhg = build_block_hypergraph(block_set)
        num_slices = len(block_set.token_slices)
        assert bhg.graph.num_vertices == num_slices + len(block_set.comp_blocks)
        # Slice vertices carry only bytes; comp vertices only flops.
        assert np.all(bhg.graph.weights[:num_slices, 0] == 0)
        assert np.all(bhg.graph.weights[num_slices:, 1] == 0)
        assert (
            bhg.graph.weights[:num_slices, 1].sum() == block_set.total_bytes
        )
        assert (
            bhg.graph.weights[num_slices:, 0].sum() == block_set.total_flops
        )

    def test_edge_weights_are_block_bytes(self):
        block_set = small_block_set()
        bhg = build_block_hypergraph(block_set)
        for edge_index, block in enumerate(bhg.edge_blocks):
            assert (
                bhg.graph.edge_weights[edge_index]
                == block_set.block_bytes(block)
            )

    def test_connectivity_equals_comm_volume(self):
        block_set = small_block_set(seqlens=(48, 32, 16))
        bhg = build_block_hypergraph(block_set)
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, bhg.graph.num_vertices)
        slice_device, comp_device = bhg.labels_to_devices(labels)
        report = communication_report(block_set, slice_device, comp_device, 4)
        assert bhg.graph.connectivity_cost(labels, 4) == report.total_bytes

    def test_induced_subgraph(self):
        block_set = small_block_set()
        bhg = build_block_hypergraph(block_set)
        vertices = list(range(0, bhg.graph.num_vertices, 2))
        sub, ids = bhg.induced_subgraph(vertices)
        assert sub.num_vertices == len(vertices)
        assert np.array_equal(ids, np.asarray(sorted(vertices)))
        for pin in sub.pins:
            assert len(pin) >= 2


class TestHeuristics:
    def test_zigzag_chunk_pattern(self):
        assert [zigzag_chunk_device(i, 8, 4) for i in range(8)] == [
            0, 1, 2, 3, 3, 2, 1, 0,
        ]

    def test_zigzag_chunk_validation(self):
        with pytest.raises(ValueError):
            zigzag_chunk_device(9, 8, 4)

    def test_zigzag_labels_balanced_tokens(self):
        block_set = small_block_set(seqlens=(128,), block_size=16)
        bhg = build_block_hypergraph(block_set)
        labels = zigzag_labels(bhg, 4)
        slice_device, _ = bhg.labels_to_devices(labels)
        tokens = np.zeros(4, dtype=int)
        for ts, dev in zip(block_set.token_slices, slice_device):
            tokens[dev] += ts.tokens
        assert np.all(tokens == 32)

    def test_comp_blocks_follow_q(self):
        block_set = small_block_set()
        bhg = build_block_hypergraph(block_set)
        labels = zigzag_labels(bhg, 2)
        slice_device, comp_device = bhg.labels_to_devices(labels)
        slice_idx = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }
        for comp, dev in zip(block_set.comp_blocks, comp_device):
            q_dev = slice_device[slice_idx[(comp.seq_index, comp.q_block)]]
            assert dev == q_dev

    def test_dp_pack_keeps_sequences_whole(self):
        block_set = small_block_set(seqlens=(64, 48, 32, 16))
        bhg = build_block_hypergraph(block_set)
        labels = dp_pack_labels(bhg, 2)
        slice_device, _ = bhg.labels_to_devices(labels)
        for seq_index in range(4):
            devices = {
                int(slice_device[i])
                for i, ts in enumerate(block_set.token_slices)
                if ts.seq_index == seq_index
            }
            assert len(devices) == 1

    def test_dp_pack_has_zero_communication(self):
        block_set = small_block_set(seqlens=(64, 48, 32, 16))
        bhg = build_block_hypergraph(block_set)
        labels = dp_pack_labels(bhg, 2)
        assert bhg.graph.connectivity_cost(labels, 2) == 0


class TestCommunicationReport:
    def test_hand_built_transfers(self):
        block_set = small_block_set(seqlens=(32,), block_size=16)
        # 2 slices; place slice 0 on dev 0, slice 1 on dev 1; all comps on 0.
        slice_device = np.array([0, 1])
        comp_device = np.zeros(len(block_set.comp_blocks), dtype=np.int64)
        report = communication_report(block_set, slice_device, comp_device, 2)
        spec = block_set.attention
        # Device 0 fetches slice 1's Q and KV, returns its O: per head group.
        expected = spec.head_groups * (
            spec.q_block_bytes(16) + spec.kv_block_bytes(16)
            + spec.o_block_bytes(16)
        )
        assert report.total_bytes == expected
        kinds = {t.block.kind for t in report.transfers}
        assert kinds == {BlockKind.Q, BlockKind.KV, BlockKind.O}
        for transfer in report.transfers:
            if transfer.block.kind == BlockKind.O:
                assert (transfer.src, transfer.dst) == (0, 1)
            else:
                assert (transfer.src, transfer.dst) == (1, 0)

    def test_max_device_bytes(self):
        block_set = small_block_set(seqlens=(32,), block_size=16)
        slice_device = np.array([0, 1])
        comp_device = np.zeros(len(block_set.comp_blocks), dtype=np.int64)
        report = communication_report(block_set, slice_device, comp_device, 2)
        sent, received = report.per_device_bytes()
        assert sent.sum() == received.sum() == report.total_bytes
        assert report.max_device_bytes() == (sent + received).max()

    def test_shape_validation(self):
        block_set = small_block_set()
        with pytest.raises(ValueError):
            communication_report(block_set, np.zeros(1), np.zeros(1), 2)


class TestPlaceBlocks:
    def test_balance_and_consistency(self):
        block_set = small_block_set(seqlens=(128, 64, 32), block_size=16)
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        placement = place_blocks(
            block_set, cluster, PlacementConfig(seed=0, restarts=1)
        )
        tokens = placement.tokens_per_device()
        assert tokens.sum() == block_set.batch.total_tokens
        flops = placement.flops_per_device()
        assert flops.sum() == block_set.total_flops
        # Computation balance within a generous factor of the tolerance.
        assert flops.max() <= 1.6 * flops.mean()

    def test_beats_or_ties_zigzag(self):
        block_set = small_block_set(seqlens=(96, 48, 32, 16), block_size=16)
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        placement = place_blocks(
            block_set, cluster, PlacementConfig(seed=1, restarts=1)
        )
        bhg = build_block_hypergraph(block_set)
        zz = zigzag_labels(bhg, cluster.num_devices)
        zz_cost = bhg.graph.connectivity_cost(zz, cluster.num_devices)
        assert placement.comm_report().total_bytes <= zz_cost

    def test_single_device_no_comm(self):
        block_set = small_block_set()
        cluster = ClusterSpec(num_machines=1, devices_per_machine=1)
        placement = place_blocks(block_set, cluster)
        assert placement.comm_report().total_bytes == 0

    def test_masked_batch_discards_masked_work(self):
        mask = SharedQuestionMask(num_answers=2, answer_fraction=0.25)
        block_set = small_block_set(seqlens=(64,), block_size=8, mask=mask)
        causal_set = small_block_set(seqlens=(64,), block_size=8)
        assert block_set.total_flops < causal_set.total_flops
