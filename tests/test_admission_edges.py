"""Admission-control and fair-queueing edge cases (robustness PR)."""

import threading

import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.service import (
    AdmissionController,
    FairScheduler,
    PlanRejected,
    PlanService,
)


def make_planner():
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(cluster, attention,
                      DCPConfig(block_size=16, restarts=1))


def batch(seqlens):
    return BatchSpec.build(list(seqlens), make_mask("causal"))


class TestWeightEdges:
    def test_zero_and_negative_weights_rejected(self):
        scheduler = FairScheduler()
        with pytest.raises(ValueError):
            scheduler.set_weight("t", 0.0)
        with pytest.raises(ValueError):
            scheduler.set_weight("t", -1.0)
        # The rejected weight left no partial state behind.
        scheduler.submit("t", "job")
        assert scheduler.pop(timeout=1.0) == ("t", "job")

    def test_tiny_weight_tenant_still_progresses(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=64)
        )
        scheduler.set_weight("whale", 100.0)
        scheduler.set_weight("minnow", 1e-6)
        for i in range(20):
            scheduler.submit("whale", ("w", i))
        scheduler.submit("minnow", ("m", 0))
        served = [scheduler.pop(timeout=1.0)[0] for _ in range(21)]
        assert served.count("minnow") == 1  # starvation-free


class TestAllTenantsShedding:
    def test_every_tenant_sheds_then_recovers(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=1,
                                          max_inflight_per_tenant=1)
        )
        tenants = [f"t{i}" for i in range(4)]
        for tenant in tenants:
            scheduler.submit(tenant, "job")
        for tenant in tenants:
            with pytest.raises(PlanRejected) as excinfo:
                scheduler.submit(tenant, "overflow")
            assert excinfo.value.reason == "tenant_queue_full"
        rejected = scheduler.metrics.counter("service.rejected")
        assert rejected.value == len(tenants)
        # Draining restores admission for everyone.
        for _ in tenants:
            tenant, _job = scheduler.pop(timeout=1.0)
            scheduler.task_done(tenant)
        for tenant in tenants:
            scheduler.submit(tenant, "again")
        assert scheduler.total_queued == len(tenants)

    def test_global_saturation_rejects_any_tenant(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=8,
                                          max_queued_total=2)
        )
        scheduler.submit("a", 1)
        scheduler.submit("b", 1)
        with pytest.raises(PlanRejected) as excinfo:
            scheduler.submit("c", 1)
        assert excinfo.value.reason == "service_saturated"


class TestConcurrentRejectionAccounting:
    def test_admitted_plus_rejected_equals_submitted(self):
        scheduler = FairScheduler(
            admission=AdmissionController(max_queued_per_tenant=16,
                                          max_inflight_per_tenant=1)
        )
        threads = 8
        per_thread = 50
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for i in range(per_thread):
                try:
                    scheduler.submit("shared", ("job", i))
                except PlanRejected:
                    pass

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30.0)
        admitted = scheduler.metrics.counter("service.admitted").value
        rejected = scheduler.metrics.counter("service.rejected").value
        assert admitted + rejected == threads * per_thread
        assert scheduler.total_queued == admitted
        by_reason = sum(
            scheduler.metrics.counter(f"service.rejected_{reason}").value
            for reason in ("tenant_queue_full", "tenant_inflight",
                           "service_saturated")
        )
        assert by_reason == rejected
        # Every admitted job is actually drainable.
        drained = 0
        while scheduler.pop(timeout=0.1) is not None:
            drained += 1
            if drained == admitted:
                break
        assert drained == admitted


class TestTenantDiesMidDrain:
    def test_failing_tenant_jobs_do_not_stall_others(self):
        class SelectivePlanner:
            """Planner that fails every batch with one sequence."""

            def __init__(self):
                self.planner = make_planner()
                self.cluster = self.planner.cluster
                self.attention = self.planner.attention
                self.config = self.planner.config

            def plan_batch(self, spec):
                if len(spec.sequences) == 1:
                    raise RuntimeError("tenant's batches are poison")
                return self.planner.plan_batch(spec)

        with PlanService(SelectivePlanner(), workers=1) as service:
            # The dying tenant queues several failing jobs...
            for length in (16, 32, 48):
                with pytest.raises(RuntimeError, match="poison"):
                    service.fetch_plan("dying", batch([length]),
                                       timeout=30.0)
            # ...yet the single shared worker survives every one of
            # them and the healthy tenant is served normally.
            plan = service.fetch_plan("healthy", batch([64, 48]),
                                      timeout=30.0)
            assert plan is not None
            stats = service.stats()
            assert stats["worker_job_errors"] == 3
            # In-flight accounting drained: nothing stuck against the
            # dying tenant's caps.
            assert service.scheduler.tenants().get("dying", (0, 0)) \
                == (0, 0)
            service.fetch_plan("dying", batch([64, 32]), timeout=30.0)

    def test_task_done_on_unknown_tenant_is_harmless(self):
        scheduler = FairScheduler()
        scheduler.task_done("ghost")  # never submitted anything
        scheduler.submit("t", "job")
        assert scheduler.pop(timeout=1.0) == ("t", "job")
        scheduler.task_done("t")
        scheduler.task_done("t")  # double-done must not go negative
        assert scheduler.tenants().get("t", (0, 0)) == (0, 0)
