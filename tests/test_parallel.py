"""Tests for repro.parallel: topology, TP sharding, 1F1B, hybrid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import AttentionSpec, BatchSpec
from repro.core.config import DCPConfig
from repro.masks import CausalMask
from repro.parallel import (
    HybridConfig,
    RankCoords,
    RankTopology,
    StageCost,
    allreduce_time,
    dcp_view_cluster,
    gpipe_order,
    hybrid_iteration_time,
    one_f_one_b_order,
    shard_attention,
    simulate_1f1b,
    simulate_1f1b_varied,
    simulate_pipeline,
    split_layers,
    tp_layer_comm_time,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.modelcost import ModelSpec


# -- RankTopology ----------------------------------------------------------


class TestRankTopology:
    def test_world_size(self):
        assert RankTopology(tp=4, dcp=4, pp=2).world_size == 32

    def test_degrees_must_be_positive(self):
        with pytest.raises(ValueError):
            RankTopology(tp=0)

    def test_coords_of_rank_zero(self):
        topo = RankTopology(tp=2, dcp=3, pp=2)
        assert topo.coords(0) == RankCoords(tp=0, dcp=0, pp=0)

    def test_tp_varies_fastest(self):
        topo = RankTopology(tp=4, dcp=2, pp=2)
        assert [topo.coords(r).tp for r in range(4)] == [0, 1, 2, 3]
        assert all(topo.coords(r).dcp == 0 for r in range(4))

    def test_pp_varies_slowest(self):
        topo = RankTopology(tp=2, dcp=2, pp=2)
        assert topo.coords(topo.world_size - 1).pp == topo.pp - 1

    def test_rank_out_of_range(self):
        topo = RankTopology(tp=2, dcp=2)
        with pytest.raises(ValueError):
            topo.coords(4)
        with pytest.raises(ValueError):
            topo.coords(-1)

    def test_rank_of_rejects_bad_coords(self):
        topo = RankTopology(tp=2, dcp=2)
        with pytest.raises(ValueError):
            topo.rank_of(RankCoords(tp=2, dcp=0, pp=0))
        with pytest.raises(ValueError):
            topo.rank_of(RankCoords(tp=0, dcp=0, pp=1))

    @given(
        tp=st.integers(1, 4),
        dcp=st.integers(1, 4),
        pp=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_coords_round_trip(self, tp, dcp, pp):
        topo = RankTopology(tp=tp, dcp=dcp, pp=pp)
        for rank in range(topo.world_size):
            assert topo.rank_of(topo.coords(rank)) == rank

    def test_tp_group_is_consecutive(self):
        topo = RankTopology(tp=4, dcp=2, pp=2)
        for rank in range(topo.world_size):
            group = topo.tp_group(rank)
            assert group == list(range(group[0], group[0] + 4))
            assert rank in group

    def test_groups_partition_world(self):
        topo = RankTopology(tp=2, dcp=4, pp=2)
        for groups in (
            topo.all_tp_groups(),
            topo.all_dcp_groups(),
            topo.all_pp_groups(),
        ):
            seen = sorted(r for g in groups for r in g)
            assert seen == list(range(topo.world_size))

    def test_dcp_group_strides_by_tp(self):
        topo = RankTopology(tp=4, dcp=4, pp=1)
        assert topo.dcp_group(0) == [0, 4, 8, 12]

    def test_pp_group_strides_by_tp_times_dcp(self):
        topo = RankTopology(tp=2, dcp=2, pp=4)
        assert topo.pp_group(0) == [0, 4, 8, 12]

    def test_stage_of(self):
        topo = RankTopology(tp=2, dcp=2, pp=2)
        assert topo.stage_of(0) == 0
        assert topo.stage_of(topo.world_size - 1) == 1

    def test_validate_against_matching_cluster(self):
        topo = RankTopology(tp=4, dcp=8, pp=1)
        topo.validate_against(ClusterSpec(num_machines=4, devices_per_machine=8))

    def test_validate_rejects_wrong_world(self):
        topo = RankTopology(tp=4, dcp=4, pp=1)
        with pytest.raises(ValueError, match="world"):
            topo.validate_against(
                ClusterSpec(num_machines=4, devices_per_machine=8)
            )

    def test_validate_rejects_tp_straddling_machines(self):
        topo = RankTopology(tp=16, dcp=2, pp=1)
        with pytest.raises(ValueError, match="exceeds"):
            topo.validate_against(
                ClusterSpec(num_machines=4, devices_per_machine=8)
            )

    def test_validate_rejects_nondivisible_tp(self):
        topo = RankTopology(tp=3, dcp=8, pp=1)
        with pytest.raises(ValueError, match="divide"):
            topo.validate_against(
                ClusterSpec(num_machines=3, devices_per_machine=8)
            )

    def test_describe(self):
        assert RankTopology(tp=2, dcp=4, pp=2).describe() == "tp=2 dcp=4 pp=2"


# -- TP sharding -------------------------------------------------------------


class TestShardAttention:
    def test_tp_one_is_identity(self):
        spec = AttentionSpec()
        assert shard_attention(spec, 1) is spec

    def test_shards_heads_and_groups(self):
        spec = AttentionSpec(num_q_heads=32, num_kv_groups=8)
        sharded = shard_attention(spec, 4)
        assert sharded.num_q_heads == 8
        assert sharded.num_kv_groups == 2
        assert sharded.head_dim == spec.head_dim

    def test_rejects_nondivisible_q_heads(self):
        with pytest.raises(ValueError, match="query heads"):
            shard_attention(AttentionSpec(num_q_heads=8, num_kv_groups=2), 3)

    def test_rejects_kv_replication(self):
        with pytest.raises(ValueError, match="KV groups"):
            shard_attention(AttentionSpec(num_q_heads=8, num_kv_groups=2), 4)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            shard_attention(AttentionSpec(), 0)


class TestDcpViewCluster:
    def test_tp_one_is_identity(self):
        cluster = ClusterSpec()
        assert dcp_view_cluster(cluster, 1) is cluster

    def test_aggregates_flops_and_shrinks_machines(self):
        cluster = ClusterSpec(num_machines=2, devices_per_machine=8)
        view = dcp_view_cluster(cluster, 4)
        assert view.devices_per_machine == 2
        assert view.num_machines == 2
        assert view.peak_flops == pytest.approx(4 * cluster.peak_flops)
        assert view.inter_bandwidth == cluster.inter_bandwidth

    def test_rejects_nondivisible(self):
        with pytest.raises(ValueError):
            dcp_view_cluster(ClusterSpec(devices_per_machine=8), 3)


class TestAllreduce:
    def test_single_rank_free(self):
        assert allreduce_time(1e9, 1, 1e9) == 0.0

    def test_ring_volume_factor(self):
        # 2 (R-1)/R of the buffer crosses the link.
        t = allreduce_time(1e9, 4, 1e9)
        assert t == pytest.approx(2 * 3 / 4)

    def test_latency_term(self):
        base = allreduce_time(0.0, 4, 1e9, latency=1e-6)
        assert base == pytest.approx(6e-6)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            allreduce_time(1.0, 0, 1e9)


class TestTpLayerComm:
    def test_tp_one_free(self):
        assert tp_layer_comm_time(ModelSpec(), 4096, ClusterSpec(), 1) == 0.0

    def test_four_allreduces(self):
        model = ModelSpec()
        cluster = ClusterSpec()
        t = tp_layer_comm_time(model, 4096, cluster, 4)
        one = allreduce_time(
            4096 * model.hidden * model.dtype_bytes,
            4,
            cluster.intra_bandwidth,
            cluster.intra_latency,
        )
        assert t == pytest.approx(4 * one)

    def test_scales_with_tokens(self):
        model, cluster = ModelSpec(), ClusterSpec()
        assert tp_layer_comm_time(model, 8192, cluster, 4) > tp_layer_comm_time(
            model, 4096, cluster, 4
        )


# -- pipeline schedule -------------------------------------------------------


class TestSplitLayers:
    def test_even(self):
        assert split_layers(32, 4) == [8, 8, 8, 8]

    def test_remainder_goes_early(self):
        assert split_layers(10, 4) == [3, 3, 2, 2]

    def test_sums_to_layers(self):
        for layers in (7, 16, 33):
            for stages in (1, 2, 3, 4):
                if layers >= stages:
                    assert sum(split_layers(layers, stages)) == layers

    def test_rejects_more_stages_than_layers(self):
        with pytest.raises(ValueError):
            split_layers(2, 4)

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            split_layers(4, 0)


class TestOneFOneBOrder:
    def test_single_stage_alternates(self):
        order = one_f_one_b_order(0, 1, 3)
        assert order == [
            ("F", 0), ("B", 0), ("F", 1), ("B", 1), ("F", 2), ("B", 2),
        ]

    def test_warmup_depth(self):
        # Stage 0 of 4 warms up with 4 forwards (or M if fewer).
        order = one_f_one_b_order(0, 4, 8)
        assert order[:4] == [("F", 0), ("F", 1), ("F", 2), ("F", 3)]
        assert order[4] == ("B", 0)

    def test_last_stage_no_warmup_beyond_one(self):
        order = one_f_one_b_order(3, 4, 8)
        assert order[0] == ("F", 0)
        assert order[1] == ("B", 0)

    def test_all_tasks_exactly_once(self):
        for stage in range(4):
            order = one_f_one_b_order(stage, 4, 6)
            assert sorted(order) == sorted(
                [("F", m) for m in range(6)] + [("B", m) for m in range(6)]
            )

    def test_forward_precedes_backward_per_microbatch(self):
        order = one_f_one_b_order(2, 4, 6)
        position = {task: i for i, task in enumerate(order)}
        for m in range(6):
            assert position[("F", m)] < position[("B", m)]


class TestSimulate1F1B:
    def test_single_stage_is_serial(self):
        timing = simulate_1f1b([StageCost(2.0, 3.0)], num_microbatches=4)
        assert timing.total == pytest.approx(4 * 5.0)
        assert timing.bubble_fraction == pytest.approx(0.0)

    def test_uniform_closed_form(self):
        # (M + S - 1) * (f + b) for uniform stages, zero p2p.
        stages, microbatches = 4, 8
        timing = simulate_1f1b(
            [StageCost(1.0, 2.0)] * stages, num_microbatches=microbatches
        )
        assert timing.total == pytest.approx((microbatches + stages - 1) * 3.0)

    def test_uniform_bubble_fraction(self):
        stages, microbatches = 4, 8
        timing = simulate_1f1b(
            [StageCost(1.0, 1.0)] * stages, num_microbatches=microbatches
        )
        expected = (stages - 1) / (microbatches + stages - 1)
        assert timing.bubble_fraction == pytest.approx(expected)

    def test_more_microbatches_shrink_bubble(self):
        costs = [StageCost(1.0, 2.0)] * 4
        small = simulate_1f1b(costs, num_microbatches=2)
        large = simulate_1f1b(costs, num_microbatches=16)
        assert large.bubble_fraction < small.bubble_fraction

    def test_p2p_stretches_total(self):
        costs = [StageCost(1.0, 1.0)] * 2
        fast = simulate_1f1b(costs, num_microbatches=4)
        slow = simulate_1f1b(costs, num_microbatches=4, p2p_time=0.5)
        assert slow.total > fast.total

    def test_rejects_zero_microbatches(self):
        with pytest.raises(ValueError):
            simulate_1f1b([StageCost(1.0, 1.0)], num_microbatches=0)

    def test_rejects_empty_stages(self):
        with pytest.raises(ValueError):
            simulate_1f1b([], num_microbatches=1)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            StageCost(-1.0, 1.0)

    def test_varied_rejects_ragged_costs(self):
        with pytest.raises(ValueError):
            simulate_1f1b_varied(
                [[StageCost(1, 1)] * 2, [StageCost(1, 1)] * 3]
            )

    def test_varied_single_stage_sums(self):
        costs = [[StageCost(1.0, 1.0), StageCost(2.0, 3.0)]]
        timing = simulate_1f1b_varied(costs)
        assert timing.total == pytest.approx(7.0)

    @given(
        stages=st.integers(1, 4),
        microbatches=st.integers(1, 6),
        forward=st.floats(0.1, 5.0),
        backward=st.floats(0.1, 5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_bounded_by_work(self, stages, microbatches, forward,
                                   backward):
        timing = simulate_1f1b(
            [StageCost(forward, backward)] * stages,
            num_microbatches=microbatches,
        )
        per_stage = microbatches * (forward + backward)
        assert timing.total >= per_stage - 1e-9
        assert timing.total <= stages * per_stage + 1e-9
        assert all(b == pytest.approx(per_stage) for b in timing.stage_busy)


class TestGPipe:
    def test_order_all_forwards_first(self):
        order = gpipe_order(0, 4, 3)
        assert order == [
            ("F", 0), ("F", 1), ("F", 2), ("B", 2), ("B", 1), ("B", 0),
        ]

    def test_same_total_as_1f1b_for_uniform(self):
        costs = [[StageCost(1.0, 2.0)] * 8 for _ in range(4)]
        gpipe = simulate_pipeline(costs, schedule="gpipe")
        one_f = simulate_pipeline(costs, schedule="1f1b")
        assert gpipe.total == pytest.approx(one_f.total)

    def test_gpipe_holds_all_activations(self):
        costs = [[StageCost(1.0, 1.0)] * 8 for _ in range(4)]
        timing = simulate_pipeline(costs, schedule="gpipe")
        assert timing.max_peak_activations == 8

    def test_1f1b_bounds_activations_by_depth(self):
        # Stage s of S holds at most min(M, S - s) activations.
        stages, microbatches = 4, 16
        costs = [[StageCost(1.0, 1.0)] * microbatches for _ in range(stages)]
        timing = simulate_pipeline(costs, schedule="1f1b")
        assert timing.max_peak_activations == stages
        for stage, peak in enumerate(timing.peak_activations):
            assert peak <= min(microbatches, stages - stage)

    def test_memory_advantage_grows_with_microbatches(self):
        stages = 4
        for microbatches in (8, 16, 32):
            costs = [
                [StageCost(1.0, 1.0)] * microbatches for _ in range(stages)
            ]
            gpipe = simulate_pipeline(costs, schedule="gpipe")
            one_f = simulate_pipeline(costs, schedule="1f1b")
            assert gpipe.max_peak_activations == microbatches
            assert one_f.max_peak_activations == stages

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            simulate_pipeline([[StageCost(1.0, 1.0)]], schedule="zb-h1")

    def test_gpipe_order_covers_all_tasks(self):
        order = gpipe_order(1, 4, 6)
        assert sorted(order) == sorted(
            [("F", m) for m in range(6)] + [("B", m) for m in range(6)]
        )

    @given(
        stages=st.integers(1, 4),
        microbatches=st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_activations_return_to_zero(self, stages, microbatches):
        costs = [
            [StageCost(1.0, 1.0)] * microbatches for _ in range(stages)
        ]
        for schedule in ("1f1b", "gpipe"):
            timing = simulate_pipeline(costs, schedule=schedule)
            # Peak is at least 1 and never exceeds the microbatch count.
            assert 1 <= timing.max_peak_activations <= microbatches


# -- hybrid composition ------------------------------------------------------


def _small_model() -> ModelSpec:
    return ModelSpec(
        num_layers=4,
        hidden=256,
        num_q_heads=8,
        num_kv_groups=4,
        head_dim=32,
        ffn_hidden=512,
        vocab=1024,
        tensor_parallel=1,
    )


def _batch() -> BatchSpec:
    return BatchSpec.build([700, 300, 500], CausalMask())


class TestHybrid:
    def test_smoke_tp_dcp_pp(self):
        cluster = ClusterSpec(num_machines=2, devices_per_machine=4)
        config = HybridConfig(
            topology=RankTopology(tp=2, dcp=2, pp=2),
            num_microbatches=2,
            dcp_config=DCPConfig(block_size=256, restarts=1),
        )
        result = hybrid_iteration_time(
            _batch(), cluster, config, model=_small_model()
        )
        assert result.iteration_time > 0
        assert result.pipeline.num_stages == 2
        assert len(result.microbatch_plans) == 2
        assert result.attention_time > 0
        assert result.tp_comm_time > 0

    def test_pure_dcp_no_tp_comm(self):
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        config = HybridConfig(
            topology=RankTopology(tp=1, dcp=4, pp=1),
            dcp_config=DCPConfig(block_size=256, restarts=1),
        )
        result = hybrid_iteration_time(
            _batch(), cluster, config, model=_small_model()
        )
        assert result.tp_comm_time == 0.0
        assert result.grad_sync_time > 0
        assert result.pipeline.bubble_fraction == pytest.approx(0.0)

    def test_breakdown_keys(self):
        cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
        config = HybridConfig(
            topology=RankTopology(tp=1, dcp=2, pp=1),
            dcp_config=DCPConfig(block_size=256, restarts=1),
        )
        result = hybrid_iteration_time(
            _batch(), cluster, config, model=_small_model()
        )
        breakdown = result.breakdown()
        for key in ("attention", "tp_comm", "others", "grad_sync", "total"):
            assert key in breakdown

    def test_pp_must_divide_machines(self):
        cluster = ClusterSpec(num_machines=3, devices_per_machine=2)
        config = HybridConfig(topology=RankTopology(tp=1, dcp=3, pp=2))
        with pytest.raises(ValueError, match="divide"):
            hybrid_iteration_time(
                _batch(), cluster, config, model=_small_model()
            )

    def test_topology_must_match_cluster(self):
        cluster = ClusterSpec(num_machines=1, devices_per_machine=4)
        config = HybridConfig(topology=RankTopology(tp=1, dcp=2, pp=1))
        with pytest.raises(ValueError, match="world"):
            hybrid_iteration_time(
                _batch(), cluster, config, model=_small_model()
            )

    def test_rejects_zero_microbatches(self):
        with pytest.raises(ValueError):
            HybridConfig(topology=RankTopology(), num_microbatches=0)

    def test_more_microbatches_do_not_lose_sequences(self):
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        config = HybridConfig(
            topology=RankTopology(tp=1, dcp=2, pp=2),
            num_microbatches=3,
            dcp_config=DCPConfig(block_size=256, restarts=1),
        )
        result = hybrid_iteration_time(
            _batch(), cluster, config, model=_small_model()
        )
        planned_tokens = sum(
            sum(ts.tokens for dp in plan.device_plans.values()
                for ts in dp.local_slices)
            for plan in result.microbatch_plans
        )
        assert planned_tokens == _batch().total_tokens
