"""Tests for the baseline planners (RFA, TE, LoongTrain)."""

import numpy as np
import pytest

from repro.baselines import (
    LoongTrainPlanner,
    RingAttentionPlanner,
    TransformerEnginePlanner,
    contiguous_slice_assignment,
    pad_batch,
    zigzag_slice_assignment,
)
from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.masks import CausalMask, LambdaMask, SharedQuestionMask
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import ClusterSpec, simulate_plan


def build(seqlens=(96, 48, 32), mask=None, block_size=16):
    batch = BatchSpec.build(list(seqlens), mask or CausalMask())
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return generate_blocks(batch, spec, block_size=block_size)


CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


class TestAssignments:
    def test_contiguous_splits_in_order(self):
        block_set = build(seqlens=(128,), block_size=16)  # 8 slices
        assign = contiguous_slice_assignment(block_set, 4)
        assert assign.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_zigzag_mirrors(self):
        block_set = build(seqlens=(128,), block_size=16)
        assign = zigzag_slice_assignment(block_set, 4)
        assert assign.tolist() == [0, 1, 2, 3, 3, 2, 1, 0]

    def test_short_sequence_covers_prefix_devices(self):
        block_set = build(seqlens=(32,), block_size=16)  # 2 slices, k=4
        assign = contiguous_slice_assignment(block_set, 4)
        assert set(assign.tolist()) <= {0, 1, 2, 3}


@pytest.mark.parametrize(
    "planner",
    [
        RingAttentionPlanner(zigzag=False),
        RingAttentionPlanner(zigzag=True),
        TransformerEnginePlanner(),
    ],
    ids=lambda p: p.name,
)
@pytest.mark.parametrize(
    "mask",
    [CausalMask(), LambdaMask(sink=4, window=12),
     SharedQuestionMask(num_answers=2, answer_fraction=0.3)],
    ids=lambda m: m.name,
)
def test_baseline_numerics(planner, mask):
    block_set = build(mask=mask)
    plan = planner.plan(block_set, CLUSTER)
    executor = SimExecutor(plan)
    inputs = BatchInputs.random(block_set, seed=9)
    executor.load_inputs(inputs)
    executor.run()
    outputs = executor.gather_outputs()
    references = reference_batch_outputs(block_set, inputs)
    for out, ref in zip(outputs, references):
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)


class TestRingProperties:
    def test_static_comm_independent_of_mask(self):
        """Ring forwards every KV block every step, mask or not."""
        causal = RingAttentionPlanner().plan(build(), CLUSTER)
        sparse = RingAttentionPlanner().plan(
            build(mask=LambdaMask(sink=4, window=12)), CLUSTER
        )
        assert causal.total_comm_bytes() == sparse.total_comm_bytes()

    def test_comm_volume_formula(self):
        """Each KV block travels R-1 hops around the ring."""
        block_set = build(seqlens=(64,), block_size=16)
        plan = RingAttentionPlanner().plan(block_set, CLUSTER)
        spec = block_set.attention
        total_kv = 4 * spec.head_groups * spec.kv_block_bytes(16)
        expected = total_kv * (CLUSTER.num_devices - 1)
        assert plan.total_comm_bytes() == expected

    def test_zigzag_balances_causal_compute(self):
        block_set = build(seqlens=(256,), block_size=16)
        ring_plan = RingAttentionPlanner(zigzag=False).plan(block_set, CLUSTER)
        zz_plan = RingAttentionPlanner(zigzag=True).plan(block_set, CLUSTER)

        def compute_spread(plan):
            timing = simulate_plan(plan)
            compute = [d.compute_time for d in timing.devices.values()]
            return max(compute) / (sum(compute) / len(compute))

        assert compute_spread(zz_plan) < compute_spread(ring_plan)


class TestTEProperties:
    def test_less_comm_than_rfa(self):
        """Head parallelism shrinks the ring: less KV traffic."""
        block_set = build(seqlens=(128, 64))
        rfa = RingAttentionPlanner().plan(block_set, CLUSTER)
        te = TransformerEnginePlanner().plan(block_set, CLUSTER)
        assert te.total_comm_bytes() < rfa.total_comm_bytes()

    def test_rejects_bad_head_parallel(self):
        block_set = build()
        with pytest.raises(ValueError):
            TransformerEnginePlanner(head_parallel=3).plan(block_set, CLUSTER)

    def test_head_rows_split_work(self):
        block_set = build(seqlens=(128,))
        plan = TransformerEnginePlanner().plan(block_set, CLUSTER)
        # Every attention tile on device d must belong to head row d % hp.
        hp = plan.meta["head_parallel"]
        for device, device_plan in plan.device_plans.items():
            for instruction in device_plan.instructions:
                if instruction.kind != "attention":
                    continue
                for tile in instruction.tiles:
                    assert tile.head_group % hp == device % hp


class TestLoongTrain:
    def test_pad_batch(self):
        batch = BatchSpec.build([100, 60, 30], CausalMask())
        padded = pad_batch(batch)
        assert all(seq.seqlen == 100 for seq in padded.sequences)

    def test_padding_inflates_compute_and_comm(self):
        block_set = build(seqlens=(96, 32, 32))
        lt = LoongTrainPlanner().plan(block_set, CLUSTER)
        te = TransformerEnginePlanner().plan(block_set, CLUSTER)
        assert lt.meta["padded_tokens"] > lt.meta["real_tokens"]
        assert lt.total_comm_bytes() > te.total_comm_bytes()

    def test_plan_is_timeable(self):
        block_set = build()
        plan = LoongTrainPlanner().plan(block_set, CLUSTER)
        timing = simulate_plan(plan)
        assert timing.iteration_time > 0
