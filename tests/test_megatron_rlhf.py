"""Tests for the Megatron baseline facade and RLHF data generation."""

import numpy as np
import pytest

from repro import AttentionSpec, BatchSpec, ClusterSpec, make_mask
from repro.baselines import MegatronBaseline
from repro.data import RlhfSample, sample_rlhf_batches
from repro.masks import SharedQuestionMask
from repro.sim import ModelSpec


class TestMegatronBaseline:
    def test_iteration_costing(self):
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        baseline = MegatronBaseline(
            cluster, attention, model=ModelSpec(num_layers=2),
            block_size=32,
        )
        batch = BatchSpec.build([256, 128], make_mask("causal"))
        result = baseline.iteration(batch)
        assert result.iteration_time > 0
        breakdown = result.breakdown()
        assert breakdown["total"] == pytest.approx(result.iteration_time)

    def test_plan_protocol(self):
        from repro.blocks import generate_blocks

        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        baseline = MegatronBaseline(cluster, attention, block_size=32)
        batch = BatchSpec.build([128, 64], make_mask("causal"))
        block_set = generate_blocks(batch, attention, block_size=32)
        plan = baseline.plan(block_set)
        assert plan.meta["planner"] == "te"


class TestRlhfData:
    def test_sample_mask_structure(self):
        sample = RlhfSample(question_len=100, answer_lens=(40, 60, 50))
        mask = sample.mask()
        assert isinstance(mask, SharedQuestionMask)
        assert mask.num_answers == 3
        assert 0 < mask.answer_fraction * 3 < 1

    def test_batches_respect_budget(self):
        batches = sample_rlhf_batches(3, token_budget=8192, seed=1)
        assert len(batches) == 3
        for batch in batches:
            assert batch.total_tokens <= 8192
            for seq in batch.sequences:
                assert isinstance(seq.mask, SharedQuestionMask)

    def test_masks_vary_per_sequence(self):
        """The paper's point: masks are input-dependent."""
        batches = sample_rlhf_batches(2, token_budget=16384, seed=0)
        masks = {
            (seq.mask.num_answers, round(seq.mask.answer_fraction, 6))
            for batch in batches
            for seq in batch.sequences
        }
        assert len(masks) > 1

    def test_deterministic(self):
        a = sample_rlhf_batches(2, token_budget=4096, seed=5)
        b = sample_rlhf_batches(2, token_budget=4096, seed=5)
        assert [s.seqlen for x in a for s in x.sequences] == [
            s.seqlen for x in b for s in x.sequences
        ]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_rlhf_batches(0)

    def test_rlhf_batches_plan_and_execute(self):
        from repro import DCPConfig, DCPPlanner
        from repro.runtime import (
            BatchInputs,
            SimExecutor,
            reference_batch_outputs,
        )

        batches = sample_rlhf_batches(
            1, token_budget=512, mean_question=64, mean_answer=32, seed=2
        )
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        planner = DCPPlanner(cluster, attention,
                             DCPConfig(block_size=16, restarts=1))
        plan = planner.plan_batch(batches[0])
        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=3)
        executor.load_inputs(inputs)
        executor.run()
        for out, ref in zip(executor.gather_outputs(),
                            reference_batch_outputs(plan.block_set, inputs)):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
