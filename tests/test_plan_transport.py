"""Zero-copy plan transport: shm ring, process backend, KV accounting."""

import hashlib
import os
import pickle
import threading

import numpy as np
import pytest

from repro.blocks import BatchSpec
from repro.core import DCPConfig, DCPPlanner, KVClient, KVStore
from repro.masks import make_mask
from repro.pipeline import (
    OverlapPipeline,
    ProcessPlannerBackend,
    plan_fingerprint,
)
from repro.pipeline.shm import PlanRing, ShmUnavailable
from repro.sim import ClusterSpec

CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def make_planner():
    return DCPPlanner(CLUSTER, config=DCPConfig(block_size=256))


def make_batches(n=3, base=1024):
    return [
        BatchSpec.build([base + 256 * i, 512], [make_mask("causal")] * 2)
        for i in range(n)
    ]


# -- shm ring ----------------------------------------------------------------


class TestPlanRing:
    def test_roundtrip(self):
        with PlanRing.create(slots=2, slot_bytes=1024) as ring:
            slot = ring.reserve()
            assert slot is not None
            assert ring.write(slot, b"hello plan")
            view = ring.read(slot)
            assert bytes(view) == b"hello plan"
            view.release()
            ring.free(slot)
            assert ring.free_slots() == 2

    def test_reserve_exhaustion_and_free(self):
        with PlanRing.create(slots=2, slot_bytes=64) as ring:
            a, b = ring.reserve(), ring.reserve()
            assert {a, b} == {0, 1}
            assert ring.reserve() is None  # full: caller falls back
            ring.free(a)
            assert ring.reserve() == a

    def test_write_too_big_falls_back(self):
        with PlanRing.create(slots=1, slot_bytes=8) as ring:
            slot = ring.reserve()
            assert ring.write(slot, b"x" * 9) is False
            # Slot still reserved and usable for a fitting payload.
            assert ring.write(slot, b"x" * 8) is True
            view = ring.read(slot)
            assert bytes(view) == b"x" * 8
            view.release()

    def test_read_unready_slot_raises(self):
        with PlanRing.create(slots=1, slot_bytes=64) as ring:
            slot = ring.reserve()
            with pytest.raises(RuntimeError):
                ring.read(slot)

    def test_write_unreserved_slot_raises(self):
        with PlanRing.create(slots=1, slot_bytes=64) as ring:
            with pytest.raises(RuntimeError):
                ring.write(0, b"nope")

    def test_wraparound_many_cycles(self):
        """Slots recycle cleanly for many more plans than slots."""
        with PlanRing.create(slots=3, slot_bytes=256) as ring:
            for i in range(50):
                slot = ring.reserve()
                assert slot is not None
                payload = f"plan-{i}".encode() * 7
                assert ring.write(slot, payload)
                view = ring.read(slot)
                assert bytes(view) == payload
                view.release()
                ring.free(slot)
            assert ring.free_slots() == 3

    def test_attach_sees_writes(self):
        with PlanRing.create(slots=2, slot_bytes=128) as ring:
            writer = PlanRing.attach(ring.spec())
            try:
                slot = ring.reserve()
                assert writer.write(slot, b"via attachment")
                view = ring.read(slot)
                assert bytes(view) == b"via attachment"
                view.release()
            finally:
                writer.close()

    def test_concurrent_producers_stress(self):
        """Many writer threads, wraparound, checksummed payloads."""
        ring = PlanRing.create(slots=4, slot_bytes=4096)
        results = []
        errors = []
        lock = threading.Lock()
        rng = np.random.default_rng(0)
        payloads = [rng.bytes(rng.integers(100, 4000)) for _ in range(60)]

        def producer(chunk):
            try:
                for payload in chunk:
                    slot = None
                    while slot is None:
                        slot = ring.reserve()
                    assert ring.write(slot, payload)
                    with lock:
                        results.append((slot, hashlib.sha1(payload).digest()))
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        def consumer():
            seen = 0
            try:
                while seen < len(payloads):
                    with lock:
                        item = results.pop(0) if results else None
                    if item is None:
                        continue
                    slot, digest = item
                    view = ring.read(slot)
                    assert hashlib.sha1(bytes(view)).digest() == digest
                    view.release()
                    ring.free(slot)
                    seen += 1
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        chunks = [payloads[i::3] for i in range(3)]
        threads = [threading.Thread(target=producer, args=(c,))
                   for c in chunks]
        drain = threading.Thread(target=consumer)
        for t in threads:
            t.start()
        drain.start()
        for t in threads:
            t.join(timeout=30)
        drain.join(timeout=30)
        ring.close()
        assert not errors
        assert not any(t.is_alive() for t in threads + [drain])

    def test_create_cleans_up_segments(self):
        ring = PlanRing.create(slots=1, slot_bytes=32)
        names = [n for n in os.listdir("/dev/shm")
                 if n.startswith("planring-")]
        assert names
        ring.close()
        leftovers = [n for n in os.listdir("/dev/shm")
                     if n.startswith("planring-")]
        assert not leftovers

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PlanRing.create(slots=0)
        with pytest.raises(ValueError):
            PlanRing.create(slots=1, slot_bytes=0)


# -- process backend transports ----------------------------------------------


class TestProcessTransport:
    @pytest.mark.parametrize("transport", ["shm", "wire", "pickle"])
    def test_plans_identical_to_synchronous(self, transport):
        planner = make_planner()
        batches = make_batches()
        expected = [plan_fingerprint(planner.plan_batch(b)) for b in batches]
        backend = ProcessPlannerBackend(
            planner, max_workers=2, transport=transport
        )
        try:
            tickets = [backend.submit(i, b) for i, b in enumerate(batches)]
            got = [
                plan_fingerprint(t.result(timeout=120)[0]) for t in tickets
            ]
            assert got == expected
            stats = backend.transport_stats
            assert stats["plans"] == len(batches)
            assert stats[f"{backend.transport}_plans"] == len(batches)
        finally:
            backend.close()

    def test_shm_transport_accounts_payloads(self):
        backend = ProcessPlannerBackend(make_planner(), max_workers=2)
        try:
            assert backend.transport == "shm"
            tickets = [
                backend.submit(i, b) for i, b in enumerate(make_batches(2))
            ]
            for t in tickets:
                t.result(timeout=120)
            stats = backend.transport_stats
            assert stats["shm_plans"] == 2
            assert stats["payload_bytes"] > 0
            assert stats["encode_s"] >= 0.0
            assert stats["decode_s"] >= 0.0
        finally:
            backend.close()

    def test_shm_unavailable_falls_back_to_wire(self, monkeypatch):
        import repro.pipeline.backends as backends

        def refuse(*args, **kwargs):
            raise ShmUnavailable("test: no shm")

        monkeypatch.setattr(backends.PlanRing, "create", refuse)
        backend = ProcessPlannerBackend(make_planner(), max_workers=1)
        try:
            assert backend.transport == "wire"
            plan, _, _ = backend.submit(0, make_batches(1)[0]).result(
                timeout=120
            )
            assert plan.num_devices == CLUSTER.num_devices
            assert backend.transport_stats["wire_plans"] == 1
        finally:
            backend.close()

    def test_oversized_plan_falls_back_to_pipe(self):
        backend = ProcessPlannerBackend(
            make_planner(), max_workers=1, slot_bytes=1024
        )
        try:
            assert backend.transport == "shm"
            plan, _, _ = backend.submit(0, make_batches(1)[0]).result(
                timeout=120
            )
            assert plan.num_devices == CLUSTER.num_devices
            # The plan cannot fit a 1 KB slot: per-plan pipe fallback.
            assert backend.transport_stats["wire_plans"] == 1
            assert backend.transport_stats["shm_plans"] == 0
        finally:
            backend.close()

    def test_ring_exhaustion_falls_back_per_plan(self):
        backend = ProcessPlannerBackend(
            make_planner(), max_workers=2, ring_slots=1
        )
        try:
            batches = make_batches(3)
            tickets = [backend.submit(i, b) for i, b in enumerate(batches)]
            fps = [
                plan_fingerprint(t.result(timeout=120)[0]) for t in tickets
            ]
            assert len(fps) == 3
            stats = backend.transport_stats
            assert stats["shm_plans"] + stats["wire_plans"] == 3
            # Only one slot exists, so at least two jobs were dispatched
            # slotless and came back over the pipe.
            assert stats["wire_plans"] >= 2
        finally:
            backend.close()

    def test_backend_close_releases_shm(self):
        backend = ProcessPlannerBackend(make_planner(), max_workers=1)
        backend.submit(0, make_batches(1)[0]).result(timeout=120)
        backend.close()
        leftovers = [n for n in os.listdir("/dev/shm")
                     if n.startswith("planring-")]
        assert not leftovers

    def test_pipeline_identity_on_shm_transport(self):
        planner = make_planner()
        batches = make_batches(4)
        expected = [plan_fingerprint(planner.plan_batch(b)) for b in batches]
        backend = ProcessPlannerBackend(planner, max_workers=2)
        with OverlapPipeline(batches, planner, lookahead=2,
                             backend=backend) as pipeline:
            got = [plan_fingerprint(plan) for _data, plan in pipeline]
        assert got == expected


# -- satellite: the planner ships once, never per job ------------------------


class TestJobPayload:
    def test_job_payload_excludes_planner(self):
        planner = make_planner()
        # Inflate the planner the way real runs do: planning leaves a
        # multi-megabyte placement on it.  Per-job payloads must not
        # carry any of it.
        planner.last_placement = np.zeros(1_000_000, dtype=np.int64)
        backend = ProcessPlannerBackend(planner, max_workers=1)
        try:
            batch = make_batches(1)[0]
            ticket = backend.submit(0, batch)
            ticket.result(timeout=120)
            assert backend.planner_payload_bytes > 5_000_000
            assert backend.last_job_payload_bytes < 100_000
            assert (
                backend.last_job_payload_bytes
                < backend.planner_payload_bytes / 50
            )
        finally:
            backend.close()

    def test_override_planner_ships_with_the_job(self):
        planner = make_planner()
        backend = ProcessPlannerBackend(planner, max_workers=1)
        try:
            batch = make_batches(1)[0]
            backend.submit(0, batch)
            baseline = backend.last_job_payload_bytes
            backend.resubmit(0, batch, planner=make_planner())
            assert backend.last_job_payload_bytes > baseline
        finally:
            backend.close()


# -- satellite: KVClient accounting without double pickling ------------------


class _CountingValue:
    """Counts how many times it gets pickled."""

    pickles = 0

    def __init__(self, blob):
        self.blob = blob

    def __reduce__(self):
        type(self).pickles += 1
        return (_CountingValue, (self.blob,))


class TestKVAccounting:
    def test_put_pickles_exactly_once(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        _CountingValue.pickles = 0
        client.put("k", _CountingValue(b"x" * 100))
        assert _CountingValue.pickles == 1

    def test_put_if_changed_pickles_exactly_once(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        _CountingValue.pickles = 0
        client.put_if_changed("k", _CountingValue(b"x" * 100))
        assert _CountingValue.pickles == 1

    def test_get_does_not_reserialize(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        client.put("k", _CountingValue(b"x" * 100))
        _CountingValue.pickles = 0
        client.get("k")
        assert _CountingValue.pickles == 0
        assert client.bytes_received == client.bytes_sent

    def test_counters_match_entry_bytes(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        value = {"payload": list(range(500))}
        client.put("k", value)
        assert client.bytes_sent == store.entry_bytes("k")
        client.get("k")
        assert client.bytes_received == store.entry_bytes("k")

    def test_raw_bytes_path_has_no_pickle_framing(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        payload = b"\x00" * 1000
        client.put("k", payload)
        assert store.entry_bytes("k") == len(payload)
        assert store.entry_bytes("k") < len(pickle.dumps(payload))
        assert client.get("k") == payload
        assert client.bytes_sent == len(payload)

    def test_raw_bytes_roundtrip_via_get_unless(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        client.put("k", b"columnar")
        value, version, fetched = client.get_unless("k")
        assert (value, fetched) == (b"columnar", True)
        received = client.bytes_received
        value, _, fetched = client.get_unless("k", version=version)
        assert (value, fetched) == (None, False)
        assert client.bytes_received == received

    def test_memoryview_values_stored_as_bytes(self):
        store = KVStore(host_machine=0)
        store.put("k", memoryview(b"viewed"))
        assert store.get("k") == b"viewed"


class TestLeakAccounting:
    def test_buffer_error_on_close_is_counted_and_logged(self, caplog):
        """A stray exported view at close used to leak the mapping
        silently; now it lands in shm.leaked_maps plus one warning."""
        import logging

        from repro.pipeline import leaked_maps

        try:
            ring = PlanRing.create(slots=1, slot_bytes=64)
        except ShmUnavailable:
            pytest.skip("no shared memory on this host")
        slot = ring.reserve()
        assert ring.write(slot, b"payload")
        view = ring.read(slot)  # deliberately not released
        before = leaked_maps()
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.shm"):
            ring.close()
        assert leaked_maps() == before + 1
        assert any(
            "leaked" in record.message for record in caplog.records
        )
        view.release()

    def test_clean_close_leaks_nothing(self):
        from repro.pipeline import leaked_maps

        try:
            ring = PlanRing.create(slots=1, slot_bytes=64)
        except ShmUnavailable:
            pytest.skip("no shared memory on this host")
        slot = ring.reserve()
        assert ring.write(slot, b"payload")
        view = ring.read(slot)
        view.release()
        before = leaked_maps()
        ring.close()
        assert leaked_maps() == before
