"""Failure-injection tests: corrupted plans must fail loudly.

The executor and timing simulator are the correctness oracles of this
reproduction; these tests verify they *detect* broken instruction
streams (lost launches, duplicate messages, missing waits) instead of
silently producing wrong numbers — the failure modes a real
distributed attention runtime deadlocks or corrupts on.
"""

import dataclasses

import numpy as np
import pytest

from repro import AttentionSpec, BatchSpec, ClusterSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask
from repro.runtime import BatchInputs, SimExecutor
from repro.runtime.fabric import Fabric
from repro.scheduling import PlanValidationError, validate_plan
from repro.scheduling.instructions import CommLaunch, CommWait
from repro.sim import simulate_plan

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def _plan(seqlens=(256, 64)):
    batch = BatchSpec.build(list(seqlens), CausalMask())
    block_set = generate_blocks(batch, ATTENTION, block_size=32)
    planner = DCPPlanner(
        CLUSTER, attention=ATTENTION,
        config=DCPConfig(block_size=32, restarts=1),
    )
    return planner.plan(block_set, CLUSTER)


def _first_device_with(plan, kind):
    for device, device_plan in sorted(plan.device_plans.items()):
        if any(ins.kind == kind for ins in device_plan.instructions):
            return device
    pytest.skip(f"plan has no {kind} instruction")


def _strip(plan, device, predicate):
    """Remove instructions of ``device`` matching ``predicate``."""
    device_plan = plan.device_plans[device]
    device_plan.instructions = [
        ins for ins in device_plan.instructions if not predicate(ins)
    ]


class TestExecutorDetection:
    def test_lost_send_deadlocks_executor(self):
        plan = _plan()
        sender = None
        for device, device_plan in sorted(plan.device_plans.items()):
            if any(
                ins.kind == "comm_launch" and ins.sends
                for ins in device_plan.instructions
            ):
                sender = device
                break
        if sender is None:
            pytest.skip("plan has no cross-device sends")
        # Drop the victim's sends but keep its receives: its peers wait
        # on messages that never arrive.
        device_plan = plan.device_plans[sender]
        device_plan.instructions = [
            dataclasses.replace(ins, sends=())
            if ins.kind == "comm_launch"
            else ins
            for ins in device_plan.instructions
        ]
        executor = SimExecutor(plan)
        executor.load_inputs(BatchInputs.random(plan.block_set, seed=0))
        with pytest.raises(RuntimeError, match="deadlock"):
            executor.run()

    def test_lost_send_deadlocks_timing(self):
        plan = _plan()
        sender = None
        for device, device_plan in sorted(plan.device_plans.items()):
            if any(
                ins.kind == "comm_launch" and ins.sends
                for ins in device_plan.instructions
            ):
                sender = device
                break
        if sender is None:
            pytest.skip("plan has no cross-device sends")
        device_plan = plan.device_plans[sender]
        device_plan.instructions = [
            dataclasses.replace(ins, sends=())
            if ins.kind == "comm_launch"
            else ins
            for ins in device_plan.instructions
        ]
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate_plan(plan)

    def test_unknown_buffer_kind_rejected(self):
        plan = _plan()
        device = _first_device_with(plan, "comm_launch")
        device_plan = plan.device_plans[device]
        for index, ins in enumerate(device_plan.instructions):
            if ins.kind == "comm_launch" and ins.sends:
                bad = dataclasses.replace(
                    ins.sends[0], buffer="not-a-buffer"
                )
                device_plan.instructions[index] = dataclasses.replace(
                    ins, sends=(bad,) + ins.sends[1:]
                )
                break
        else:
            pytest.skip("no sends to corrupt")
        executor = SimExecutor(plan)
        executor.load_inputs(BatchInputs.random(plan.block_set, seed=0))
        with pytest.raises((ValueError, RuntimeError)):
            executor.run()


class TestValidatorDetection:
    def test_intact_plan_validates(self):
        validate_plan(_plan())

    def test_dropped_launch_caught(self):
        plan = _plan()
        device = _first_device_with(plan, "comm_launch")
        _strip(plan, device, lambda ins: ins.kind == "comm_launch")
        with pytest.raises(PlanValidationError):
            validate_plan(plan)

    def test_dropped_wait_caught(self):
        plan = _plan()
        device = None
        for d, device_plan in sorted(plan.device_plans.items()):
            if any(
                ins.kind == "comm_launch" and ins.recvs
                for ins in device_plan.instructions
            ):
                device = d
                break
        if device is None:
            pytest.skip("plan has no receives")
        _strip(plan, device, lambda ins: ins.kind == "comm_wait")
        with pytest.raises(PlanValidationError):
            validate_plan(plan)


class TestFabric:
    def test_duplicate_post_rejected(self):
        fabric = Fabric(CLUSTER)
        fabric.post(0, 1, ("t",), np.zeros(1), 8)
        with pytest.raises(RuntimeError, match="duplicate"):
            fabric.post(0, 1, ("t",), np.zeros(1), 8)

    def test_collect_removes_message(self):
        fabric = Fabric(CLUSTER)
        fabric.post(0, 1, ("t",), np.zeros(1), 8)
        assert fabric.ready(0, 1, ("t",))
        assert fabric.collect(0, 1, ("t",)) is not None
        assert not fabric.ready(0, 1, ("t",))
        assert fabric.pending_count() == 0

    def test_traffic_accounting(self):
        fabric = Fabric(CLUSTER)
        fabric.post(0, 1, ("a",), np.zeros(1), 100)  # same machine
        fabric.post(0, 2, ("b",), np.zeros(1), 50)  # cross machine
        assert fabric.total_bytes == 150
        assert fabric.inter_machine_bytes == 50
