"""Failure-injection tests: corrupted plans must fail loudly.

The executor and timing simulator are the correctness oracles of this
reproduction; these tests verify they *detect* broken instruction
streams (lost launches, duplicate messages, missing waits) instead of
silently producing wrong numbers — the failure modes a real
distributed attention runtime deadlocks or corrupts on.

The pipeline half of the battery injects faults *upstream* of the
plans: planner workers that raise or hang mid-plan must be
retried/respawned on all three backends without deadlocking the
prefetch window, and a mid-stream device-removal event must produce a
valid re-plan rather than a stale-cache hit.
"""

import dataclasses
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro import AttentionSpec, BatchSpec, ClusterSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner, KVStore, PlanCache, PlannerPool
from repro.masks import CausalMask
from repro.pipeline import (
    KVPlannerBackend,
    OverlapPipeline,
    StreamingOverlapPipeline,
    plan_fingerprint,
)
from repro.runtime import BatchInputs, SimExecutor
from repro.runtime.fabric import Fabric
from repro.scheduling import PlanValidationError, validate_plan
from repro.sim import ClusterEventSource, simulate_plan

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def _plan(seqlens=(256, 64)):
    batch = BatchSpec.build(list(seqlens), CausalMask())
    block_set = generate_blocks(batch, ATTENTION, block_size=32)
    planner = DCPPlanner(
        CLUSTER, attention=ATTENTION,
        config=DCPConfig(block_size=32, restarts=1),
    )
    return planner.plan(block_set, CLUSTER)


def _first_device_with(plan, kind):
    for device, device_plan in sorted(plan.device_plans.items()):
        if any(ins.kind == kind for ins in device_plan.instructions):
            return device
    pytest.skip(f"plan has no {kind} instruction")


def _strip(plan, device, predicate):
    """Remove instructions of ``device`` matching ``predicate``."""
    device_plan = plan.device_plans[device]
    device_plan.instructions = [
        ins for ins in device_plan.instructions if not predicate(ins)
    ]


class TestExecutorDetection:
    def test_lost_send_deadlocks_executor(self):
        plan = _plan()
        sender = None
        for device, device_plan in sorted(plan.device_plans.items()):
            if any(
                ins.kind == "comm_launch" and ins.sends
                for ins in device_plan.instructions
            ):
                sender = device
                break
        if sender is None:
            pytest.skip("plan has no cross-device sends")
        # Drop the victim's sends but keep its receives: its peers wait
        # on messages that never arrive.
        device_plan = plan.device_plans[sender]
        device_plan.instructions = [
            dataclasses.replace(ins, sends=())
            if ins.kind == "comm_launch"
            else ins
            for ins in device_plan.instructions
        ]
        executor = SimExecutor(plan)
        executor.load_inputs(BatchInputs.random(plan.block_set, seed=0))
        with pytest.raises(RuntimeError, match="deadlock"):
            executor.run()

    def test_lost_send_deadlocks_timing(self):
        plan = _plan()
        sender = None
        for device, device_plan in sorted(plan.device_plans.items()):
            if any(
                ins.kind == "comm_launch" and ins.sends
                for ins in device_plan.instructions
            ):
                sender = device
                break
        if sender is None:
            pytest.skip("plan has no cross-device sends")
        device_plan = plan.device_plans[sender]
        device_plan.instructions = [
            dataclasses.replace(ins, sends=())
            if ins.kind == "comm_launch"
            else ins
            for ins in device_plan.instructions
        ]
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate_plan(plan)

    def test_unknown_buffer_kind_rejected(self):
        plan = _plan()
        device = _first_device_with(plan, "comm_launch")
        device_plan = plan.device_plans[device]
        for index, ins in enumerate(device_plan.instructions):
            if ins.kind == "comm_launch" and ins.sends:
                bad = dataclasses.replace(
                    ins.sends[0], buffer="not-a-buffer"
                )
                device_plan.instructions[index] = dataclasses.replace(
                    ins, sends=(bad,) + ins.sends[1:]
                )
                break
        else:
            pytest.skip("no sends to corrupt")
        executor = SimExecutor(plan)
        executor.load_inputs(BatchInputs.random(plan.block_set, seed=0))
        with pytest.raises((ValueError, RuntimeError)):
            executor.run()


class TestValidatorDetection:
    def test_intact_plan_validates(self):
        validate_plan(_plan())

    def test_dropped_launch_caught(self):
        plan = _plan()
        device = _first_device_with(plan, "comm_launch")
        _strip(plan, device, lambda ins: ins.kind == "comm_launch")
        with pytest.raises(PlanValidationError):
            validate_plan(plan)

    def test_dropped_wait_caught(self):
        plan = _plan()
        device = None
        for d, device_plan in sorted(plan.device_plans.items()):
            if any(
                ins.kind == "comm_launch" and ins.recvs
                for ins in device_plan.instructions
            ):
                device = d
                break
        if device is None:
            pytest.skip("plan has no receives")
        _strip(plan, device, lambda ins: ins.kind == "comm_wait")
        with pytest.raises(PlanValidationError):
            validate_plan(plan)


def _pipeline_planner(cluster=CLUSTER):
    return DCPPlanner(
        cluster, attention=ATTENTION,
        config=DCPConfig(block_size=16, restarts=1),
    )


def _pipeline_batches(count=4):
    mask = CausalMask()
    return [
        BatchSpec.build([48 + 16 * (i % 3), 32], mask) for i in range(count)
    ]


class CrashingPlanner:
    """Raises for the first ``failures`` plan calls (threads share it)."""

    def __init__(self, planner, failures):
        self.planner = planner
        self.failures = failures
        self.calls = 0
        self._lock = threading.Lock()

    def plan_batch(self, batch):
        with self._lock:
            self.calls += 1
            crash = self.calls <= self.failures
        if crash:
            raise RuntimeError("injected planner crash")
        return self.planner.plan_batch(batch)


class WorkerOnlyCrashPlanner:
    """Raises in worker *processes*, plans fine in the main process.

    Process workers cannot share a call counter with the parent, so the
    injected fault keys off the process identity instead: every
    dispatch to the process pool dies, and only the pipeline's inline
    last-resort path (which runs in the main process) can succeed.
    """

    def __init__(self, planner):
        self.planner = planner

    def plan_batch(self, batch):
        if multiprocessing.current_process().name != "MainProcess":
            raise RuntimeError("injected worker-process crash")
        return self.planner.plan_batch(batch)


class HangingPlanner:
    """Sleeps out ``delay`` on the first ``hangs`` calls, then plans."""

    def __init__(self, planner, hangs, delay=0.6):
        self.planner = planner
        self.hangs = hangs
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def plan_batch(self, batch):
        with self._lock:
            self.calls += 1
            hang = self.calls <= self.hangs
        if hang:
            time.sleep(self.delay)
        return self.planner.plan_batch(batch)


class TestPlannerWorkerFaults:
    """Raising/hanging planner workers must not deadlock the window."""

    def _check_all_plans(self, pipeline, batches, reference_planner):
        plans = [plan for _, plan in pipeline]
        assert len(plans) == len(batches)
        for plan, batch in zip(plans, batches):
            assert plan_fingerprint(plan) == plan_fingerprint(
                reference_planner.plan_batch(batch)
            )
        return pipeline.stats()

    def test_thread_worker_crash_retried(self):
        reference = _pipeline_planner()
        flaky = CrashingPlanner(_pipeline_planner(), failures=2)
        batches = _pipeline_batches(4)
        pipeline = OverlapPipeline(
            batches, flaky, lookahead=2, max_workers=2
        )
        stats = self._check_all_plans(pipeline, batches, reference)
        assert stats.plan_retries >= 2

    def test_thread_worker_hang_respawned(self):
        reference = _pipeline_planner()
        hangy = HangingPlanner(_pipeline_planner(), hangs=1)
        batches = _pipeline_batches(4)
        pipeline = OverlapPipeline(
            batches, hangy, lookahead=1, max_workers=2, plan_timeout=0.1
        )
        stats = self._check_all_plans(pipeline, batches, reference)
        assert stats.plan_retries >= 1

    def test_hang_recovery_with_saturated_pool_and_throttle(self):
        """A hung worker permanently owns its pool thread and throttle
        slot; respawns must escape both (dedicated threads), or one
        hang would wedge background planning for the rest of the run."""
        reference = _pipeline_planner()
        hangy = HangingPlanner(_pipeline_planner(), hangs=1, delay=5.0)
        batches = _pipeline_batches(4)
        pipeline = OverlapPipeline(
            batches, hangy, lookahead=1, max_workers=1,
            max_concurrent_plans=1, plan_timeout=0.15,
        )
        import time as _time

        begin = _time.monotonic()
        stats = self._check_all_plans(pipeline, batches, reference)
        elapsed = _time.monotonic() - begin
        # One escape-thread respawn per affected item, not the
        # retry-retry-inline spiral (two per item) that re-queueing
        # into the wedged pool would produce.
        assert 1 <= stats.plan_retries <= len(batches)
        # Recovery must not serialize on the 5s hang.  Generous bound:
        # the claim is "did not wait out the hang", not a latency SLO.
        assert elapsed < 4.0

    def test_process_worker_crash_falls_back_inline(self):
        reference = _pipeline_planner()
        flaky = WorkerOnlyCrashPlanner(_pipeline_planner())
        batches = _pipeline_batches(3)
        pipeline = OverlapPipeline(
            batches, flaky, lookahead=1, max_workers=2,
            backend="process", max_plan_retries=1,
        )
        stats = self._check_all_plans(pipeline, batches, reference)
        # Every batch: one dispatch + one respawn fail before inline.
        assert stats.plan_retries >= len(batches)

    def test_kv_worker_crash_respawned(self):
        reference = _pipeline_planner()
        flaky = CrashingPlanner(_pipeline_planner(), failures=2)
        batches = _pipeline_batches(4)
        with PlannerPool(flaky, KVStore(), num_machines=2) as pool:
            pipeline = OverlapPipeline(
                batches, flaky, lookahead=1,
                backend=KVPlannerBackend(pool),
            )
            stats = self._check_all_plans(pipeline, batches, reference)
        assert stats.plan_retries >= 2

    def test_kv_worker_hang_respawned(self):
        reference = _pipeline_planner()
        hangy = HangingPlanner(_pipeline_planner(), hangs=1)
        batches = _pipeline_batches(3)
        with PlannerPool(hangy, KVStore(), cores_per_machine=2) as pool:
            pipeline = OverlapPipeline(
                batches, hangy, lookahead=1,
                backend=KVPlannerBackend(pool), plan_timeout=0.15,
            )
            stats = self._check_all_plans(pipeline, batches, reference)
        assert stats.plan_retries >= 1

    def test_crash_with_cache_releases_reservation(self):
        """A failed owner must not leave waiters stuck on its signature."""
        flaky = CrashingPlanner(_pipeline_planner(), failures=1)
        cache = PlanCache(flaky, capacity=8)
        mask = CausalMask()
        batches = [BatchSpec.build([48, 32], mask) for _ in range(3)]
        pipeline = OverlapPipeline(
            batches, flaky, lookahead=2, max_workers=2, cache=cache
        )
        plans = [plan for _, plan in pipeline]
        assert len(plans) == 3
        stats = cache.stats()
        assert stats["size"] >= 1  # the retried plan landed in the cache


class TestClusterFaults:
    def test_device_removal_produces_valid_replan(self):
        """Removal mid-stream: re-plan validates, no stale-cache hit."""
        planner = _pipeline_planner()
        cache = PlanCache(planner, capacity=8)
        events = ClusterEventSource(CLUSTER)
        mask = CausalMask()
        # One signature throughout: the pre-event plan is cached, so a
        # stale-cache bug would happily serve it after the removal.
        batches = [BatchSpec.build([64, 32], mask) for _ in range(4)]
        pipeline = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=1, max_workers=1,
            cache=cache, events=events,
        )
        plans = []
        for i, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            if i == 0:
                events.remove_machines(1)
        shrunk = ClusterSpec(num_machines=1, devices_per_machine=2)
        assert plans[0].cluster == CLUSTER
        for plan in plans[1:]:
            assert plan.cluster == shrunk
            validate_plan(plan)
        stats = pipeline.stats()
        assert stats.replans + stats.replan_jobs_reused >= 1
        # The re-planned batches execute correctly on the new shape.
        from repro.runtime import reference_batch_outputs

        plan = plans[-1]
        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=0)
        executor.load_inputs(inputs)
        executor.run()
        for out, ref in zip(
            executor.gather_outputs(),
            reference_batch_outputs(plan.block_set, inputs),
        ):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

    def test_affected_replan_crash_respawned(self):
        """A delta re-plan (warm-started dispatch for an affected job)
        that crashes must be respawned like any worker failure — the
        respawn plans cold against the new shape and the stream keeps
        yielding valid plans."""

        class WarmReplanCrashPlanner:
            """Crashes the first ``failures`` warm re-plan dispatches."""

            def __init__(self, planner, failures):
                self.planner = planner
                self.failures = failures
                self.warm_calls = 0
                self._lock = threading.Lock()

            def plan_batch(self, batch, cluster=None, warm=None):
                if warm is not None:
                    with self._lock:
                        self.warm_calls += 1
                        crash = self.warm_calls <= self.failures
                    if crash:
                        raise RuntimeError("injected re-plan crash")
                if cluster is not None:
                    return self.planner.plan_batch(
                        batch, cluster=cluster, warm=warm
                    )
                return self.planner.plan_batch(batch)

        flaky = WarmReplanCrashPlanner(_pipeline_planner(), failures=1)
        events = ClusterEventSource(CLUSTER)
        batches = _pipeline_batches(5)
        pipeline = StreamingOverlapPipeline(
            iter(batches), flaky, lookahead=2, max_workers=2, events=events
        )
        shrunk = ClusterSpec(num_machines=1, devices_per_machine=2)
        plans = []
        for i, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            if i == 0:
                # Let the window settle so the event classifies (and
                # warm re-dispatches) real plans deterministically.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if all(
                        item.ticket is not None and item.ticket.ready()
                        for item in pipeline._pending
                    ):
                        break
                    time.sleep(0.005)
                events.remove_machines(1)
        stats = pipeline.stats()
        assert len(plans) == len(batches)
        assert flaky.warm_calls >= 1  # the injected crash actually fired
        assert stats.plan_retries >= 1
        assert stats.partial_replans >= 1
        for plan in plans[1:]:
            assert plan.cluster == shrunk
            validate_plan(plan)


class TestFabric:
    def test_duplicate_post_rejected(self):
        fabric = Fabric(CLUSTER)
        fabric.post(0, 1, ("t",), np.zeros(1), 8)
        with pytest.raises(RuntimeError, match="duplicate"):
            fabric.post(0, 1, ("t",), np.zeros(1), 8)

    def test_collect_removes_message(self):
        fabric = Fabric(CLUSTER)
        fabric.post(0, 1, ("t",), np.zeros(1), 8)
        assert fabric.ready(0, 1, ("t",))
        assert fabric.collect(0, 1, ("t",)) is not None
        assert not fabric.ready(0, 1, ("t",))
        assert fabric.pending_count() == 0

    def test_traffic_accounting(self):
        fabric = Fabric(CLUSTER)
        fabric.post(0, 1, ("a",), np.zeros(1), 100)  # same machine
        fabric.post(0, 2, ("b",), np.zeros(1), 50)  # cross machine
        assert fabric.total_bytes == 150
        assert fabric.inter_machine_bytes == 50
