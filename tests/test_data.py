"""Tests for synthetic datasets and batching."""

import numpy as np
import pytest

from repro.data import (
    LONGALIGN,
    LONG_DATA_COLLECTIONS,
    MAX_SEQLEN,
    batches_to_specs,
    pack_batches,
    sample_lengths,
    scale_lengths,
)
from repro.masks import CausalMask, SharedQuestionMask


class TestDistributions:
    def test_deterministic_given_seed(self):
        a = sample_lengths("longalign", 100, seed=1)
        b = sample_lengths("longalign", 100, seed=1)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = sample_lengths("longalign", 100, seed=1)
        b = sample_lengths("longalign", 100, seed=2)
        assert not np.array_equal(a, b)

    def test_capped_and_positive(self):
        lengths = sample_lengths("longdatacollections", 5000, seed=0)
        assert lengths.min() >= 32
        assert lengths.max() <= MAX_SEQLEN

    def test_longalign_longer_than_ldc(self):
        """Fig. 2: LongAlign has longer mean, fewer short sequences."""
        la = LONGALIGN.sample(20000, seed=0)
        ldc = LONG_DATA_COLLECTIONS.sample(20000, seed=0)
        assert la.mean() > 1.5 * ldc.mean()
        assert (ldc < 4096).mean() > (la < 4096).mean()

    def test_skewed_long_tail(self):
        lengths = LONG_DATA_COLLECTIONS.sample(20000, seed=0)
        assert np.median(lengths) < lengths.mean()

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            sample_lengths("nope", 10)


class TestScaleLengths:
    def test_scaling_and_cap(self):
        lengths = np.array([100, 70000])
        assert scale_lengths(lengths, 2.0, cap=131072).tolist() == [200, 131072]

    def test_scale_down_keeps_positive(self):
        assert scale_lengths(np.array([1]), 0.5).tolist() == [1]


class TestPackBatches:
    def test_budget_respected(self):
        lengths = [500] * 20
        batches = pack_batches(lengths, token_budget=1024)
        for batch in batches:
            assert sum(batch) <= 1024
        assert sum(len(b) for b in batches) == 20

    def test_oversized_sequence_truncated(self):
        batches = pack_batches([5000], token_budget=1000)
        assert batches == [[1000]]

    def test_max_seqlen_clipping(self):
        batches = pack_batches([5000, 100], token_budget=10000,
                               max_seqlen=2000)
        assert batches == [[2000, 100]]

    def test_every_sequence_kept_in_order(self):
        lengths = [300, 800, 200, 900, 100]
        batches = pack_batches(lengths, token_budget=1000)
        flat = [n for batch in batches for n in batch]
        assert flat == lengths

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            pack_batches([10], token_budget=0)


class TestBatchesToSpecs:
    def test_shared_mask(self):
        specs = batches_to_specs([[10, 20], [30]], CausalMask())
        assert len(specs) == 2
        assert specs[0].total_tokens == 30

    def test_mask_callable(self):
        def mask_fn(seqlen):
            return SharedQuestionMask(num_answers=2, answer_fraction=0.25)

        specs = batches_to_specs([[40]], mask_fn)
        assert isinstance(specs[0].sequences[0].mask, SharedQuestionMask)
