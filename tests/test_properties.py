"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.data import pack_batches
from repro.hypergraph import BalanceConstraint, Hypergraph, partition_hypergraph
from repro.masks import (
    CausalBlockwiseMask,
    CausalMask,
    LambdaMask,
    SharedQuestionMask,
    block_bounds,
    mask_workload_matrix,
)
from repro.runtime import empty_partial, finalize, merge_partials, tile_attention
from repro.scheduling import BufferManager

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


# -- mask strategies ---------------------------------------------------------

def mask_strategy():
    return st.one_of(
        st.just(CausalMask()),
        st.builds(
            LambdaMask,
            sink=st.integers(0, 20),
            window=st.integers(1, 40),
        ),
        st.builds(
            CausalBlockwiseMask,
            block=st.integers(1, 16),
            window_blocks=st.integers(1, 4),
            sink_blocks=st.integers(0, 3),
        ),
        st.builds(
            SharedQuestionMask,
            num_answers=st.integers(1, 4),
            answer_fraction=st.floats(0.05, 0.2),
        ),
    )


@given(mask=mask_strategy(), seqlen=st.integers(1, 120))
def test_mask_ranges_always_valid(mask, seqlen):
    ranges = mask.ranges(seqlen)
    ranges.validate()


@given(mask=mask_strategy(), seqlen=st.integers(1, 120))
def test_mask_self_attention_and_causality(mask, seqlen):
    dense = mask.dense(seqlen)
    assert np.all(np.diag(dense))
    assert not np.any(np.triu(dense, k=1))


@given(
    mask=mask_strategy(),
    seqlen=st.integers(1, 100),
    block=st.integers(1, 32),
)
def test_workload_matrix_equals_dense_counts(mask, seqlen, block):
    workload = mask_workload_matrix(mask, seqlen, block)
    dense = mask.dense(seqlen)
    bounds = block_bounds(seqlen, block)
    assert workload.sum() == dense.sum()
    qi = len(bounds) - 2
    expected = dense[bounds[qi]:bounds[qi + 1], :block].sum()
    assert workload[qi, 0] == expected


# -- online-softmax merge ------------------------------------------------------

@given(
    seed=st.integers(0, 10_000),
    splits=st.lists(st.integers(1, 12), min_size=1, max_size=5),
)
def test_merge_partials_split_invariance(seed, splits):
    """Splitting KV arbitrarily and merging must equal one-shot attention."""
    rng = np.random.default_rng(seed)
    total = sum(splits)
    heads, rows, dim = 2, 5, 4
    q = rng.standard_normal((heads, rows, dim)).astype(np.float32)
    k = rng.standard_normal((total, dim)).astype(np.float32)
    v = rng.standard_normal((total, dim)).astype(np.float32)
    mask = rng.random((rows, total)) < 0.7
    mask[:, 0] = True  # keep at least one key per row

    whole = finalize(tile_attention(q, k, v, mask, 0.5))
    state = empty_partial(heads, rows, dim)
    offset = 0
    order = list(range(len(splits)))
    rng.shuffle(order)
    chunks = []
    for size in splits:
        chunks.append((offset, offset + size))
        offset += size
    for index in order:
        lo, hi = chunks[index]
        merge_partials(
            state, tile_attention(q, k[lo:hi], v[lo:hi], mask[:, lo:hi], 0.5)
        )
    np.testing.assert_allclose(finalize(state), whole, rtol=2e-4, atol=2e-5)


# -- hypergraph partitioning ---------------------------------------------------

@given(
    seed=st.integers(0, 1000),
    n=st.integers(6, 40),
    k=st.integers(2, 4),
)
@settings(max_examples=25)
def test_partition_labels_complete_and_in_range(seed, n, k):
    rng = np.random.default_rng(seed)
    weights = np.stack(
        [rng.integers(1, 5, n), rng.integers(1, 5, n)], axis=1
    )
    num_edges = max(n // 2, 1)
    pins = [
        rng.choice(n, size=min(int(rng.integers(2, 5)), n), replace=False)
        for _ in range(num_edges)
    ]
    graph = Hypergraph(weights, pins, rng.integers(1, 10, num_edges))
    result = partition_hypergraph(
        graph, k, BalanceConstraint((0.3, 0.3)), seed=seed, restarts=1
    )
    assert len(result.labels) == n
    assert result.labels.min() >= 0 and result.labels.max() < k
    assert result.part_weights.sum() == weights.sum()
    recomputed = graph.connectivity_cost(result.labels, k)
    assert recomputed == result.cost


# -- batching -------------------------------------------------------------------

@given(
    lengths=st.lists(st.integers(1, 4000), min_size=1, max_size=60),
    budget=st.integers(100, 8000),
)
def test_pack_batches_invariants(lengths, budget):
    batches = pack_batches(lengths, token_budget=budget)
    flat = [n for batch in batches for n in batch]
    assert len(flat) == len(lengths)
    for original, packed in zip(lengths, flat):
        assert packed == min(original, budget)
    for batch in batches:
        assert sum(batch) <= budget


# -- buffer manager (model-based) ------------------------------------------------

@given(
    ops=st.lists(st.integers(0, 2), min_size=1, max_size=200),
)
def test_buffer_manager_slots_unique_while_live(ops):
    manager = BufferManager()
    live = set()
    for op in ops:
        if op < 2 or not live:  # alloc twice as often as free
            slot = manager.alloc("q")
            assert slot not in live
            live.add(slot)
        else:
            slot = live.pop()
            manager.free("q", slot)
    assert manager.live_count("q") == len(live)
    assert manager.high_water("q") >= len(live)


# -- block generation -------------------------------------------------------------

@given(
    seqlens=st.lists(st.integers(1, 80), min_size=1, max_size=5),
    block=st.integers(1, 32),
)
@settings(max_examples=30)
def test_generate_blocks_conserves_tokens_and_pairs(seqlens, block):
    batch = BatchSpec.build(seqlens, CausalMask())
    spec = AttentionSpec(num_q_heads=2, num_kv_groups=1, head_dim=8)
    blocks = generate_blocks(batch, spec, block_size=block)
    assert sum(ts.tokens for ts in blocks.token_slices) == sum(seqlens)
    expected_pairs = sum(n * (n + 1) // 2 for n in seqlens)
    assert blocks.total_pairs == expected_pairs * spec.head_groups
