"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.data import pack_batches
from repro.hypergraph import BalanceConstraint, Hypergraph, partition_hypergraph
from repro.masks import (
    CausalBlockwiseMask,
    CausalMask,
    LambdaMask,
    SharedQuestionMask,
    block_bounds,
    mask_workload_matrix,
)
from repro.runtime import empty_partial, finalize, merge_partials, tile_attention
from repro.scheduling import BufferManager

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


# -- mask strategies ---------------------------------------------------------

def mask_strategy():
    return st.one_of(
        st.just(CausalMask()),
        st.builds(
            LambdaMask,
            sink=st.integers(0, 20),
            window=st.integers(1, 40),
        ),
        st.builds(
            CausalBlockwiseMask,
            block=st.integers(1, 16),
            window_blocks=st.integers(1, 4),
            sink_blocks=st.integers(0, 3),
        ),
        st.builds(
            SharedQuestionMask,
            num_answers=st.integers(1, 4),
            answer_fraction=st.floats(0.05, 0.2),
        ),
    )


@given(mask=mask_strategy(), seqlen=st.integers(1, 120))
def test_mask_ranges_always_valid(mask, seqlen):
    ranges = mask.ranges(seqlen)
    ranges.validate()


@given(mask=mask_strategy(), seqlen=st.integers(1, 120))
def test_mask_self_attention_and_causality(mask, seqlen):
    dense = mask.dense(seqlen)
    assert np.all(np.diag(dense))
    assert not np.any(np.triu(dense, k=1))


@given(
    mask=mask_strategy(),
    seqlen=st.integers(1, 100),
    block=st.integers(1, 32),
)
def test_workload_matrix_equals_dense_counts(mask, seqlen, block):
    workload = mask_workload_matrix(mask, seqlen, block)
    dense = mask.dense(seqlen)
    bounds = block_bounds(seqlen, block)
    assert workload.sum() == dense.sum()
    qi = len(bounds) - 2
    expected = dense[bounds[qi]:bounds[qi + 1], :block].sum()
    assert workload[qi, 0] == expected


# -- online-softmax merge ------------------------------------------------------

@given(
    seed=st.integers(0, 10_000),
    splits=st.lists(st.integers(1, 12), min_size=1, max_size=5),
)
def test_merge_partials_split_invariance(seed, splits):
    """Splitting KV arbitrarily and merging must equal one-shot attention."""
    rng = np.random.default_rng(seed)
    total = sum(splits)
    heads, rows, dim = 2, 5, 4
    q = rng.standard_normal((heads, rows, dim)).astype(np.float32)
    k = rng.standard_normal((total, dim)).astype(np.float32)
    v = rng.standard_normal((total, dim)).astype(np.float32)
    mask = rng.random((rows, total)) < 0.7
    mask[:, 0] = True  # keep at least one key per row

    whole = finalize(tile_attention(q, k, v, mask, 0.5))
    state = empty_partial(heads, rows, dim)
    offset = 0
    order = list(range(len(splits)))
    rng.shuffle(order)
    chunks = []
    for size in splits:
        chunks.append((offset, offset + size))
        offset += size
    for index in order:
        lo, hi = chunks[index]
        merge_partials(
            state, tile_attention(q, k[lo:hi], v[lo:hi], mask[:, lo:hi], 0.5)
        )
    np.testing.assert_allclose(finalize(state), whole, rtol=2e-4, atol=2e-5)


# -- hypergraph partitioning ---------------------------------------------------

@given(
    seed=st.integers(0, 1000),
    n=st.integers(6, 40),
    k=st.integers(2, 4),
)
@settings(max_examples=25)
def test_partition_labels_complete_and_in_range(seed, n, k):
    rng = np.random.default_rng(seed)
    weights = np.stack(
        [rng.integers(1, 5, n), rng.integers(1, 5, n)], axis=1
    )
    num_edges = max(n // 2, 1)
    pins = [
        rng.choice(n, size=min(int(rng.integers(2, 5)), n), replace=False)
        for _ in range(num_edges)
    ]
    graph = Hypergraph(weights, pins, rng.integers(1, 10, num_edges))
    result = partition_hypergraph(
        graph, k, BalanceConstraint((0.3, 0.3)), seed=seed, restarts=1
    )
    assert len(result.labels) == n
    assert result.labels.min() >= 0 and result.labels.max() < k
    assert result.part_weights.sum() == weights.sum()
    recomputed = graph.connectivity_cost(result.labels, k)
    assert recomputed == result.cost


# -- batching -------------------------------------------------------------------

@given(
    lengths=st.lists(st.integers(1, 4000), min_size=1, max_size=60),
    budget=st.integers(100, 8000),
)
def test_pack_batches_invariants(lengths, budget):
    batches = pack_batches(lengths, token_budget=budget)
    flat = [n for batch in batches for n in batch]
    assert len(flat) == len(lengths)
    for original, packed in zip(lengths, flat):
        assert packed == min(original, budget)
    for batch in batches:
        assert sum(batch) <= budget


# -- buffer manager (model-based) ------------------------------------------------

@given(
    ops=st.lists(st.integers(0, 2), min_size=1, max_size=200),
)
def test_buffer_manager_slots_unique_while_live(ops):
    manager = BufferManager()
    live = set()
    for op in ops:
        if op < 2 or not live:  # alloc twice as often as free
            slot = manager.alloc("q")
            assert slot not in live
            live.add(slot)
        else:
            slot = live.pop()
            manager.free("q", slot)
    assert manager.live_count("q") == len(live)
    assert manager.high_water("q") >= len(live)


# -- block generation -------------------------------------------------------------

@given(
    seqlens=st.lists(st.integers(1, 80), min_size=1, max_size=5),
    block=st.integers(1, 32),
)
@settings(max_examples=30)
def test_generate_blocks_conserves_tokens_and_pairs(seqlens, block):
    batch = BatchSpec.build(seqlens, CausalMask())
    spec = AttentionSpec(num_q_heads=2, num_kv_groups=1, head_dim=8)
    blocks = generate_blocks(batch, spec, block_size=block)
    assert sum(ts.tokens for ts in blocks.token_slices) == sum(seqlens)
    expected_pairs = sum(n * (n + 1) // 2 for n in seqlens)
    assert blocks.total_pairs == expected_pairs * spec.head_groups


# -- streaming overlap pipeline ---------------------------------------------------

def _pipeline_planner():
    from repro import ClusterSpec
    from repro.core import DCPConfig, DCPPlanner

    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=2, num_kv_groups=1, head_dim=8)
    return DCPPlanner(
        cluster, attention, DCPConfig(block_size=16, restarts=1)
    )


class _DelayedPlanner:
    """Injects a fixed delay per plan (threads share the wrapper)."""

    def __init__(self, planner, delay):
        self.planner = planner
        self.delay = delay

    def plan_batch(self, batch):
        if self.delay:
            import time

            time.sleep(self.delay)
        return self.planner.plan_batch(batch)


@given(
    seed=st.integers(0, 10_000),
    num_batches=st.integers(1, 5),
    kappa=st.integers(0, 3),
    workers=st.integers(1, 3),
    delay=st.sampled_from([0.0, 0.005, 0.02]),
)
@settings(max_examples=10, deadline=None)
def test_streaming_plans_byte_identical_to_synchronous(
    seed, num_batches, kappa, workers, delay
):
    """For random stream lengths, kappa, worker counts and injected
    planner delays, the streaming pipeline's plans are byte-identical
    (plan_fingerprint) to the synchronous path."""
    from repro.pipeline import StreamingOverlapPipeline, plan_fingerprint

    rng = np.random.default_rng(seed)
    planner = _pipeline_planner()
    batches = [
        BatchSpec.build(
            [int(n) for n in rng.integers(16, 64, rng.integers(1, 3))],
            CausalMask(),
        )
        for _ in range(num_batches)
    ]
    synchronous = [plan_fingerprint(planner.plan_batch(b)) for b in batches]
    delayed = _DelayedPlanner(planner, delay)
    pipeline = StreamingOverlapPipeline(
        (b for b in batches),  # generator: no upfront length
        delayed,
        lookahead=kappa,
        max_workers=workers,
    )
    streamed = [plan for _, plan in pipeline]
    assert len(streamed) == num_batches
    for fast, reference in zip(streamed, synchronous):
        assert plan_fingerprint(fast) == reference


@given(
    seed=st.integers(0, 10_000),
    num_batches=st.integers(1, 6),
    kappa=st.integers(0, 3),
    workers=st.integers(1, 3),
    delay=st.sampled_from([0.0, 0.01]),
    exec_s=st.sampled_from([0.0, 0.01]),
)
@settings(max_examples=10, deadline=None)
def test_overlap_stats_invariants(
    seed, num_batches, kappa, workers, delay, exec_s
):
    """OverlapStats invariants: hidden fractions live in [0, 1], the
    totals are consistent sums of the records, and stalls + execution
    intervals tile the measured wall clock."""
    import time

    from repro.pipeline import StreamingOverlapPipeline

    rng = np.random.default_rng(seed)
    planner = _pipeline_planner()
    batches = [
        BatchSpec.build([int(rng.integers(16, 64)), 16], CausalMask())
        for _ in range(num_batches)
    ]
    pipeline = StreamingOverlapPipeline(
        iter(batches),
        _DelayedPlanner(planner, delay),
        lookahead=kappa,
        max_workers=workers,
    )
    for _, _plan in pipeline:
        if exec_s:
            time.sleep(exec_s)
    stats = pipeline.stats()
    assert stats.iterations == num_batches
    assert 0.0 <= stats.hidden_fraction <= 1.0
    assert 0.0 <= stats.steady_hidden_fraction <= 1.0
    assert stats.total_plan_s >= 0.0
    assert stats.total_stall_s >= 0.0
    assert stats.stall_count <= stats.iterations
    assert stats.steady_stall_count <= max(stats.iterations - 1, 0)
    assert stats.replans == 0 and stats.cluster_events == 0
    # Records tile: each iteration contributes [requested, ready] stall
    # then [ready, next request] execution, so stalls + exec intervals
    # cover the wall clock up to the pre-first-request dispatch sliver.
    covered = stats.total_stall_s + stats.total_exec_s
    assert covered <= stats.wall_s + 1e-6
    assert stats.wall_s - covered <= 0.05
    # Per-record sanity: non-negative intervals, orderly timeline.
    for record in stats.records:
        assert record.plan_s >= 0.0
        assert record.exec_s >= -1e-9
        assert record.stall >= 0.0
        assert record.exec_start <= record.exec_end + 1e-9


@given(
    lengths=st.lists(st.integers(0, 4000), min_size=0, max_size=60),
    budget=st.integers(100, 8000),
    cap=st.one_of(st.none(), st.integers(50, 4000)),
)
def test_stream_pack_matches_pack_batches(lengths, budget, cap):
    """The online packer is element-for-element the offline packer."""
    from repro.data import stream_pack

    streamed = list(stream_pack(iter(lengths), budget, cap))
    assert streamed == pack_batches(lengths, budget, cap)
