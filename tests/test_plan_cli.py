"""Tests for the ``python -m repro.plan`` CLI and distribution fitting."""

import json
import os

import numpy as np
import pytest

from repro.data import LengthDistribution, sample_lengths
from repro.plan_cli import main

BASE = [
    "--seqlens", "512", "256",
    "--machines", "1", "--devices", "2",
    "--block-size", "64",
    "--q-heads", "4", "--kv-groups", "2", "--head-dim", "16",
]


class TestPlanCli:
    def test_basic_run(self, capsys):
        assert main(BASE) == 0
        out = capsys.readouterr().out
        assert "== dcp ==" in out
        assert "tokens/device" in out
        assert "planning:" in out
        assert "busy" in out

    def test_mask_selection(self, capsys):
        assert main(BASE + ["--mask", "lambda"]) == 0
        assert "mask lambda" in capsys.readouterr().out

    def test_unknown_mask_fails_cleanly(self, capsys):
        assert main(BASE + ["--mask", "not-a-mask"]) == 2
        assert "error" in capsys.readouterr().err

    def test_baseline_comparison(self, capsys):
        assert main(BASE + ["--baseline", "rfa_zigzag"]) == 0
        out = capsys.readouterr().out
        assert "== rfa_zigzag ==" in out
        assert "speed-up" in out

    def test_flexsp_baseline(self, capsys):
        assert main(BASE + ["--baseline", "flexsp"]) == 0
        assert "== flexsp ==" in capsys.readouterr().out

    def test_trace_output(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "t.json")
        assert main(BASE + ["--trace", path]) == 0
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_divisions_flag(self, capsys):
        assert main(BASE + ["--divisions", "2"]) == 0


class TestLengthDistributionFit:
    def test_fit_recovers_parameters(self):
        source = LengthDistribution(
            name="src", log_mean=np.log(4000.0), log_sigma=0.8,
            min_len=1, cap=10**9,
        )
        sample = source.sample(20000, seed=0)
        fitted = LengthDistribution.fit(sample, cap=10**9)
        assert fitted.log_mean == pytest.approx(source.log_mean, abs=0.05)
        assert fitted.log_sigma == pytest.approx(source.log_sigma, abs=0.05)

    def test_fitted_distribution_samples(self):
        lengths = sample_lengths("longdatacollections", 500, seed=1)
        fitted = LengthDistribution.fit(lengths, name="mine")
        out = fitted.sample(100, seed=2)
        assert out.min() >= fitted.min_len
        assert out.max() <= fitted.cap
        assert fitted.name == "mine"

    def test_constant_lengths(self):
        fitted = LengthDistribution.fit([1000] * 50)
        assert fitted.log_sigma > 0  # floored, not zero
        sample = fitted.sample(10, seed=0)
        assert np.allclose(sample, 1000, rtol=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LengthDistribution.fit([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LengthDistribution.fit([100, 0])
