"""Tests for the Ulysses and FlexSP-style baseline planners."""

import numpy as np
import pytest

from repro.baselines import (
    FlexSPPlanner,
    RingAttentionPlanner,
    UlyssesPlanner,
    run_ulysses_forward_backward,
)
from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask, LambdaMask, SharedQuestionMask
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import ClusterSpec, simulate_plan


def build(seqlens=(96, 48, 32), mask=None, block_size=16, kv_groups=2):
    batch = BatchSpec.build(list(seqlens), mask or CausalMask())
    spec = AttentionSpec(
        num_q_heads=2 * kv_groups, num_kv_groups=kv_groups, head_dim=16
    )
    return generate_blocks(batch, spec, block_size=block_size)


CLUSTER_2 = ClusterSpec(num_machines=1, devices_per_machine=2)
CLUSTER_4 = ClusterSpec(num_machines=2, devices_per_machine=2)


def run_and_check(planner, block_set, cluster, seed=11):
    plan = planner.plan(block_set, cluster)
    executor = SimExecutor(plan)
    inputs = BatchInputs.random(block_set, seed=seed)
    executor.load_inputs(inputs)
    executor.run()
    outputs = executor.gather_outputs()
    references = reference_batch_outputs(block_set, inputs)
    for out, ref in zip(outputs, references):
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
    return plan


# -- Ulysses -----------------------------------------------------------------


@pytest.mark.parametrize(
    "mask",
    [CausalMask(), LambdaMask(sink=4, window=12),
     SharedQuestionMask(num_answers=2, answer_fraction=0.3)],
    ids=lambda m: m.name,
)
def test_ulysses_numerics(mask):
    block_set = build(mask=mask)
    run_and_check(UlyssesPlanner(), block_set, CLUSTER_2)


def test_ulysses_numerics_four_devices():
    block_set = build(kv_groups=4)
    run_and_check(UlyssesPlanner(), block_set, CLUSTER_4)


def test_ulysses_rejects_too_many_devices():
    block_set = build(kv_groups=2)
    with pytest.raises(ValueError, match="divisible"):
        UlyssesPlanner().plan(block_set, CLUSTER_4)


def test_ulysses_single_device_no_comm():
    block_set = build()
    plan = UlyssesPlanner().plan(
        block_set, ClusterSpec(num_machines=1, devices_per_machine=1)
    )
    assert plan.total_comm_bytes() == 0


def test_ulysses_moves_each_element_once():
    """All-to-all volume: each non-local Q/KV/O block crosses once."""
    block_set = build()
    plan = UlyssesPlanner().plan(block_set, CLUSTER_2)
    # Every send tag is unique: no block is ever re-sent.
    tags = []
    for device_plan in plan.device_plans.values():
        for ins in device_plan.instructions:
            if ins.kind == "comm_launch":
                tags.extend(send.tag for send in ins.sends)
    assert len(tags) == len(set(tags))


def test_ulysses_beats_ring_on_comm():
    """Ulysses moves O(L) bytes; the ring moves O(L * R) bytes.

    At R = 2 the ring's single KV hop is cheaper than moving Q + KV + O
    once, so the crossover needs R >= 4.
    """
    block_set = build(seqlens=(256, 256), block_size=32, kv_groups=4)
    ring = RingAttentionPlanner().plan(block_set, CLUSTER_4)
    ulysses = UlyssesPlanner().plan(block_set, CLUSTER_4)
    assert ulysses.total_comm_bytes() < ring.total_comm_bytes()


def test_ulysses_compute_balanced_by_head_groups():
    block_set = build()
    plan = UlyssesPlanner().plan(block_set, CLUSTER_2)
    tiles_per_device = {
        device: sum(
            len(ins.tiles)
            for ins in device_plan.instructions
            if ins.kind == "attention"
        )
        for device, device_plan in plan.device_plans.items()
    }
    counts = list(tiles_per_device.values())
    assert counts[0] == counts[1]  # symmetric head groups


def test_ulysses_timing_simulates():
    block_set = build()
    plan = UlyssesPlanner().plan(block_set, CLUSTER_2)
    result = simulate_plan(plan)
    assert result.iteration_time > 0


@pytest.mark.parametrize(
    "mask",
    [CausalMask(), LambdaMask(sink=4, window=12),
     SharedQuestionMask(num_answers=2, answer_fraction=0.3)],
    ids=lambda m: m.name,
)
def test_ulysses_executed_backward(mask):
    """Ulysses backward: outputs exact, dQ matches central differences."""
    from repro.runtime.reference import reference_attention

    block_set = build(seqlens=(96, 48), mask=mask)
    attention = block_set.attention
    inputs = BatchInputs.random(block_set, seed=3)
    rng = np.random.default_rng(4)
    grad_outputs = [
        rng.standard_normal(
            (attention.num_q_heads, seq.seqlen, attention.head_dim)
        ).astype(np.float32)
        for seq in block_set.batch.sequences
    ]
    outputs, grads, _, _ = run_ulysses_forward_backward(
        block_set, CLUSTER_2, inputs, grad_outputs
    )
    for i, seq in enumerate(block_set.batch.sequences):
        ref = reference_attention(
            inputs.q[i], inputs.k[i], inputs.v[i],
            seq.mask.dense(seq.seqlen), attention.q_heads_per_group,
        )
        np.testing.assert_allclose(outputs[i], ref, rtol=2e-4, atol=2e-5)

    # Spot-check dQ numerically on the first sequence.
    seq = block_set.batch.sequences[0]
    dense = seq.mask.dense(seq.seqlen)
    eps = 1e-3

    def loss(q):
        out = reference_attention(
            q, inputs.k[0], inputs.v[0], dense, attention.q_heads_per_group
        )
        return float((out * grad_outputs[0]).sum())

    for coord in [(0, 5, 3), (2, 40, 7), (3, 90, 1)]:
        q_plus = inputs.q[0].copy()
        q_plus[coord] += eps
        q_minus = inputs.q[0].copy()
        q_minus[coord] -= eps
        numeric = (loss(q_plus) - loss(q_minus)) / (2 * eps)
        actual = float(grads.dq[0][coord])
        assert actual == pytest.approx(numeric, rel=3e-2, abs=3e-3)


@pytest.mark.parametrize(
    "mask",
    [CausalMask(), LambdaMask(sink=4, window=12)],
    ids=lambda m: m.name,
)
def test_new_baseline_plans_validate(mask):
    """Ulysses and FlexSP plans pass the structural validator."""
    from repro.scheduling import validate_plan

    block_set = build(mask=mask)
    validate_plan(UlyssesPlanner().plan(block_set, CLUSTER_2))
    validate_plan(UlyssesPlanner().plan_backward(block_set, CLUSTER_2))
    validate_plan(FlexSPPlanner().plan(build(mask=mask), CLUSTER_4))


def test_ulysses_backward_volume_mirrors_forward():
    """The reverse all-to-all moves ~the forward's Q/KV plus dO/dKV."""
    block_set = build(seqlens=(256, 128), block_size=32)
    planner = UlyssesPlanner()
    forward = planner.plan(block_set, CLUSTER_2)
    backward = planner.plan_backward(block_set, CLUSTER_2)
    # Backward moves Q + KV + dO out and dQ + dKV back: strictly more
    # than the forward's Q + KV out and O back, bounded by ~2x.
    assert backward.total_comm_bytes() > forward.total_comm_bytes()
    assert backward.total_comm_bytes() < 2.5 * forward.total_comm_bytes()


# -- FlexSP ------------------------------------------------------------------


@pytest.mark.parametrize(
    "mask",
    [CausalMask(), LambdaMask(sink=4, window=12),
     SharedQuestionMask(num_answers=2, answer_fraction=0.3)],
    ids=lambda m: m.name,
)
def test_flexsp_numerics(mask):
    block_set = build(mask=mask)
    run_and_check(FlexSPPlanner(), block_set, CLUSTER_4)


def test_flexsp_short_sequences_stay_dp():
    """A batch of short equal sequences needs no communication."""
    block_set = build(seqlens=(32, 32, 32, 32), block_size=16)
    plan = FlexSPPlanner().plan(block_set, CLUSTER_4)
    assert plan.total_comm_bytes() == 0


def test_flexsp_long_sequence_gets_cp():
    """One dominant sequence must be split to respect budgets."""
    block_set = build(seqlens=(512, 32, 32, 32), block_size=16)
    placement = FlexSPPlanner().place(block_set, CLUSTER_4)
    long_devices = {
        int(device)
        for ts, device in zip(block_set.token_slices, placement.slice_device)
        if ts.seq_index == 0
    }
    assert len(long_devices) > 1


def test_flexsp_degree_is_power_of_two():
    planner = FlexSPPlanner()
    for seqlen in (1, 100, 1000, 10000):
        degree = planner._degree_for(seqlen, 500.0, 1e6, 16)
        assert degree & (degree - 1) == 0


def test_flexsp_tokens_balanced():
    block_set = build(seqlens=(128, 128, 128, 128), block_size=16)
    placement = FlexSPPlanner().place(block_set, CLUSTER_4)
    tokens = placement.tokens_per_device()
    assert tokens.max() <= 1.5 * max(tokens.min(), 1)


def test_flexsp_mask_agnostic_placement():
    """Identical lengths => identical placement, causal or sparse."""
    causal = FlexSPPlanner().place(build(mask=CausalMask()), CLUSTER_4)
    sparse = FlexSPPlanner().place(
        build(mask=LambdaMask(sink=4, window=12)), CLUSTER_4
    )
    np.testing.assert_array_equal(causal.slice_device, sparse.slice_device)


def test_dcp_no_worse_than_flexsp_on_sparse_mask():
    """Mask-aware placement should not lose to mask-agnostic placement."""
    mask = LambdaMask(sink=4, window=12)
    block_set = build(seqlens=(512, 64, 64), mask=mask, block_size=16)
    flexsp_plan = FlexSPPlanner().plan(block_set, CLUSTER_4)
    dcp = DCPPlanner(
        CLUSTER_4,
        attention=block_set.attention,
        config=DCPConfig(block_size=16, restarts=2),
    )
    dcp_plan = dcp.plan(block_set, CLUSTER_4)
    assert dcp_plan.total_comm_bytes() <= flexsp_plan.total_comm_bytes() * 1.05


def test_flexsp_timing_simulates():
    block_set = build(seqlens=(256, 64, 32), block_size=16)
    plan = FlexSPPlanner().plan(block_set, CLUSTER_4)
    result = simulate_plan(plan)
    assert result.iteration_time > 0


def test_flexsp_executed_backward_matches_reference():
    """FlexSP reuses DCP scheduling, so the real backward runs on it too."""
    from repro.runtime import run_forward_backward
    from repro.runtime.reference import reference_attention
    from repro.scheduling import build_schedule

    mask = LambdaMask(sink=4, window=12)
    block_set = build(seqlens=(128, 64), mask=mask, block_size=16)
    placement = FlexSPPlanner().place(block_set, CLUSTER_4)
    schedule = build_schedule(block_set, placement, num_divisions=2)

    inputs = BatchInputs.random(block_set, seed=13)
    rng = np.random.default_rng(14)
    attention = block_set.attention
    grad_outputs = [
        rng.standard_normal(
            (attention.num_q_heads, seq.seqlen, attention.head_dim)
        ).astype(np.float32)
        for seq in block_set.batch.sequences
    ]
    outputs, grads, _, _ = run_forward_backward(
        schedule, inputs, grad_outputs
    )
    for seq_index, seq in enumerate(block_set.batch.sequences):
        ref = reference_attention(
            inputs.q[seq_index],
            inputs.k[seq_index],
            inputs.v[seq_index],
            seq.mask.dense(seq.seqlen),
            attention.q_heads_per_group,
        )
        np.testing.assert_allclose(
            outputs[seq_index], ref, rtol=2e-4, atol=2e-5
        )
    # Gradients exist for every sequence and are finite.
    for dq in grads.dq:
        assert np.isfinite(dq).all()
        assert float(np.abs(dq).sum()) > 0
