"""Tests for repro.masks.spec: AttendRanges invariants and queries."""

import numpy as np
import pytest

from repro.masks import AttendRanges, CausalMask


def make_ranges(a_start, a_end, b_start, b_end):
    return AttendRanges(
        a_start=np.asarray(a_start, dtype=np.int64),
        a_end=np.asarray(a_end, dtype=np.int64),
        b_start=np.asarray(b_start, dtype=np.int64),
        b_end=np.asarray(b_end, dtype=np.int64),
    )


class TestAttendRanges:
    def test_row_count_single_range(self):
        r = make_ranges([0, 0, 0], [1, 2, 3], [0, 0, 0], [0, 0, 0])
        assert r.row_count().tolist() == [1, 2, 3]

    def test_row_count_two_ranges(self):
        r = make_ranges([0, 0], [2, 1], [3, 4], [5, 6])
        assert r.row_count().tolist() == [4, 3]

    def test_total_pairs(self):
        r = make_ranges([0, 0], [2, 3], [0, 0], [0, 0])
        assert r.total_pairs() == 5

    def test_overlap_with_clips_to_window(self):
        r = make_ranges([0], [10], [0], [0])
        assert r.overlap_with(3, 7).tolist() == [4]
        assert r.overlap_with(0, 100).tolist() == [10]
        assert r.overlap_with(10, 20).tolist() == [0]

    def test_overlap_with_second_range(self):
        r = make_ranges([0], [2], [5], [8])
        assert r.overlap_with(0, 10).tolist() == [5]
        assert r.overlap_with(4, 6).tolist() == [1]

    def test_dense_matches_ranges(self):
        r = make_ranges([0, 0], [2, 1], [3, 2], [4, 4])
        dense = r.dense()
        assert dense.shape == (2, 2)  # L x L with L = 2 rows? no: cols = L
        # dense is [L, L]; L == 2 here so columns 0..1 only
        assert dense[0].tolist() == [True, True]

    def test_validate_rejects_reversed_range(self):
        r = make_ranges([2], [1], [0], [0])
        with pytest.raises(ValueError):
            r.validate()

    def test_validate_rejects_overlapping_ranges(self):
        r = make_ranges([0], [3], [2], [5])
        with pytest.raises(ValueError):
            r.validate()

    def test_validate_rejects_out_of_bounds(self):
        r = make_ranges([0], [2], [0], [0])
        with pytest.raises(ValueError):
            r.validate()  # a_end=2 > L=1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            make_ranges([0, 0], [1], [0], [0])

    def test_seqlen(self):
        r = make_ranges([0] * 5, [1] * 5, [0] * 5, [0] * 5)
        assert r.seqlen == 5


class TestMaskSpecBase:
    def test_sparsity_of_causal_is_one(self):
        assert CausalMask().sparsity_vs_causal(17) == pytest.approx(1.0)

    def test_total_pairs_triangular(self):
        assert CausalMask().total_pairs(10) == 55

    def test_describe(self):
        assert CausalMask().describe() == "causal"
