"""Smoke tests for the figure drivers (tiny problem sizes)."""

import pytest

from repro.bench import (
    BenchScale,
    PAPER_MASKS,
    Table,
    attention_times,
    fig02_distribution,
    fig13_micro_causal,
    fig14_micro_masks,
    fig17_comm_vs_blocksize,
    fig18_planning_time,
    fig20_comm_vs_imbalance,
    make_batches,
)


class TestHarness:
    def test_table_roundtrip(self, tmp_path):
        table = Table("t", ["a", "b"])
        table.add(1, 2.5)
        table.add("x", 0.125)
        markdown = table.to_markdown()
        assert "| a | b |" in markdown and "| 1 | 2.500 |" in markdown
        path = tmp_path / "out" / "t.md"
        table.save(str(path))
        assert path.read_text() == markdown
        assert table.column("a") == [1, "x"]

    def test_table_row_width_checked(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_make_batches_budget(self):
        scale = BenchScale.smoke()
        batches = make_batches("longalign", scale, PAPER_MASKS["causal"]())
        assert 1 <= len(batches) <= scale.num_batches
        for batch in batches:
            assert batch.total_tokens <= scale.token_budget

    def test_attention_times_keys(self):
        from repro.baselines import TransformerEnginePlanner

        scale = BenchScale.smoke()
        batches = make_batches("longalign", scale, PAPER_MASKS["causal"]())
        stats = attention_times(TransformerEnginePlanner(), batches, scale)
        assert set(stats) == {"fw_ms", "bw_ms", "comm_mb", "inter_mb"}
        assert stats["bw_ms"] > stats["fw_ms"] > 0

    def test_scales(self):
        assert BenchScale.micro().cluster.num_devices == 32
        assert BenchScale.e2e().cluster.num_devices == 16
        assert BenchScale.smoke(num_batches=3).num_batches == 3


class TestDrivers:
    def test_fig02(self):
        table = fig02_distribution(num_samples=2000)
        assert len(table.rows) == 2

    def test_fig13_smoke(self):
        table = fig13_micro_causal(BenchScale.smoke(), length_scales=(1.0,))
        systems = set(table.column("system"))
        assert systems == {"rfa_ring", "rfa_zigzag", "lt", "te", "dcp"}
        dcp_comm = [r for r in table.rows if r[1] == "dcp"][0][4]
        te_comm = [r for r in table.rows if r[1] == "te"][0][4]
        assert dcp_comm <= te_comm

    def test_fig14_smoke(self):
        table = fig14_micro_masks(
            BenchScale.smoke(), length_scales=(1.0,),
            mask_names=("causal", "lambda"),
        )
        assert len(table.rows) == 4

    def test_fig17_smoke(self):
        table = fig17_comm_vs_blocksize(
            "longdatacollections", BenchScale.smoke(),
            block_sizes=(128, 256), mask_names=("causal",),
        )
        for _, _, dcp_mb, mlm_mb in table.rows:
            assert dcp_mb <= mlm_mb

    def test_fig18_smoke(self):
        table = fig18_planning_time(
            "longalign", BenchScale.smoke(), block_sizes=(128, 256),
            mask_names=("causal",),
        )
        assert all(row[2] > 0 for row in table.rows)

    def test_fig20_smoke(self):
        table = fig20_comm_vs_imbalance(
            BenchScale.smoke(), eps_values=(0.2, 1.0),
            datasets=("longalign",),
        )
        assert len(table.rows) == 2
