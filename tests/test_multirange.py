"""Tests for multi-range masks (beyond the paper's 2-range limit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import (
    CausalMask,
    DenseMask,
    DilatedBlockMask,
    GlobalTokenMask,
    MultiRanges,
    block_bounds,
    tile_workload_matrix,
)
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import ClusterSpec, simulate_plan


def brute_dilated(seqlen, block, stride, window):
    mask = np.zeros((seqlen, seqlen), dtype=bool)
    period = block * stride
    for i in range(seqlen):
        for j in range(i + 1):
            if j > i - window:
                mask[i, j] = True
            elif (j // period) * period + block > j and j % period < block:
                mask[i, j] = True
    return mask


def brute_global(seqlen, every, window):
    mask = np.zeros((seqlen, seqlen), dtype=bool)
    for i in range(seqlen):
        for j in range(i + 1):
            if i % every == 0 or j > i - window or j % every == 0:
                mask[i, j] = True
    return mask


# -- MultiRanges core ---------------------------------------------------------


class TestMultiRanges:
    def test_from_rows_round_trip(self):
        ranges = MultiRanges.from_rows([[(0, 1)], [(0, 1), (3, 4)], []])
        assert ranges.seqlen == 3
        assert ranges.num_ranges == 3
        starts, ends = ranges.ranges_of_row(1)
        assert starts.tolist() == [0, 3]
        assert ends.tolist() == [1, 4]

    def test_row_count(self):
        ranges = MultiRanges.from_rows([[(0, 2)], [(0, 1), (2, 5)], []])
        assert ranges.row_count().tolist() == [2, 4, 0]

    def test_total_pairs(self):
        ranges = MultiRanges.from_rows([[(0, 2)], [(0, 1), (2, 5)], []])
        assert ranges.total_pairs() == 6

    def test_overlap_with(self):
        ranges = MultiRanges.from_rows([[(0, 4)], [(0, 2), (6, 8)]])
        assert ranges.overlap_with(1, 7).tolist() == [3, 2]

    def test_dense_matches_rows(self):
        ranges = MultiRanges.from_rows(
            [[(0, 1)], [(0, 1), (2, 3)], [(1, 3)]]
        )
        expected = np.array(
            [
                [True, False, False],
                [True, False, True],
                [False, True, True],
            ]
        )
        np.testing.assert_array_equal(ranges.dense(), expected)

    def test_tile_mask_is_dense_slice(self):
        mask = brute_global(32, every=8, window=4)
        ranges = MultiRanges.from_dense(mask)
        tile = ranges.tile_mask(8, 16, 4, 20)
        np.testing.assert_array_equal(tile, mask[8:16, 4:20])

    def test_from_dense_round_trip(self):
        mask = brute_dilated(48, block=4, stride=2, window=8)
        np.testing.assert_array_equal(
            MultiRanges.from_dense(mask).dense(), mask
        )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_from_dense_round_trip_random(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((17, 17)) < 0.35
        ranges = MultiRanges.from_dense(mask)
        ranges.validate()
        np.testing.assert_array_equal(ranges.dense(), mask)

    def test_validate_rejects_overlap(self):
        ranges = MultiRanges.from_rows([[(0, 3), (2, 5)], [], [], [], []])
        with pytest.raises(ValueError, match="overlap"):
            ranges.validate()

    def test_validate_rejects_out_of_bounds(self):
        ranges = MultiRanges.from_rows([[(0, 5)]])
        with pytest.raises(ValueError, match="outside"):
            ranges.validate()

    def test_validate_rejects_inverted(self):
        ranges = MultiRanges(
            indptr=np.array([0, 1]),
            starts=np.array([3]),
            ends=np.array([1]),
        )
        with pytest.raises(ValueError, match="start exceeds"):
            ranges.validate()

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            MultiRanges(
                indptr=np.array([0, 2]),
                starts=np.array([0]),
                ends=np.array([1]),
            )

    def test_max_ranges_per_row(self):
        ranges = MultiRanges.from_rows([[(0, 1)], [(0, 1), (2, 3), (4, 5)]])
        assert ranges.max_ranges_per_row() == 3


# -- mask families -------------------------------------------------------------


class TestDilatedBlockMask:
    def test_matches_brute_force(self):
        mask = DilatedBlockMask(block=4, stride=2, window=8)
        expected = brute_dilated(64, block=4, stride=2, window=8)
        np.testing.assert_array_equal(mask.dense(64), expected)

    def test_needs_more_than_two_ranges(self):
        mask = DilatedBlockMask(block=4, stride=2, window=8)
        assert mask.max_ranges_per_row(128) > 2

    def test_sparser_than_causal(self):
        mask = DilatedBlockMask(block=4, stride=4, window=16)
        assert mask.sparsity_vs_causal(256) < 0.5

    def test_ranges_validate(self):
        DilatedBlockMask(block=4, stride=2, window=8).ranges(100).validate()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DilatedBlockMask(block=0)


class TestGlobalTokenMask:
    def test_matches_brute_force(self):
        mask = GlobalTokenMask(every=8, window=4)
        expected = brute_global(48, every=8, window=4)
        np.testing.assert_array_equal(mask.dense(48), expected)

    def test_global_rows_attend_everything(self):
        dense = GlobalTokenMask(every=8, window=4).dense(32)
        assert dense[16, :17].all()

    def test_needs_more_than_two_ranges(self):
        assert GlobalTokenMask(every=8, window=4).max_ranges_per_row(128) > 2

    def test_ranges_validate(self):
        GlobalTokenMask(every=8, window=4).ranges(100).validate()


class TestDenseMask:
    def test_round_trip(self):
        matrix = np.tril(np.ones((16, 16), dtype=bool))
        mask = DenseMask(matrix)
        np.testing.assert_array_equal(mask.dense(16), matrix)

    def test_rejects_other_lengths(self):
        mask = DenseMask(np.tril(np.ones((16, 16), dtype=bool)))
        with pytest.raises(ValueError, match="tokens"):
            mask.ranges(8)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            DenseMask(np.ones((4, 5), dtype=bool))

    def test_equivalent_to_causal(self):
        matrix = np.tril(np.ones((24, 24), dtype=bool))
        assert DenseMask(matrix).total_pairs(24) == CausalMask().total_pairs(24)


# -- planner / executor integration -------------------------------------------


CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def _block_set(mask, seqlens=(96, 48), block_size=16):
    batch = BatchSpec.build(list(seqlens), mask)
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return generate_blocks(batch, spec, block_size=block_size)


@pytest.mark.parametrize(
    "mask",
    [
        DilatedBlockMask(block=4, stride=2, window=12),
        GlobalTokenMask(every=16, window=12),
    ],
    ids=lambda m: m.name,
)
def test_dcp_numerics_multirange(mask):
    block_set = _block_set(mask)
    planner = DCPPlanner(
        CLUSTER,
        attention=block_set.attention,
        config=DCPConfig(block_size=16, restarts=1),
    )
    plan = planner.plan(block_set, CLUSTER)
    executor = SimExecutor(plan)
    inputs = BatchInputs.random(block_set, seed=3)
    executor.load_inputs(inputs)
    executor.run()
    outputs = executor.gather_outputs()
    references = reference_batch_outputs(block_set, inputs)
    for out, ref in zip(outputs, references):
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)


def test_workload_matrix_counts_pairs():
    mask = GlobalTokenMask(every=16, window=12)
    ranges = mask.ranges(96)
    workload = tile_workload_matrix(ranges, block_bounds(96, 16))
    assert workload.sum() == ranges.total_pairs()
    dense = mask.dense(96)
    assert workload[3, 0] == dense[48:64, 0:16].sum()


def test_multirange_timing_simulates():
    block_set = _block_set(DilatedBlockMask(block=4, stride=2, window=12))
    planner = DCPPlanner(
        CLUSTER,
        attention=block_set.attention,
        config=DCPConfig(block_size=16, restarts=1),
    )
    plan = planner.plan(block_set, CLUSTER)
    assert simulate_plan(plan).iteration_time > 0


@given(
    seed=st.integers(0, 500),
    q_lo=st.integers(0, 10),
    q_span=st.integers(1, 10),
    k_lo=st.integers(0, 10),
    k_span=st.integers(1, 10),
)
@settings(max_examples=40, deadline=None)
def test_tile_mask_consistent_with_overlap(seed, q_lo, q_span, k_lo, k_span):
    """Counting true cells in a tile equals the overlap arithmetic."""
    rng = np.random.default_rng(seed)
    mask = rng.random((20, 20)) < 0.4
    ranges = MultiRanges.from_dense(mask)
    q_hi = min(q_lo + q_span, 20)
    k_hi = min(k_lo + k_span, 20)
    tile = ranges.tile_mask(q_lo, q_hi, k_lo, k_hi)
    per_row = ranges.overlap_with(k_lo, k_hi)[q_lo:q_hi]
    np.testing.assert_array_equal(tile.sum(axis=1), per_row)


def test_sparse_multirange_plans_fewer_flops_than_causal():
    sparse = _block_set(DilatedBlockMask(block=4, stride=4, window=8))
    causal = _block_set(CausalMask())
    assert sparse.total_flops < causal.total_flops
