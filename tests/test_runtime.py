"""Tests for kernels, fabric and the simulated executor."""

import numpy as np
import pytest

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.masks import CausalMask, LambdaMask, SharedQuestionMask, make_mask
from repro.placement import PlacementConfig, place_blocks
from repro.runtime import (
    BatchInputs,
    Fabric,
    SimExecutor,
    empty_partial,
    finalize,
    merge_partials,
    reference_attention,
    reference_batch_outputs,
    tile_attention,
)
from repro.scheduling import build_schedule, serialize_schedule
from repro.sim import ClusterSpec


class TestKernels:
    def _random_tile(self, rng, heads=2, q_rows=8, k_rows=8, dim=4):
        q = rng.standard_normal((heads, q_rows, dim)).astype(np.float32)
        k = rng.standard_normal((k_rows, dim)).astype(np.float32)
        v = rng.standard_normal((k_rows, dim)).astype(np.float32)
        return q, k, v

    def test_single_tile_matches_dense_softmax(self):
        rng = np.random.default_rng(0)
        q, k, v = self._random_tile(rng)
        mask = np.tril(np.ones((8, 8), dtype=bool))
        state = tile_attention(q, k, v, mask, scale=0.5)
        out = finalize(state)
        for head in range(2):
            scores = (q[head] @ k.T) * 0.5
            scores = np.where(mask, scores, -np.inf)
            probs = np.exp(scores - scores.max(axis=1, keepdims=True))
            probs = np.where(mask, probs, 0)
            probs /= probs.sum(axis=1, keepdims=True)
            np.testing.assert_allclose(out[head], probs @ v, rtol=1e-5,
                                       atol=1e-6)

    def test_merge_is_order_invariant(self):
        rng = np.random.default_rng(1)
        q, _, _ = self._random_tile(rng, k_rows=24)
        k = rng.standard_normal((24, 4)).astype(np.float32)
        v = rng.standard_normal((24, 4)).astype(np.float32)
        full_mask = np.ones((8, 24), dtype=bool)
        whole = finalize(tile_attention(q, k, v, full_mask, 0.5))

        # Split KV into three chunks, merge in two different orders.
        parts = []
        for lo, hi in ((0, 8), (8, 16), (16, 24)):
            parts.append(
                tile_attention(q, k[lo:hi], v[lo:hi],
                               np.ones((8, hi - lo), dtype=bool), 0.5)
            )
        forward = empty_partial(2, 8, 4)
        for part in parts:
            merge_partials(forward, part.copy())
        backward = empty_partial(2, 8, 4)
        for part in reversed(parts):
            merge_partials(backward, part.copy())
        np.testing.assert_allclose(finalize(forward), whole, rtol=1e-5,
                                   atol=1e-6)
        np.testing.assert_allclose(finalize(backward), whole, rtol=1e-5,
                                   atol=1e-6)

    def test_fully_masked_rows_produce_zeros(self):
        rng = np.random.default_rng(2)
        q, k, v = self._random_tile(rng)
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :] = True
        out = finalize(tile_attention(q, k, v, mask, 0.5))
        assert np.all(out[:, 1:, :] == 0)
        assert np.any(out[:, 0, :] != 0)

    def test_empty_partial_finalizes_to_zeros(self):
        out = finalize(empty_partial(2, 4, 8))
        assert out.shape == (2, 4, 8)
        assert np.all(out == 0)


class TestFabric:
    def test_post_collect_roundtrip(self):
        fabric = Fabric(ClusterSpec(2, 2))
        fabric.post(0, 3, ("t",), "payload", 100)
        assert fabric.ready(0, 3, ("t",))
        message = fabric.collect(0, 3, ("t",))
        assert message.payload == "payload"
        assert not fabric.ready(0, 3, ("t",))

    def test_duplicate_post_rejected(self):
        fabric = Fabric(ClusterSpec(2, 2))
        fabric.post(0, 1, ("t",), None, 1)
        with pytest.raises(RuntimeError):
            fabric.post(0, 1, ("t",), None, 1)

    def test_traffic_accounting(self):
        fabric = Fabric(ClusterSpec(2, 2))
        fabric.post(0, 1, ("a",), None, 100)  # intra-machine
        fabric.post(0, 2, ("b",), None, 50)  # inter-machine
        assert fabric.total_bytes == 150
        assert fabric.inter_machine_bytes == 50
        assert fabric.message_count == 2
        assert fabric.link_bytes[(0, 2)] == 50


def run_dcp(seqlens, mask, block_size=16, machines=2, devices=2,
            num_divisions=4, seed=0):
    batch = BatchSpec.build(list(seqlens), mask)
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    block_set = generate_blocks(batch, spec, block_size=block_size)
    cluster = ClusterSpec(num_machines=machines, devices_per_machine=devices)
    placement = place_blocks(block_set, cluster,
                             PlacementConfig(seed=seed, restarts=1))
    plan = serialize_schedule(
        build_schedule(block_set, placement, num_divisions)
    )
    executor = SimExecutor(plan)
    inputs = BatchInputs.random(block_set, seed=seed + 100)
    executor.load_inputs(inputs)
    executor.run()
    return executor, block_set, inputs, placement


class TestExecutor:
    @pytest.mark.parametrize(
        "mask",
        [
            CausalMask(),
            LambdaMask(sink=4, window=12),
            SharedQuestionMask(num_answers=2, answer_fraction=0.3),
            make_mask("causal_blockwise", block=8, window_blocks=2,
                      sink_blocks=1),
        ],
        ids=lambda m: m.describe(),
    )
    def test_numerics_match_reference(self, mask):
        executor, block_set, inputs, _ = run_dcp((80, 48, 20), mask)
        outputs = executor.gather_outputs()
        references = reference_batch_outputs(block_set, inputs)
        for out, ref in zip(outputs, references):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

    @pytest.mark.parametrize("num_divisions", [1, 2, 3, 6])
    def test_any_division_count(self, num_divisions):
        executor, block_set, inputs, _ = run_dcp(
            (64, 32), CausalMask(), num_divisions=num_divisions
        )
        outputs = executor.gather_outputs()
        references = reference_batch_outputs(block_set, inputs)
        for out, ref in zip(outputs, references):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

    def test_fabric_traffic_matches_placement_report(self):
        executor, _, _, placement = run_dcp((96, 48, 24), CausalMask(),
                                            seed=3)
        report = placement.comm_report()
        assert executor.fabric.total_bytes == report.total_bytes
        assert executor.fabric.inter_machine_bytes == report.inter_machine_bytes

    def test_ragged_tail_blocks(self):
        executor, block_set, inputs, _ = run_dcp((50, 23), CausalMask())
        outputs = executor.gather_outputs()
        references = reference_batch_outputs(block_set, inputs)
        for out, ref in zip(outputs, references):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

    def test_deadlock_detection(self):
        from repro.scheduling.instructions import CommWait, DevicePlan, ExecutionPlan

        batch = BatchSpec.build([16], CausalMask())
        spec = AttentionSpec(num_q_heads=2, num_kv_groups=1, head_dim=8)
        block_set = generate_blocks(batch, spec, block_size=16)
        cluster = ClusterSpec(1, 2)
        # A wait with no matching launch anywhere: deadlock.
        bad = ExecutionPlan(
            block_set=block_set,
            cluster=cluster,
            device_plans={
                0: DevicePlan(0, [CommWait(op_id=1)], {}, []),
                1: DevicePlan(1, [], {}, []),
            },
        )
        executor = SimExecutor(bad)
        # CommWait with unknown op: pending_recvs empty -> completes; build
        # a real deadlock instead with a recv that is never sent.
        from repro.scheduling.instructions import CommLaunch, RecvArg

        bad.device_plans[0].instructions = [
            CommLaunch(
                op_id=1,
                recvs=(RecvArg(peer=1, buffer="q", slot=0, tag=("x",),
                               nbytes=4),),
            ),
            CommWait(op_id=1),
        ]
        bad.device_plans[0].buffer_sizes = {"q": 1}
        executor = SimExecutor(bad)
        with pytest.raises(RuntimeError, match="deadlock"):
            executor.run()


class TestReference:
    def test_gqa_head_group_mapping(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((4, 10, 8)).astype(np.float32)
        k = rng.standard_normal((2, 10, 8)).astype(np.float32)
        v = rng.standard_normal((2, 10, 8)).astype(np.float32)
        mask = np.ones((10, 10), dtype=bool)
        out = reference_attention(q, k, v, mask, q_heads_per_group=2)
        # Heads 0,1 use group 0; heads 2,3 use group 1.
        out_swapped = reference_attention(
            q[[2, 3, 0, 1]], k[[1, 0]], v[[1, 0]], mask, 2
        )
        np.testing.assert_allclose(out[[2, 3, 0, 1]], out_swapped, rtol=1e-5)
