"""Tests for the multilevel hypergraph partitioner."""

import numpy as np
import pytest

from repro.hypergraph import (
    BalanceConstraint,
    Hypergraph,
    RefinementState,
    coarsen,
    coarsen_once,
    contract,
    fm_refine,
    partition_hypergraph,
    rebalance,
)


def simple_graph():
    """Two triangles joined by a light edge."""
    weights = np.ones((6, 2), dtype=np.int64)
    pins = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]]
    edge_weights = [5, 5, 5, 5, 5, 5, 1]
    return Hypergraph(weights, pins, edge_weights)


class TestHypergraph:
    def test_basic_properties(self):
        g = simple_graph()
        assert g.num_vertices == 6
        assert g.num_edges == 7
        assert g.total_weight.tolist() == [6, 6]

    def test_connectivity_cost(self):
        g = simple_graph()
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert g.connectivity_cost(labels, 2) == 1
        labels = np.array([0, 0, 1, 1, 1, 1])
        assert g.connectivity_cost(labels, 2) == 10  # edges {1,2} and {0,2}

    def test_part_weights(self):
        g = simple_graph()
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert g.part_weights(labels, 2).tolist() == [[3, 3], [3, 3]]

    def test_pin_validation(self):
        with pytest.raises(ValueError):
            Hypergraph(np.ones((2, 2)), [[0, 5]], [1])

    def test_edge_weight_mismatch(self):
        with pytest.raises(ValueError):
            Hypergraph(np.ones((2, 2)), [[0, 1]], [1, 2])

    def test_pins_deduplicated(self):
        g = Hypergraph(np.ones((3, 2)), [[0, 0, 1]], [1])
        assert g.pins[0].tolist() == [0, 1]


class TestBalanceConstraint:
    def test_caps(self):
        g = simple_graph()
        caps = BalanceConstraint((0.0, 0.0)).caps(g, 2)
        assert caps.tolist() == [3, 3]

    def test_caps_relaxed_to_heaviest_vertex(self):
        weights = np.array([[10, 0], [1, 0], [1, 0]], dtype=np.int64)
        g = Hypergraph(weights, [[0, 1]], [1])
        caps = BalanceConstraint((0.0, 0.0)).caps(g, 3)
        assert caps[0] == 10

    def test_wrong_dims_rejected(self):
        with pytest.raises(ValueError):
            BalanceConstraint((0.1,)).caps(simple_graph(), 2)


class TestContract:
    def test_weights_conserved(self):
        g = simple_graph()
        mapping = np.array([0, 0, 0, 1, 1, 1])
        coarse = contract(g, mapping, 2)
        assert coarse.weights.sum() == g.weights.sum()

    def test_internal_edges_dropped(self):
        g = simple_graph()
        mapping = np.array([0, 0, 0, 1, 1, 1])
        coarse = contract(g, mapping, 2)
        assert coarse.num_edges == 1
        assert coarse.edge_weights.tolist() == [1]

    def test_duplicate_edges_merged(self):
        g = Hypergraph(np.ones((4, 2)), [[0, 2], [1, 3]], [3, 4])
        coarse = contract(g, np.array([0, 0, 1, 1]), 2)
        assert coarse.num_edges == 1
        assert coarse.edge_weights.tolist() == [7]


class TestCoarsen:
    def test_coarsen_once_shrinks(self):
        g = simple_graph()
        rng = np.random.default_rng(0)
        result = coarsen_once(g, np.array([3, 3]), rng)
        assert result is not None
        coarse, mapping = result
        assert coarse.num_vertices < g.num_vertices
        assert mapping.max() == coarse.num_vertices - 1

    def test_hierarchy_respects_min_vertices(self):
        rng = np.random.default_rng(0)
        n = 200
        pins = [[i, i + 1] for i in range(n - 1)]
        g = Hypergraph(np.ones((n, 2)), pins, [1] * (n - 1))
        levels = coarsen(g, 2, rng, min_vertices=20)
        assert levels
        assert levels[-1][0].num_vertices >= 10


class TestRefinement:
    def test_gain_matches_recomputed_cost(self):
        g = simple_graph()
        labels = np.array([0, 1, 0, 1, 0, 1])
        state = RefinementState(g, labels, 2)
        for vertex in range(6):
            for target in range(2):
                if target == state.labels[vertex]:
                    continue
                before = state.cost()
                gain = state.gain(vertex, target)
                state.move(vertex, target)
                after = state.cost()
                assert before - after == gain
                state.move(vertex, int(labels[vertex]))  # restore

    def test_fm_escapes_plateau_on_chain(self):
        # A chain partitioned off-center: only zero-gain moves lead to
        # the optimum, which greedy alone cannot take.
        n = 10
        pins = [[i, i + 1] for i in range(n - 1)]
        weights = [10] * (n - 1)
        weights[n // 2 - 1] = 1  # light edge at the true center
        g = Hypergraph(np.ones((n, 2)), pins, weights)
        labels = np.array([0] * 3 + [1] * 7)
        state = RefinementState(g, labels, 2)
        caps = BalanceConstraint((0.2, 0.2)).caps(g, 2)
        fm_refine(state, caps, np.random.default_rng(0))
        assert state.cost() == 1

    def test_rebalance_fixes_overload(self):
        g = simple_graph()
        labels = np.zeros(6, dtype=np.int64)  # everything on part 0
        state = RefinementState(g, labels, 2)
        caps = BalanceConstraint((0.2, 0.2)).caps(g, 2)
        assert not state.is_feasible(caps)
        assert rebalance(state, caps, np.random.default_rng(0))
        assert state.is_feasible(caps)


class TestPartition:
    def test_two_triangles_split_cleanly(self):
        result = partition_hypergraph(
            simple_graph(), 2, BalanceConstraint((0.1, 0.1)), seed=0,
            restarts=2,
        )
        assert result.cost == 1
        assert result.feasible

    def test_k_equals_one(self):
        result = partition_hypergraph(simple_graph(), 1)
        assert result.cost == 0
        assert np.all(result.labels == 0)

    def test_empty_graph(self):
        g = Hypergraph(np.zeros((0, 2)), [], [])
        result = partition_hypergraph(g, 4)
        assert result.feasible and len(result.labels) == 0

    def test_deterministic_given_seed(self):
        g = simple_graph()
        a = partition_hypergraph(g, 2, seed=3)
        b = partition_hypergraph(g, 2, seed=3)
        assert np.array_equal(a.labels, b.labels)

    def test_warm_start_never_hurts(self):
        g = simple_graph()
        warm = np.array([0, 0, 0, 1, 1, 1])
        result = partition_hypergraph(
            g, 2, BalanceConstraint((0.1, 0.1)), warm_starts=[warm],
            restarts=1,
        )
        assert result.cost <= g.connectivity_cost(warm, 2)

    def test_invalid_warm_start_rejected(self):
        with pytest.raises(ValueError):
            partition_hypergraph(
                simple_graph(), 2, warm_starts=[np.array([0, 1])]
            )
        with pytest.raises(ValueError):
            partition_hypergraph(
                simple_graph(), 2, warm_starts=[np.full(6, 7)]
            )

    def test_balance_respected_on_random_graph(self):
        rng = np.random.default_rng(5)
        n = 120
        weights = np.stack(
            [rng.integers(1, 10, n), rng.integers(1, 10, n)], axis=1
        )
        pins = [rng.choice(n, size=rng.integers(2, 5), replace=False)
                for _ in range(300)]
        g = Hypergraph(weights, pins, rng.integers(1, 20, 300))
        balance = BalanceConstraint((0.15, 0.15))
        result = partition_hypergraph(g, 4, balance, seed=0, restarts=2)
        caps = balance.caps(g, 4)
        assert result.feasible
        assert np.all(result.part_weights <= caps[None, :])

    def test_imbalance_metric(self):
        result = partition_hypergraph(simple_graph(), 2, seed=0)
        assert np.all(result.imbalance() >= -1e-9)
