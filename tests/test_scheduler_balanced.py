"""Tests for the compute-balanced division scheduler (§7.5 extension)."""

import numpy as np
import pytest

from repro import AttentionSpec, BatchSpec, ClusterSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask, LambdaMask
from repro.placement import PlacementConfig, place_blocks
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.scheduling import build_schedule, serialize_schedule, validate_plan
from repro.sim import simulate_plan

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def _schedule(strategy, seqlens=(256, 128, 64), mask=None, divisions=4):
    batch = BatchSpec.build(list(seqlens), mask or CausalMask())
    block_set = generate_blocks(batch, ATTENTION, block_size=16)
    placement = place_blocks(
        block_set, CLUSTER, PlacementConfig(seed=0, restarts=1)
    )
    return build_schedule(
        block_set, placement, num_divisions=divisions, strategy=strategy
    )


class TestBalancedScheduler:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            _schedule("zigzag")

    def test_config_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            DCPConfig(scheduler="wrong")

    def test_all_blocks_scheduled_once(self):
        for strategy in ("paper", "balanced"):
            schedule = _schedule(strategy)
            scheduled = [
                comp
                for ds in schedule.device_schedules.values()
                for comp in ds.all_blocks()
            ]
            assert len(scheduled) == len(schedule.block_set.comp_blocks)
            assert len(set(map(id, scheduled))) == len(scheduled)

    def test_plans_validate(self):
        for strategy in ("paper", "balanced"):
            plan = serialize_schedule(_schedule(strategy))
            validate_plan(plan)

    @pytest.mark.parametrize("mask", [CausalMask(), LambdaMask(4, 24)],
                             ids=lambda m: m.name)
    def test_numerics_identical(self, mask):
        """Strategy changes ordering, never results."""
        plan = serialize_schedule(_schedule("balanced", mask=mask))
        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=2)
        executor.load_inputs(inputs)
        executor.run()
        outputs = executor.gather_outputs()
        references = reference_batch_outputs(plan.block_set, inputs)
        for out, ref in zip(outputs, references):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

    def test_balanced_spreads_division_compute(self):
        """Per-division compute variance shrinks under 'balanced'."""

        def spread(schedule):
            worst = 0.0
            for ds in schedule.device_schedules.values():
                pairs = np.array(
                    [sum(c.pairs for c in div) for div in ds.divisions],
                    dtype=np.float64,
                )
                if pairs.sum() == 0:
                    continue
                worst = max(worst, float(pairs.max() / pairs.mean()))
            return worst

        paper = spread(_schedule("paper"))
        balanced = spread(_schedule("balanced"))
        assert balanced <= paper + 1e-9

    def test_balanced_respects_comm_budget_middle_divisions(self):
        schedule = _schedule("balanced")
        block_bytes = schedule.block_set.block_bytes
        for ds in schedule.device_schedules.values():
            total = sum(
                block_bytes(b) for fetch in ds.fetches for b in fetch
            ) + sum(block_bytes(b) for b in ds.output_sends)
            if total == 0:
                continue
            limit = total / schedule.num_divisions
            for division in range(1, schedule.num_divisions - 1):
                fetched = sum(block_bytes(b) for b in ds.fetches[division])
                assert fetched <= limit + 1e-9

    def test_division_zero_communication_free(self):
        schedule = _schedule("balanced")
        for ds in schedule.device_schedules.values():
            assert not ds.fetches[0]

    def test_planner_accepts_strategy(self):
        batch = BatchSpec.build([256, 64], CausalMask())
        block_set = generate_blocks(batch, ATTENTION, block_size=16)
        planner = DCPPlanner(
            CLUSTER, ATTENTION,
            DCPConfig(block_size=16, restarts=1, scheduler="balanced"),
        )
        plan = planner.plan(block_set, CLUSTER)
        validate_plan(plan)
        assert simulate_plan(plan).iteration_time > 0

    def test_single_division_everything_in_last(self):
        schedule = _schedule("balanced", divisions=1)
        for ds in schedule.device_schedules.values():
            assert ds.num_divisions == 1
