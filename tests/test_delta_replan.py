"""Delta re-planning on cluster events.

The contract under test: when a :class:`~repro.sim.ClusterEventSource`
reports a shape change mid-stream, the delta re-planner re-dispatches
*only* the prefetch-window jobs the event actually affects — reusing
compatible plans via :func:`~repro.scheduling.rebind_plan` and
warm-starting affected re-plans from their previous placement — and the
result is indistinguishable (``plan_fingerprint``-identical) from
re-planning the whole window through the same primitive
(``replan_mode="window"``), under arbitrary event timing.

Also covers the building blocks: event affected-device metadata,
plan compatibility/rebind, per-device ``plan_diff``, warm-start label
repair, and the planner's warm adopt/repair paths.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import PlanCache
from repro.hypergraph import BalanceConstraint, repair_labels
from repro.pipeline import (
    StreamingOverlapPipeline,
    plan_diff,
    plan_fingerprint,
)
from repro.placement import build_block_hypergraph
from repro.scheduling import (
    empty_device_plan,
    plan_compatible,
    rebind_plan,
    validate_plan,
)
from repro.sim import ClusterEventSource

CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)
GROWN = ClusterSpec(num_machines=3, devices_per_machine=2)
SHRUNK = ClusterSpec(num_machines=1, devices_per_machine=2)
ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)


def make_planner(cluster=CLUSTER):
    return DCPPlanner(
        cluster, ATTENTION, DCPConfig(block_size=16, restarts=1)
    )


def make_batches(count=4, base=48):
    mask = make_mask("causal")
    return [
        BatchSpec.build([base + 16 * (i % 3), 32], mask) for i in range(count)
    ]


def settle(pipeline, timeout=10.0):
    """Wait for every window job to finish, so event classification is
    deterministic (the racy in-flight fallback has its own tests)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(
            item.ticket is None or item.ticket.ready()
            for item in pipeline._pending
        ):
            return
        time.sleep(0.002)
    raise AssertionError("prefetch window did not settle in time")


class TestEventMetadata:
    def test_removal_names_removed_devices(self):
        events = ClusterEventSource(CLUSTER)
        event = events.remove_machines(1)
        assert event.previous == CLUSTER
        assert event.cluster == SHRUNK
        assert event.affected_devices == (2, 3)

    def test_addition_names_added_devices(self):
        events = ClusterEventSource(CLUSTER)
        event = events.add_machines(1)
        assert event.previous == CLUSTER
        assert event.affected_devices == (4, 5)

    def test_devices_per_machine_change_affects_everything(self):
        events = ClusterEventSource(CLUSTER)
        event = events.resize(devices_per_machine=4)
        assert event.affected_devices == tuple(range(8))

    def test_parameter_resize_affects_no_devices(self):
        events = ClusterEventSource(CLUSTER)
        event = events.resize(inter_bandwidth=25e9)
        assert event.affected_devices == ()
        assert event.previous == CLUSTER


class TestPlanCompatibility:
    def _plan(self):
        return make_planner().plan_batch(make_batches(1)[0])

    def test_growth_is_always_compatible(self):
        plan = self._plan()
        assert plan_compatible(plan, GROWN)

    def test_rebind_grow_matches_warm_replan(self):
        """Rebind extends with idle devices, byte-identical to actually
        re-planning with the old placement adopted warm."""
        planner = make_planner()
        batch = make_batches(1)[0]
        plan = planner.plan_batch(batch)
        rebound = rebind_plan(plan, GROWN)
        assert sorted(rebound.device_plans) == list(range(6))
        assert rebound.cluster == GROWN
        replanned = planner.plan_batch(
            batch, cluster=GROWN, warm=plan.meta["placement"]
        )
        assert plan_fingerprint(rebound) == plan_fingerprint(replanned)
        validate_plan(rebound)

    def test_rebind_round_trip_restores_fingerprint(self):
        """Grow then shrink back: the trailing devices the grow added
        are idle, so the shrink is compatible and restores the original
        plan byte-for-byte."""
        plan = self._plan()
        grown = rebind_plan(plan, GROWN)
        assert plan_compatible(grown, CLUSTER)
        back = rebind_plan(grown, CLUSTER)
        assert plan_fingerprint(back) == plan_fingerprint(plan)

    def test_shrink_incompatible_when_devices_busy(self):
        plan = self._plan()
        busy = [
            device
            for device, dp in plan.device_plans.items()
            if dp.instructions or dp.local_slices
        ]
        assert any(device >= SHRUNK.num_devices for device in busy)
        assert not plan_compatible(plan, SHRUNK)
        with pytest.raises(ValueError):
            rebind_plan(plan, SHRUNK)

    def test_parameter_and_topology_changes_incompatible(self):
        plan = self._plan()
        import dataclasses

        slower = dataclasses.replace(CLUSTER, inter_bandwidth=25e9)
        assert not plan_compatible(plan, slower)
        remapped = ClusterSpec(num_machines=1, devices_per_machine=4)
        assert not plan_compatible(plan, remapped)

    def test_empty_device_plan_matches_serializer_output(self):
        """An idle device serialized by the real pipeline equals the
        synthetic one rebind grafts on."""
        planner = make_planner()
        batch = make_batches(1)[0]
        plan = planner.plan_batch(batch)
        grown_replan = planner.plan_batch(
            batch, cluster=GROWN, warm=plan.meta["placement"]
        )
        from repro.pipeline import device_payload

        for device in (4, 5):
            assert device_payload(
                device, grown_replan.device_plans[device]
            ) == device_payload(device, empty_device_plan(device))


class TestPlanDiff:
    def test_identical_plans_diff_empty(self):
        planner = make_planner()
        batch = make_batches(1)[0]
        a = planner.plan_batch(batch)
        b = planner.plan_batch(batch)
        assert plan_diff(a, b) == ()

    def test_changed_device_named(self):
        planner = make_planner()
        batch = make_batches(1)[0]
        a = planner.plan_batch(batch)
        b = planner.plan_batch(batch)
        victim = next(
            d for d, dp in sorted(b.device_plans.items()) if dp.instructions
        )
        b.device_plans[victim].instructions = (
            b.device_plans[victim].instructions[:-1]
        )
        assert plan_diff(a, b) == (victim,)

    def test_missing_device_counts_as_changed(self):
        plan = make_planner().plan_batch(make_batches(1)[0])
        grown = rebind_plan(plan, GROWN)
        assert plan_diff(plan, grown) == (4, 5)


class TestRepairLabels:
    def _graph(self):
        batch = make_batches(1)[0]
        from repro.blocks import generate_blocks

        block_set = generate_blocks(batch, ATTENTION, block_size=16)
        return build_block_hypergraph(block_set).graph

    def test_in_range_labels_untouched(self):
        graph = self._graph()
        labels = np.arange(graph.num_vertices, dtype=np.int64) % 3
        caps = BalanceConstraint((0.4, 0.08)).caps(graph, 3)
        repaired = repair_labels(graph, labels, 3, caps)
        np.testing.assert_array_equal(repaired, labels)

    def test_stranded_vertices_reassigned_deterministically(self):
        graph = self._graph()
        labels = np.arange(graph.num_vertices, dtype=np.int64) % 4
        caps = BalanceConstraint((0.4, 0.08)).caps(graph, 2)
        repaired = repair_labels(graph, labels, 2, caps)
        assert repaired.min() >= 0 and repaired.max() < 2
        # Valid labels survive, stranded ones moved.
        valid = labels < 2
        np.testing.assert_array_equal(repaired[valid], labels[valid])
        again = repair_labels(graph, labels, 2, caps)
        np.testing.assert_array_equal(repaired, again)

    def test_wrong_shape_rejected(self):
        graph = self._graph()
        caps = BalanceConstraint((0.4, 0.08)).caps(graph, 2)
        with pytest.raises(ValueError):
            repair_labels(graph, np.zeros(3, dtype=np.int64), 2, caps)


class TestWarmPlanning:
    def test_warm_adopt_reproduces_plan(self):
        planner = make_planner()
        batch = make_batches(1)[0]
        plan = planner.plan_batch(batch)
        again = planner.plan_batch(
            batch, cluster=CLUSTER, warm=plan.meta["placement"]
        )
        assert plan_fingerprint(plan) == plan_fingerprint(again)

    def test_warm_shrink_repairs_and_is_deterministic(self):
        planner = make_planner()
        batch = make_batches(1)[0]
        warm = planner.plan_batch(batch).meta["placement"]
        first = planner.plan_batch(batch, cluster=SHRUNK, warm=warm)
        second = planner.plan_batch(batch, cluster=SHRUNK, warm=warm)
        validate_plan(first)
        assert first.cluster == SHRUNK
        assert plan_fingerprint(first) == plan_fingerprint(second)

    def test_mismatched_warm_labels_fall_back_cold(self):
        """Labels from a different block decomposition are useless as a
        warm start and must be ignored, not crash the planner."""
        planner = make_planner()
        batch = make_batches(1)[0]
        cold = planner.plan_batch(batch)
        bogus = (
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )
        plan = planner.plan_batch(batch, warm=bogus)
        assert plan_fingerprint(plan) == plan_fingerprint(cold)


class TestDeltaPipeline:
    def _run(self, mode, schedule, batches, kappa=2, workers=2, cache=None):
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        pipeline = StreamingOverlapPipeline(
            iter(batches),
            planner,
            lookahead=kappa,
            max_workers=workers,
            events=events,
            cache=cache,
            replan_mode=mode,
        )
        machines = CLUSTER.num_machines
        plans = []
        for index, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            for at, kind in schedule:
                if at != index:
                    continue
                settle(pipeline)
                if kind == "remove" and machines > 1:
                    events.remove_machines(1)
                    machines -= 1
                elif kind == "add":
                    events.add_machines(1)
                    machines += 1
        return plans, pipeline.stats()

    def test_addition_reuses_the_whole_window(self):
        batches = make_batches(5)
        plans, stats = self._run("delta", [(1, "add")], batches)
        assert stats.replans == 0
        assert stats.partial_replans == 0
        assert stats.replan_jobs_reused >= 1
        for plan in plans[2:]:
            assert plan.cluster.num_machines == 3
        assert any(r.reused for r in stats.records)

    def test_removal_replans_only_affected_jobs_warm(self):
        batches = make_batches(5)
        plans, stats = self._run("delta", [(1, "remove")], batches)
        assert stats.partial_replans + stats.replan_jobs_reused >= 1
        assert stats.replans == stats.partial_replans
        for plan in plans[2:]:
            assert plan.cluster.num_machines == 1
            validate_plan(plan)

    def test_delta_equals_window_on_removal(self):
        batches = make_batches(5)
        delta, ds = self._run("delta", [(1, "remove")], batches)
        window, ws = self._run("window", [(1, "remove")], batches)
        assert [plan_fingerprint(p) for p in delta] == [
            plan_fingerprint(p) for p in window
        ]
        assert ds.replans <= ws.replans

    def test_delta_equals_window_on_addition(self):
        batches = make_batches(5)
        delta, _ = self._run("delta", [(1, "add")], batches)
        window, _ = self._run("window", [(1, "add")], batches)
        assert [plan_fingerprint(p) for p in delta] == [
            plan_fingerprint(p) for p in window
        ]

    def test_compatible_cache_entries_survive_the_event(self):
        """Recurring signatures keep hitting after an add: the stale
        shape's entries are remapped onto the new shape, not dropped."""
        planner = make_planner()
        cache = PlanCache(planner, capacity=16)
        mask = make_mask("causal")
        batches = [BatchSpec.build([48, 32], mask) for _ in range(6)]
        plans, stats = self._run(
            "delta", [(1, "add")], batches, kappa=1, workers=1, cache=cache
        )
        assert len(plans) == 6
        assert cache.stats()["remapped"] >= 1
        assert stats.replans == 0  # nothing affected by an add
        # Post-event repeats of the same signature hit the remapped
        # entries instead of re-planning.
        assert stats.cache_hits >= 1

    def test_device_map_change_replans_cold(self):
        """A devices_per_machine resize remaps every device, so the old
        placement labels are meaningless as a warm start: the re-plan
        must be cold — byte-identical to a fresh planner on the new
        topology — not a verbatim adoption of the stale layout."""
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(4)
        pipeline = StreamingOverlapPipeline(
            iter(batches),
            planner,
            lookahead=1,
            max_workers=1,
            events=events,
        )
        remapped = ClusterSpec(num_machines=1, devices_per_machine=4)
        plans = []
        for index, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            if index == 0:
                settle(pipeline)
                events.resize(num_machines=1, devices_per_machine=4)
        stats = pipeline.stats()
        assert stats.replans >= 1  # nothing reusable across a remap
        assert stats.replan_jobs_reused == 0
        fresh = make_planner(cluster=remapped)
        for plan, batch in zip(plans[1:], batches[1:]):
            assert plan.cluster == remapped
            assert plan_fingerprint(plan) == plan_fingerprint(
                fresh.plan_batch(batch)
            )

    def test_unknown_replan_mode_rejected(self):
        with pytest.raises(ValueError):
            StreamingOverlapPipeline(
                [], make_planner(), replan_mode="yolo"
            )

    def test_delta_on_process_backend(self):
        """ClusterPinnedPlanner with warm labels must pickle: the warm
        re-dispatch crosses a process boundary."""
        batches = make_batches(4)
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        pipeline = StreamingOverlapPipeline(
            iter(batches),
            planner,
            lookahead=1,
            max_workers=2,
            backend="process",
            events=events,
        )
        plans = []
        for index, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            if index == 0:
                settle(pipeline)
                events.remove_machines(1)
        assert len(plans) == 4
        for plan in plans[1:]:
            assert plan.cluster.num_machines == 1
            validate_plan(plan)


@given(
    seed=st.integers(0, 10_000),
    num_batches=st.integers(2, 5),
    kappa=st.integers(0, 2),
    workers=st.integers(1, 2),
    schedule=st.lists(
        st.tuples(st.integers(0, 4), st.sampled_from(["add", "remove"])),
        min_size=1,
        max_size=2,
    ),
)
@settings(max_examples=8, deadline=None)
def test_delta_replan_fingerprint_identical_to_window_replan(
    seed, num_batches, kappa, workers, schedule
):
    """Under random streams and random event timing/kinds, the delta
    re-planner's yielded plans are byte-identical to brute-force
    re-planning the whole window — the reuse shortcut never changes
    what the pipeline produces."""
    rng = np.random.default_rng(seed)
    mask = make_mask("causal")
    batches = [
        BatchSpec.build(
            [int(n) for n in rng.integers(24, 72, rng.integers(1, 3))], mask
        )
        for _ in range(num_batches)
    ]

    def run(mode):
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        pipeline = StreamingOverlapPipeline(
            (b for b in batches),
            planner,
            lookahead=kappa,
            max_workers=workers,
            events=events,
            replan_mode=mode,
        )
        machines = CLUSTER.num_machines
        prints = []
        for index, (_, plan) in enumerate(pipeline):
            prints.append(plan_fingerprint(plan))
            for at, kind in schedule:
                if at != index:
                    continue
                settle(pipeline)
                if kind == "remove" and machines > 1:
                    events.remove_machines(1)
                    machines -= 1
                elif kind == "add":
                    events.add_machines(1)
                    machines += 1
        return prints

    assert run("delta") == run("window")
