"""Tests for the RingFlashAttention backward pass."""

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    generate_blocks,
    make_mask,
)
from repro.baselines import (
    RingAttentionPlanner,
    plan_ring_backward,
    run_ring_forward_backward,
)
from repro.model.attention import attention_forward_backward
from repro.runtime import BatchInputs
from repro.scheduling import validate_plan
from repro.sim import simulate_plan

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def build(seqlens=(96, 48, 20), mask=None):
    batch = BatchSpec.build(list(seqlens), mask or make_mask("causal"))
    return generate_blocks(batch, ATTENTION, block_size=16)


@pytest.mark.parametrize("zigzag", [False, True], ids=["ring", "zigzag"])
@pytest.mark.parametrize(
    "mask",
    [make_mask("causal"), make_mask("lambda", sink=4, window=12),
     make_mask("shared_question", num_answers=2, answer_fraction=0.3)],
    ids=lambda m: m.name,
)
def test_ring_backward_matches_dense(zigzag, mask):
    block_set = build(mask=mask)
    inputs = BatchInputs.random(block_set, seed=5)
    rng = np.random.default_rng(6)
    grad_outputs = [
        rng.standard_normal(q.shape).astype(np.float32) for q in inputs.q
    ]
    _, grads, _, _ = run_ring_forward_backward(
        block_set, CLUSTER, inputs, grad_outputs, zigzag=zigzag
    )
    for seq in range(len(inputs.q)):
        _, dense = attention_forward_backward(
            inputs.q[seq], inputs.k[seq], inputs.v[seq], mask
        )
        dq_ref, dk_ref, dv_ref = dense(grad_outputs[seq])
        np.testing.assert_allclose(grads.dq[seq], dq_ref, rtol=3e-3,
                                   atol=3e-4)
        np.testing.assert_allclose(grads.dk[seq], dk_ref, rtol=3e-3,
                                   atol=3e-4)
        np.testing.assert_allclose(grads.dv[seq], dv_ref, rtol=3e-3,
                                   atol=3e-4)


def test_backward_plan_validates():
    block_set = build()
    validate_plan(plan_ring_backward(block_set, CLUSTER))
    validate_plan(plan_ring_backward(block_set, CLUSTER, zigzag=True))


def test_backward_doubles_ring_traffic():
    """dKV rides along with KV: ~2x forward volume plus the final hop."""
    block_set = build()
    forward_plan = RingAttentionPlanner().plan(block_set, CLUSTER)
    backward_plan = plan_ring_backward(block_set, CLUSTER)
    fw = forward_plan.total_comm_bytes()
    bw = backward_plan.total_comm_bytes()
    assert 2.0 <= bw / fw <= 2.7

    timing = simulate_plan(backward_plan)
    assert timing.iteration_time > simulate_plan(forward_plan).iteration_time


def test_single_device_no_comm():
    block_set = build(seqlens=(64,))
    cluster = ClusterSpec(num_machines=1, devices_per_machine=1)
    inputs = BatchInputs.random(block_set, seed=0)
    grad_outputs = [np.ones_like(q) for q in inputs.q]
    _, grads, forward, backward = run_ring_forward_backward(
        block_set, cluster, inputs, grad_outputs
    )
    assert forward.fabric.total_bytes == 0
    assert backward.fabric.total_bytes == 0
    _, dense = attention_forward_backward(
        inputs.q[0], inputs.k[0], inputs.v[0], make_mask("causal")
    )
    dq_ref, _, _ = dense(grad_outputs[0])
    np.testing.assert_allclose(grads.dq[0], dq_ref, rtol=3e-3, atol=3e-4)
