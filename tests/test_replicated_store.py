"""Tests for R-way replication in the sharded plan store."""

import time

import pytest

from repro.faults import FaultInjector
from repro.service import HashRing, ShardedPlanStore
from repro.service.errors import ShardUnavailable
from repro.service.health import OPEN


def holders(store, key):
    """Shard names whose *backing store* holds ``key`` (ground truth)."""
    return [
        name for name in store.ring.nodes
        if store.store(name).contains(key)
    ]


def make_store(**kwargs):
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("breaker_reset_s", 0.01)
    return ShardedPlanStore(**kwargs)


class TestRingReplicaSets:
    def test_nodes_for_distinct_and_prefix_consistent(self):
        ring = HashRing(["a", "b", "c", "d"])
        for i in range(50):
            key = f"key{i}"
            owners = ring.nodes_for(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners[0] == ring.node_for(key)
            assert ring.nodes_for(key, 2) == owners[:2]

    def test_count_clamped_to_population(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.nodes_for("k", 5)) == ["a", "b"]


class TestReplicatedWrites:
    def test_put_lands_on_replication_owners(self):
        store = make_store()
        for i in range(24):
            store.put(f"sig/{i:04x}", bytes([i]) * 8)
        for i in range(24):
            key = f"sig/{i:04x}"
            assert holders(store, key) and \
                sorted(holders(store, key)) == sorted(store.owners_for(key))
            assert len(holders(store, key)) == 2

    def test_write_survives_one_dead_owner(self):
        injector = FaultInjector()
        store = make_store(fault_injector=injector)
        key = "sig/abcd"
        injector.kill(f"shard:{store.owners_for(key)[0]}")
        store.put(key, b"payload")
        assert store.try_get(key) == b"payload"
        assert store.metrics.counter(
            "service.replica_write_failures"
        ).value >= 1

    def test_write_fails_only_when_all_owners_dead(self):
        injector = FaultInjector()
        store = make_store(fault_injector=injector)
        key = "sig/abcd"
        for name in store.owners_for(key):
            injector.kill(f"shard:{name}")
        with pytest.raises(ShardUnavailable):
            store.put(key, b"payload")


class TestReplicatedReads:
    def test_no_lost_keys_after_single_shard_kill(self):
        injector = FaultInjector()
        store = make_store(shards=4, fault_injector=injector)
        payloads = {f"sig/{i:04x}": bytes([i % 251]) * 16 for i in range(64)}
        for key, value in payloads.items():
            store.put(key, value)
        injector.kill("shard:shard1")
        for key, value in payloads.items():
            assert store.try_get(key) == value  # replica serves every key

    def test_read_repair_reheals_a_wiped_primary(self):
        injector = FaultInjector()
        store = make_store(shards=4, fault_injector=injector)
        # Find a key whose primary is shard1 so the read path probes the
        # wiped shard first and repairs it from the surviving replica.
        key = next(
            f"sig/{i:04x}" for i in range(4096)
            if store.owners_for(f"sig/{i:04x}")[0] == "shard1"
        )
        store.put(key, b"payload")
        injector.kill("shard:shard1")
        injector.restart("shard:shard1")  # restart wipes the shard
        time.sleep(0.02)  # let the breaker's reset window elapse
        assert store.try_get(key) == b"payload"
        assert store.store("shard1").contains(key)  # repaired in place
        assert store.metrics.counter("service.read_repairs").value >= 1

    def test_restart_realizes_data_loss(self):
        injector = FaultInjector()
        store = make_store(shards=2, replication=1,
                           fault_injector=injector)
        store.put("sig/0001", b"v")
        name = store.owners_for("sig/0001")[0]
        injector.kill(f"shard:{name}")
        injector.restart(f"shard:{name}")
        time.sleep(0.02)
        # With replication=1 nothing can heal it: the key is gone, which
        # is exactly the failure replication exists to prevent.
        assert store.try_get("sig/0001") is None
        assert store.metrics.counter(
            "service.shard_restarts_seen"
        ).value == 1

    def test_circuit_breaker_fast_fails_dead_shard(self):
        injector = FaultInjector()
        store = make_store(shards=4, breaker_failures=2,
                           breaker_reset_s=30.0, fault_injector=injector)
        payloads = {f"sig/{i:04x}": b"x" * 8 for i in range(32)}
        for key, value in payloads.items():
            store.put(key, value)
        injector.kill("shard:shard0")
        for key, value in payloads.items():
            assert store.try_get(key) == value
        assert store.health.snapshot()["shard0"] == OPEN
        assert store.metrics.counter("health.fast_fails").value > 0

    def test_blocking_get_polls_across_replicas(self):
        injector = FaultInjector()
        store = make_store(fault_injector=injector)
        store.put("sig/0001", b"v")
        injector.kill(f"shard:{store.owners_for('sig/0001')[0]}")
        assert store.get("sig/0001", timeout=1.0) == b"v"
        with pytest.raises(KeyError):
            store.get("sig/miss", timeout=0.05)


class TestHedgedReads:
    def test_hedge_wins_over_slow_primary(self):
        injector = FaultInjector()
        store = make_store(shards=3, fault_injector=injector,
                           hedge_after_s=0.01)
        key = "sig/abcd"
        store.put(key, b"payload")
        injector.slow(f"shard:{store.owners_for(key)[0]}", 0.25)
        start = time.monotonic()
        assert store.try_get(key, hedge=True, timeout_s=5.0) == b"payload"
        elapsed = time.monotonic() - start
        assert elapsed < 0.2  # did not wait out the slow primary
        assert store.metrics.counter("service.hedged_fetches").value == 1
        assert store.metrics.counter("service.hedge_wins").value == 1

    def test_fast_primary_never_hedges(self):
        store = make_store(hedge_after_s=0.05)
        store.put("sig/0001", b"v")
        assert store.try_get("sig/0001", hedge=True) == b"v"
        assert store.metrics.counter("service.hedged_fetches").value == 0

    def test_hedged_miss_returns_none(self):
        store = make_store(hedge_after_s=0.005)
        assert store.try_get("sig/miss", hedge=True, timeout_s=1.0) is None

    def test_hedge_delay_derives_from_histogram(self):
        store = make_store(hedge_after_s=None)
        assert store.hedge_delay_s() == pytest.approx(0.01)  # cold start
        hist = store.metrics.histogram("kv.get_s")
        for _ in range(100):
            hist.observe(0.002)
        derived = store.hedge_delay_s()
        assert 5e-4 <= derived <= 0.1
        assert derived == pytest.approx(hist.quantile(0.99))


class TestAntiEntropy:
    def test_sync_heals_wiped_shard_to_full_replication(self):
        injector = FaultInjector()
        store = make_store(shards=4, fault_injector=injector)
        payloads = {f"sig/{i:04x}": bytes([i % 251]) * 8 for i in range(48)}
        for key, value in payloads.items():
            store.put(key, value)
        injector.kill("shard:shard2")
        injector.restart("shard:shard2")
        time.sleep(0.02)
        store.try_get(next(iter(payloads)))  # realize the wipe
        assert store.missing_replicas() > 0
        repaired = store.sync()
        assert repaired > 0
        assert store.missing_replicas() == 0
        for key, value in payloads.items():
            assert sorted(holders(store, key)) == \
                sorted(store.owners_for(key))

    def test_background_anti_entropy_thread(self):
        injector = FaultInjector()
        store = make_store(shards=3, fault_injector=injector,
                           anti_entropy_interval_s=0.02)
        try:
            for i in range(24):
                store.put(f"sig/{i:04x}", b"x" * 8)
            injector.kill("shard:shard0")
            injector.restart("shard:shard0")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if store.missing_replicas() == 0:
                    break
                time.sleep(0.02)
            assert store.missing_replicas() == 0
        finally:
            store.close()


class TestTopologyWithReplication:
    def test_add_node_preserves_replication_everywhere(self):
        store = make_store(shards=3)
        payloads = {f"sig/{i:04x}": bytes([i % 251]) * 8 for i in range(64)}
        for key, value in payloads.items():
            store.put(key, value)
        name, moved = store.add_node()
        assert name == "shard3" and moved > 0
        for key, value in payloads.items():
            assert store.try_get(key) == value
            assert sorted(holders(store, key)) == \
                sorted(store.owners_for(key))

    def test_replication_clamped_to_shard_count(self):
        store = ShardedPlanStore(shards=2, replication=5)
        assert store.replication == 2
        with pytest.raises(ValueError):
            ShardedPlanStore(shards=2, replication=0)
