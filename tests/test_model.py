"""Tests for the numpy GPT: layers, gradients, training equivalence."""

import numpy as np
import pytest

from repro.masks import CausalMask, LambdaMask
from repro.model import (
    GPTConfig,
    TinyGPT,
    attention_forward_backward,
    generate_corpus,
    make_distributed_forward,
    train,
)
from repro.model.layers import (
    gelu_backward,
    gelu_forward,
    layer_norm_backward,
    layer_norm_forward,
    linear_backward,
    linear_forward,
    softmax_cross_entropy,
)


def numerical_grad(fn, x, eps=1e-3):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        orig = flat[index]
        flat[index] = orig + eps
        up = fn()
        flat[index] = orig - eps
        down = fn()
        flat[index] = orig
        grad_flat[index] = (up - down) / (2 * eps)
    return grad


class TestLayers:
    def test_layer_norm_backward(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 6)).astype(np.float32)
        gamma = rng.standard_normal(6).astype(np.float32)
        beta = rng.standard_normal(6).astype(np.float32)
        upstream = rng.standard_normal((4, 6)).astype(np.float32)

        def loss():
            out, _ = layer_norm_forward(x, gamma, beta)
            return float((out * upstream).sum())

        out, cache = layer_norm_forward(x, gamma, beta)
        dx, dgamma, dbeta = layer_norm_backward(upstream, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=2e-3)
        np.testing.assert_allclose(dgamma, numerical_grad(loss, gamma),
                                   atol=2e-3)
        np.testing.assert_allclose(dbeta, numerical_grad(loss, beta),
                                   atol=2e-3)

    def test_gelu_backward(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 5)).astype(np.float32)
        upstream = rng.standard_normal((3, 5)).astype(np.float32)

        def loss():
            out, _ = gelu_forward(x)
            return float((out * upstream).sum())

        _, cache = gelu_forward(x)
        dx = gelu_backward(upstream, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=2e-3)

    def test_linear_backward(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 5)).astype(np.float32)
        upstream = rng.standard_normal((3, 5)).astype(np.float32)
        _, cache = linear_forward(x, w)
        dx, dw = linear_backward(upstream, cache)
        np.testing.assert_allclose(dx, upstream @ w.T, rtol=1e-5)
        np.testing.assert_allclose(dw, x.T @ upstream, rtol=1e-5)

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((4, 7)).astype(np.float32)
        targets = np.array([1, 3, 0, 6])

        def loss():
            value, _ = softmax_cross_entropy(logits, targets)
            return value

        _, grad = softmax_cross_entropy(logits, targets)
        np.testing.assert_allclose(grad, numerical_grad(loss, logits),
                                   atol=2e-3)


class TestAttentionBackward:
    def test_matches_numerical(self):
        rng = np.random.default_rng(4)
        q = rng.standard_normal((2, 6, 4)).astype(np.float32)
        k = rng.standard_normal((1, 6, 4)).astype(np.float32)
        v = rng.standard_normal((1, 6, 4)).astype(np.float32)
        mask = CausalMask()
        upstream = rng.standard_normal((2, 6, 4)).astype(np.float32)

        def loss():
            out, _ = attention_forward_backward(q, k, v, mask)
            return float((out * upstream).sum())

        _, backward = attention_forward_backward(q, k, v, mask)
        dq, dk, dv = backward(upstream)
        np.testing.assert_allclose(dq, numerical_grad(loss, q), atol=3e-3)
        np.testing.assert_allclose(dk, numerical_grad(loss, k), atol=3e-3)
        np.testing.assert_allclose(dv, numerical_grad(loss, v), atol=3e-3)


class TestTinyGPT:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GPTConfig(d_model=65, num_heads=4, head_dim=16)

    def test_parameter_gradients_numerically(self):
        config = GPTConfig(vocab=11, d_model=8, num_layers=1, num_heads=2,
                           num_kv_groups=1, head_dim=4, d_ff=12, max_len=16)
        model = TinyGPT(config, seed=0)
        tokens = np.array([1, 4, 2, 7, 3, 9, 0, 5])
        loss, grads = model.loss_and_grads(tokens)
        rng = np.random.default_rng(1)
        for name in ("head", "l0_wq", "l0_wk", "l0_w2", "tok_emb",
                     "final_gamma"):
            param = model.params[name]
            for _ in range(3):
                idx = tuple(
                    np.unravel_index(rng.integers(0, param.size), param.shape)
                )
                orig = param[idx]
                eps = 1e-3
                param[idx] = orig + eps
                up, _ = model.loss_and_grads(tokens)
                param[idx] = orig - eps
                down, _ = model.loss_and_grads(tokens)
                param[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert abs(numeric - grads[name][idx]) < 2e-3 * max(
                    1.0, abs(numeric)
                ), name

    def test_training_reduces_loss(self):
        config = GPTConfig(vocab=32, d_model=32, num_layers=2, num_heads=4,
                           num_kv_groups=2, head_dim=8, d_ff=64, max_len=64)
        model = TinyGPT(config, seed=1)
        corpus = generate_corpus(32, 48, 8, seed=2)
        losses = train(model, corpus, 60, learning_rate=0.5)
        assert losses[-1] < losses[0] - 0.5

    def test_sparse_mask_training_runs(self):
        config = GPTConfig(vocab=16, d_model=16, num_layers=1, num_heads=2,
                           num_kv_groups=1, head_dim=8, d_ff=32, max_len=64)
        model = TinyGPT(config, seed=0)
        corpus = generate_corpus(16, 32, 4, seed=0)
        losses = train(model, corpus, 10, mask=LambdaMask(sink=2, window=8))
        assert len(losses) == 10

    def test_distributed_forward_equals_dense(self):
        """The Fig. 21 claim: DCP does not change training numerics."""
        from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner

        config = GPTConfig(vocab=32, d_model=32, num_layers=2, num_heads=4,
                           num_kv_groups=2, head_dim=8, d_ff=64, max_len=64)
        corpus = generate_corpus(32, 40, 4, seed=5)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=8)
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        planner = DCPPlanner(cluster, attention,
                             DCPConfig(block_size=8, restarts=1))
        forward = make_distributed_forward(planner, attention, block_size=8)

        dense_model = TinyGPT(config, seed=3)
        dcp_model = TinyGPT(config, seed=3)
        dense_losses = train(dense_model, corpus, 8, learning_rate=0.5)
        dcp_losses = train(dcp_model, corpus, 8, learning_rate=0.5,
                           attention_forward=forward)
        for a, b in zip(dense_losses, dcp_losses):
            assert abs(a - b) < 1e-3
