"""Columnar plan wire format: roundtrip identity and compaction."""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.core.planwire import (
    DEVICE_MAGIC,
    PICKLE_MAGIC,
    PlanWire,
    PlanWireError,
    decode_device_payload,
    decode_plan,
    encode_device_payload,
    encode_plan,
)
from repro.masks import CausalMask, LambdaMask, SharedQuestionMask, make_mask
from repro.baselines import (
    RingAttentionPlanner,
    TransformerEnginePlanner,
    UlyssesPlanner,
    plan_ring_backward,
)
from repro.pipeline import device_payload, plan_fingerprint
from repro.placement import PlacementConfig, place_blocks
from repro.scheduling import build_schedule, serialize_backward_schedule
from repro.sim import ClusterSpec

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)


def build_blocks(seqlens, mask, block_size=16):
    batch = BatchSpec.build(list(seqlens), mask)
    return generate_blocks(batch, ATTENTION, block_size=block_size)


def roundtrip(plan):
    return decode_plan(encode_plan(plan).to_bytes())


def assert_wire_identical(plan):
    again = roundtrip(plan)
    assert plan_fingerprint(again) == plan_fingerprint(plan)
    for device, dp in plan.device_plans.items():
        decoded = again.device_plans[device]
        assert decoded.instructions == dp.instructions
        assert decoded.buffer_sizes == dp.buffer_sizes
        assert decoded.local_slices == dp.local_slices
    return again


# -- randomized mask families / cluster shapes (property test) ---------------


def mask_strategy():
    return st.one_of(
        st.just(CausalMask()),
        st.builds(
            LambdaMask, sink=st.integers(0, 12), window=st.integers(1, 32)
        ),
        st.builds(
            SharedQuestionMask,
            num_answers=st.integers(1, 3),
            answer_fraction=st.floats(0.1, 0.3),
        ),
    )


@given(
    mask=mask_strategy(),
    seqlens=st.lists(st.integers(16, 96), min_size=1, max_size=3),
    machines=st.integers(1, 2),
    devices=st.integers(1, 2),
)
@settings(max_examples=25)
def test_decode_encode_fingerprint_identity(mask, seqlens, machines, devices):
    """decode(encode(p)) is plan_fingerprint-identical to p."""
    cluster = ClusterSpec(num_machines=machines, devices_per_machine=devices)
    planner = DCPPlanner(cluster, attention=ATTENTION,
                         config=DCPConfig(block_size=16))
    plan = planner.plan_batch(BatchSpec.build(seqlens, mask))
    assert_wire_identical(plan)


# -- every plan family goes columnar -----------------------------------------


CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def all_plans():
    block_set = build_blocks((96, 48, 32), CausalMask())
    placement = place_blocks(block_set, CLUSTER,
                             PlacementConfig(seed=0, restarts=1))
    schedule = build_schedule(block_set, placement, 4)
    small = ClusterSpec(num_machines=1, devices_per_machine=2)
    return {
        "dcp_backward": serialize_backward_schedule(schedule),
        "ring": RingAttentionPlanner().plan(block_set, CLUSTER),
        "ring_zigzag": RingAttentionPlanner(zigzag=True).plan(
            block_set, CLUSTER
        ),
        "ring_backward": plan_ring_backward(block_set, CLUSTER),
        "te": TransformerEnginePlanner().plan(block_set, CLUSTER),
        "ulysses": UlyssesPlanner().plan(block_set, small),
        "ulysses_backward": UlyssesPlanner().plan_backward(block_set, small),
    }


@pytest.mark.parametrize("name", sorted(all_plans()))
def test_plan_families_roundtrip_columnar(name):
    plan = all_plans()[name]
    assert_wire_identical(plan)
    for device, dp in plan.device_plans.items():
        assert device_payload(device, dp)[:4] == DEVICE_MAGIC


def test_meta_and_context_survive():
    plan = all_plans()["ring"]
    plan.meta["marker"] = {"answer": 42}
    again = roundtrip(plan)
    assert again.meta["marker"] == {"answer": 42}
    assert again.cluster == plan.cluster


# -- canonical bytes ---------------------------------------------------------


def test_payload_is_canonical_across_decode():
    """A decoded plan re-encodes to the identical per-device bytes."""
    plan = all_plans()["dcp_backward"]
    again = roundtrip(plan)
    for device, dp in plan.device_plans.items():
        assert (
            encode_device_payload(device, again.device_plans[device])
            == encode_device_payload(device, dp)
        )


def test_payload_independent_of_dict_insertion_order():
    plan = all_plans()["ring"]
    device, dp = next(iter(plan.device_plans.items()))
    reordered = type(dp)(
        device=dp.device,
        instructions=dp.instructions,
        buffer_sizes=dict(reversed(list(dp.buffer_sizes.items()))),
        local_slices=dp.local_slices,
        o_slots=dict(reversed(list(dp.o_slots.items()))),
        q_slots=dp.q_slots,
        kv_slots=dp.kv_slots,
        acc_slots=dp.acc_slots,
        do_slots=dp.do_slots,
        dq_slots=dp.dq_slots,
        dkv_slots=dp.dkv_slots,
    )
    assert (
        encode_device_payload(device, reordered)
        == encode_device_payload(device, dp)
    )


def test_wire_beats_pickle_on_dcp_plans():
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    planner = DCPPlanner(cluster, config=DCPConfig(block_size=256))
    plan = planner.plan_batch(
        BatchSpec.build([4096, 2048], [make_mask("causal")] * 2)
    )
    for device, dp in plan.device_plans.items():
        assert len(device_payload(device, dp)) < len(pickle.dumps(dp))


# -- per-device slicing ------------------------------------------------------


def test_device_bytes_view_decodes_single_device():
    plan = all_plans()["te"]
    wire = PlanWire.from_bytes(encode_plan(plan).to_bytes())
    assert isinstance(wire.payload, memoryview)
    for device in plan.device_plans:
        view = wire.device_bytes(device)
        assert isinstance(view, memoryview)
        decoded_device, dp = decode_device_payload(view)
        assert decoded_device == device
        assert dp.instructions == plan.device_plans[device].instructions


def test_device_bytes_match_device_payload():
    plan = all_plans()["ring"]
    wire = encode_plan(plan)
    for device, dp in plan.device_plans.items():
        assert bytes(wire.device_bytes(device)) == device_payload(device, dp)


# -- fallback + error paths --------------------------------------------------


class _AlienInstruction:
    kind = "alien"


def test_unknown_instruction_falls_back_to_pickle_frame():
    plan = all_plans()["ring"]
    device, dp = next(iter(plan.device_plans.items()))
    dp.instructions.append(_AlienInstruction())
    blob = encode_device_payload(device, dp)
    assert blob[:4] == PICKLE_MAGIC
    decoded_device, decoded = decode_device_payload(blob)
    assert decoded_device == device
    assert decoded.buffer_sizes == dp.buffer_sizes
    assert decoded.instructions[-1].kind == "alien"


def test_bad_magic_rejected():
    with pytest.raises(PlanWireError):
        decode_device_payload(b"XXXX....")
    with pytest.raises(PlanWireError):
        decode_plan(b"YYYYbad")


def test_truncated_payload_rejected():
    plan = all_plans()["ring"]
    device, dp = next(iter(plan.device_plans.items()))
    blob = encode_device_payload(device, dp)
    with pytest.raises(PlanWireError):
        decode_device_payload(blob[: len(blob) // 2])


def test_int64_lane_when_values_overflow_int32():
    plan = all_plans()["ring"]
    device, dp = next(iter(plan.device_plans.items()))
    dp.buffer_sizes["huge"] = 2 ** 40
    blob = encode_device_payload(device, dp)
    assert blob[:4] == DEVICE_MAGIC
    _, decoded = decode_device_payload(blob)
    assert decoded.buffer_sizes["huge"] == 2 ** 40
