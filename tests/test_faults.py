"""Tests for the chaos harness (repro.faults) and failure detection."""

import pytest

from repro.core.kvstore import KVStore
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultyKVStore,
    ScheduleRunner,
    parse_schedule,
)
from repro.service.errors import KVOpDropped, ShardUnavailable
from repro.service.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ShardHealth,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- injector -----------------------------------------------------------------


class TestFaultInjector:
    def test_kill_restart_generation(self):
        injector = FaultInjector()
        assert not injector.is_killed("shard:a")
        injector.kill("shard:a")
        assert injector.is_killed("shard:a")
        assert injector.restart_count("shard:a") == 0
        injector.restart("shard:a")
        assert not injector.is_killed("shard:a")
        assert injector.restart_count("shard:a") == 1
        # Restarting a live target is a no-op generation-wise.
        injector.restart("shard:a")
        assert injector.restart_count("shard:a") == 1

    def test_slow_is_sustained_hang_is_one_shot(self):
        injector = FaultInjector()
        injector.slow("shard:a", 0.01)
        assert injector.delay_s("shard:a") == pytest.approx(0.01)
        assert injector.delay_s("shard:a") == pytest.approx(0.01)
        injector.hang("shard:a", 0.5)
        assert injector.delay_s("shard:a") == pytest.approx(0.51)
        assert injector.delay_s("shard:a") == pytest.approx(0.01)
        injector.clear("shard:a")
        assert injector.delay_s("shard:a") == 0.0

    def test_drop_decisions_are_seed_deterministic(self):
        def decisions(seed):
            injector = FaultInjector(seed=seed)
            injector.drop("shard:a", 0.5)
            return [injector.should_drop("shard:a") for _ in range(200)]

        first = decisions(7)
        assert first == decisions(7)
        assert any(first) and not all(first)
        assert first != decisions(8)

    def test_drop_rate_validated_and_clear_keeps_kill(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.drop("shard:a", 1.5)
        injector.kill("shard:a")
        injector.drop("shard:a", 1.0)
        injector.clear("shard:a")
        assert not injector.should_drop("shard:a")
        assert injector.is_killed("shard:a")  # clear lifts faults, not kill

    def test_log_and_snapshot(self):
        injector = FaultInjector()
        injector.kill("shard:a")
        injector.slow("shard:b", 0.02)
        assert ("kill", "shard:a") in injector.log
        snap = injector.snapshot()
        assert snap["shard:a"]["killed"]
        assert snap["shard:b"]["delay_s"] == pytest.approx(0.02)


# -- schedule DSL -------------------------------------------------------------


class TestFaultSchedule:
    def test_parse_round_trip(self):
        text = """
        # warm-up, then kill the primary
        0.2 kill shard:shard1
        0.4 slow shard:shard2 0.01
        1.0 restart shard:shard1
        """
        schedule = parse_schedule(text)
        assert [e.action for e in schedule.events] == \
            ["kill", "slow", "restart"]
        assert schedule.duration_s == pytest.approx(1.0)
        reparsed = parse_schedule(schedule.to_text())
        assert reparsed.events == schedule.events

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_schedule("nonsense")
        with pytest.raises(ValueError, match="bad time"):
            parse_schedule("abc kill shard:a")
        with pytest.raises(ValueError, match="needs an argument"):
            parse_schedule("0.1 slow shard:a")
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_schedule("0.1 explode shard:a")

    def test_apply_through_is_deterministic_stepping(self):
        schedule = FaultSchedule([
            FaultEvent(0.2, "kill", "shard:a"),
            FaultEvent(0.5, "restart", "shard:a"),
        ])
        injector = FaultInjector()
        assert schedule.apply_through(0.1, injector) == 0
        assert schedule.apply_through(0.3, injector) == 1
        assert injector.is_killed("shard:a")
        assert schedule.apply_through(0.3, injector) == 0  # no re-apply
        assert schedule.apply_through(1.0, injector) == 1
        assert not injector.is_killed("shard:a")
        schedule.reset()
        assert schedule.apply_through(1.0, FaultInjector()) == 2

    def test_runner_applies_in_wall_time(self):
        schedule = parse_schedule(
            "0.0 kill shard:a\n0.05 restart shard:a"
        )
        injector = FaultInjector()
        with ScheduleRunner(schedule, injector) as runner:
            runner.join(timeout=5.0)
        assert not injector.is_killed("shard:a")
        assert injector.restart_count("shard:a") == 1
        assert len(runner.applied) == 2


# -- faulty store proxy -------------------------------------------------------


class TestFaultyKVStore:
    def test_kill_and_restart(self):
        injector = FaultInjector()
        store = FaultyKVStore(KVStore(), injector, "shard:a")
        store.put("k", b"v")
        injector.kill("shard:a")
        with pytest.raises(ShardUnavailable):
            store.try_get("k")
        with pytest.raises(ShardUnavailable):
            store.put("k2", b"v2")
        injector.restart("shard:a")
        assert store.try_get("k") == b"v"  # proxy models no data loss

    def test_drop_raises_without_applying(self):
        injector = FaultInjector()
        store = FaultyKVStore(KVStore(), injector, "shard:a")
        injector.drop("shard:a", 1.0)
        with pytest.raises(KVOpDropped):
            store.put("k", b"v")
        injector.clear("shard:a")
        assert store.try_get("k") is None  # the put never landed

    def test_slow_sleeps_injected_delay(self):
        slept = []
        injector = FaultInjector()
        store = FaultyKVStore(KVStore(), injector, "shard:a",
                              sleep=slept.append)
        injector.slow("shard:a", 0.02)
        store.put("k", b"v")
        assert slept == [pytest.approx(0.02)]

    def test_passthrough_surface(self):
        inner = KVStore()
        store = FaultyKVStore(inner, FaultInjector(), "shard:a")
        assert store.store is inner
        assert store.host_machine == inner.host_machine


# -- circuit breakers + health ------------------------------------------------


class TestCircuitBreaker:
    def test_threshold_opens_and_reset_half_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=1.0,
                                 clock=clock)
        assert breaker.state == CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # concurrent callers still blocked
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_failed_probe_reopens_with_fresh_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert not breaker.allow()  # timer restarted at probe failure
        clock.advance(0.5)
        assert breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never 2 consecutive

    def test_trip_forces_open(self):
        breaker = CircuitBreaker()
        breaker.trip()
        assert breaker.state == OPEN
        assert breaker.opened_count == 1


class TestShardHealth:
    def test_routes_and_counts_fast_fails(self):
        clock = FakeClock()
        health = ShardHealth(failure_threshold=2, reset_after_s=1.0,
                             clock=clock)
        assert health.allow("shard0")
        health.record_failure("shard0")
        health.record_failure("shard0")
        assert not health.allow("shard0")
        assert health.metrics.counter("health.fast_fails").value == 1
        assert health.metrics.counter("health.breaker_opened").value == 1
        assert health.snapshot()["shard0"] == OPEN

    def test_heartbeat_liveness(self):
        clock = FakeClock()
        health = ShardHealth(heartbeat_timeout_s=1.0, clock=clock)
        assert health.is_alive("worker:0")  # never heartbeat: presumed up
        health.heartbeat("worker:0")
        clock.advance(0.5)
        assert health.is_alive("worker:0")
        clock.advance(1.0)
        assert not health.is_alive("worker:0")  # silent too long: hung
        assert health.alive(["worker:0", "worker:1"]) == ["worker:1"]
