"""Tests for the extension masks: packed documents and prefix-LM."""

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    generate_blocks,
    make_mask,
)
from repro.masks import PackedDocumentMask, PrefixLMMask
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs


class TestPackedDocumentMask:
    def test_block_diagonal_structure(self):
        mask = PackedDocumentMask(doc_lens=(3, 4, 3))
        dense = mask.dense(10)
        # Document boundaries: [0,3), [3,7), [7,10).
        assert dense[2, 2] and dense[2, 0]
        assert not dense[3, 2], "documents must not see each other"
        assert dense[5, 3] and not dense[5, 6], "causal inside a document"
        assert not dense[8, 6]

    def test_overflow_forms_trailing_document(self):
        mask = PackedDocumentMask(doc_lens=(4,))
        dense = mask.dense(8)
        assert not dense[5, 3]
        assert dense[6, 4]

    def test_ranges_valid_various_lengths(self):
        mask = PackedDocumentMask(doc_lens=(5, 2, 9))
        for seqlen in (1, 4, 16, 30):
            mask.ranges(seqlen).validate()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PackedDocumentMask(doc_lens=())
        with pytest.raises(ValueError):
            PackedDocumentMask(doc_lens=(3, 0))

    def test_sparser_than_causal(self):
        mask = PackedDocumentMask(doc_lens=(8, 8, 8, 8))
        assert mask.sparsity_vs_causal(32) < 0.4


class TestPrefixLMMask:
    def test_prefix_is_bidirectional(self):
        mask = PrefixLMMask(prefix=4)
        dense = mask.dense(8)
        assert dense[0, 3], "prefix rows see the whole prefix"
        assert not dense[0, 4], "prefix rows do not see the suffix"
        assert dense[6, 0] and dense[6, 6] and not dense[6, 7]

    def test_zero_prefix_is_causal(self):
        mask = PrefixLMMask(prefix=0)
        assert np.array_equal(mask.dense(12),
                              make_mask("causal").dense(12))

    def test_prefix_longer_than_sequence(self):
        mask = PrefixLMMask(prefix=100)
        dense = mask.dense(6)
        assert dense.all(), "everything inside the prefix is bidirectional"

    def test_invalid(self):
        with pytest.raises(ValueError):
            PrefixLMMask(prefix=-1)


@pytest.mark.parametrize(
    "mask",
    [
        PackedDocumentMask(doc_lens=(30, 25, 25)),
        PrefixLMMask(prefix=24),
    ],
    ids=lambda m: m.name,
)
def test_dcp_numerics_on_extended_masks(mask):
    """Full plan/execute/verify on the new masks."""
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    batch = BatchSpec.build([80, 48], mask)
    block_set = generate_blocks(batch, attention, block_size=16)
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    planner = DCPPlanner(cluster, attention,
                         DCPConfig(block_size=16, restarts=1))
    plan = planner.plan(block_set)
    executor = SimExecutor(plan)
    inputs = BatchInputs.random(block_set, seed=4)
    executor.load_inputs(inputs)
    executor.run()
    for out, ref in zip(executor.gather_outputs(),
                        reference_batch_outputs(block_set, inputs)):
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)


def test_factory_knows_extended_masks():
    assert make_mask("packed_documents", doc_lens=(4, 4)).name == (
        "packed_documents"
    )
    assert make_mask("prefix_lm", prefix=8).prefix == 8
