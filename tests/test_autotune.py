"""Tests for the block-size autotuner (repro.core.autotune)."""

import pytest

from repro.blocks import AttentionSpec, BatchSpec
from repro.core import DCPConfig, autotune_block_size
from repro.core.autotune import BlockSizeScore
from repro.masks import CausalMask
from repro.sim import ClusterSpec

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def _batches(count=3):
    return [
        BatchSpec.build([512 + 128 * i, 256], CausalMask())
        for i in range(count)
    ]


class TestAutotune:
    def test_returns_a_candidate(self):
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(64, 128, 256),
            probe_batches=1,
        )
        assert result.best in (64, 128, 256)
        assert len(result.scores) == 3

    def test_scores_cover_all_candidates(self):
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(128, 256),
            probe_batches=1,
        )
        assert {s.block_size for s in result.scores} == {128, 256}
        for score in result.scores:
            assert score.attention_s > 0
            assert score.planning_s > 0
            assert score.comm_bytes >= 0

    def test_best_minimizes_objective(self):
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(64, 128, 256),
            probe_batches=2,
        )
        best_objective = result.score_of(result.best).objective()
        for score in result.scores:
            assert best_objective <= score.objective() + 1e-12

    def test_planning_weight_can_flip_choice(self):
        """A huge planning penalty must select the cheapest planner."""
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(32, 256),
            probe_batches=1,
            planning_weight=1e6,
        )
        # Fine blocks plan much slower; the penalty forces coarse blocks.
        assert result.best == 256

    def test_duplicate_candidates_deduped(self):
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(128, 128, 256),
            probe_batches=1,
        )
        assert len(result.scores) == 2

    def test_table_marks_winner(self):
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(128, 256),
            probe_batches=1,
        )
        table = result.table()
        assert "*" in table
        assert str(result.best) in table

    def test_score_of_unknown_raises(self):
        result = autotune_block_size(
            _batches(),
            CLUSTER,
            attention=ATTENTION,
            config=DCPConfig(restarts=1),
            candidates=(128,),
            probe_batches=1,
        )
        with pytest.raises(KeyError):
            result.score_of(999)

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            autotune_block_size(
                _batches(), CLUSTER, attention=ATTENTION, candidates=()
            )

    def test_rejects_empty_batches(self):
        with pytest.raises(ValueError):
            autotune_block_size(
                [], CLUSTER, attention=ATTENTION, candidates=(128,)
            )

    def test_rejects_zero_probes(self):
        with pytest.raises(ValueError):
            autotune_block_size(
                _batches(),
                CLUSTER,
                attention=ATTENTION,
                candidates=(128,),
                probe_batches=0,
            )

    def test_objective_helper(self):
        score = BlockSizeScore(
            block_size=128, attention_s=1.0, planning_s=2.0, comm_bytes=0.0
        )
        assert score.objective() == pytest.approx(1.0)
        assert score.objective(0.5) == pytest.approx(2.0)
