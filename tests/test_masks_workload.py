"""Tests for tile-workload computation (vectorized vs brute force)."""

import numpy as np
import pytest

from repro.masks import (
    CausalBlockwiseMask,
    CausalMask,
    LambdaMask,
    SharedQuestionMask,
    block_bounds,
    mask_workload_matrix,
)


class TestBlockBounds:
    def test_exact_division(self):
        assert block_bounds(12, 4).tolist() == [0, 4, 8, 12]

    def test_ragged_tail(self):
        assert block_bounds(10, 4).tolist() == [0, 4, 8, 10]

    def test_block_larger_than_sequence(self):
        assert block_bounds(3, 100).tolist() == [0, 3]

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_bounds(0, 4)
        with pytest.raises(ValueError):
            block_bounds(4, 0)


@pytest.mark.parametrize(
    "mask",
    [
        CausalMask(),
        LambdaMask(sink=3, window=7),
        CausalBlockwiseMask(block=8, window_blocks=2, sink_blocks=1),
        SharedQuestionMask(num_answers=3, answer_fraction=0.2),
    ],
    ids=lambda m: m.describe(),
)
@pytest.mark.parametrize("seqlen,block", [(50, 7), (64, 16), (33, 33), (20, 1)])
def test_workload_matches_dense(mask, seqlen, block):
    workload = mask_workload_matrix(mask, seqlen, block)
    dense = mask.dense(seqlen)
    bounds = block_bounds(seqlen, block)
    for qi in range(len(bounds) - 1):
        for ki in range(len(bounds) - 1):
            expected = dense[
                bounds[qi] : bounds[qi + 1], bounds[ki] : bounds[ki + 1]
            ].sum()
            assert workload[qi, ki] == expected


def test_workload_total_equals_pairs():
    mask = LambdaMask(sink=2, window=5)
    assert mask_workload_matrix(mask, 77, 13).sum() == mask.total_pairs(77)


def test_causal_workload_upper_triangle_empty():
    workload = mask_workload_matrix(CausalMask(), 64, 8)
    assert not np.any(np.triu(workload, k=1))
