"""Tests for cluster spec, timing simulation and the e2e cost model."""

import numpy as np
import pytest

from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask
from repro.sim import (
    ClusterSpec,
    GPT_8B,
    ModelSpec,
    e2e_iteration_time,
    simulate_plan,
)
from repro.sim.timing import _intersection_length, _union_length


class TestClusterSpec:
    def test_device_machine_mapping(self):
        cluster = ClusterSpec(num_machines=3, devices_per_machine=4)
        assert cluster.num_devices == 12
        assert cluster.machine_of(0) == 0
        assert cluster.machine_of(11) == 2
        assert list(cluster.devices_of_machine(1)) == [4, 5, 6, 7]
        assert cluster.same_machine(4, 7)
        assert not cluster.same_machine(3, 4)

    def test_out_of_range_rejected(self):
        cluster = ClusterSpec(2, 2)
        with pytest.raises(ValueError):
            cluster.machine_of(4)
        with pytest.raises(ValueError):
            cluster.devices_of_machine(2)

    def test_link_time_hierarchy(self):
        cluster = ClusterSpec(2, 2)
        nbytes = 10 * 1024 * 1024
        assert cluster.link_time(0, 1, nbytes) < cluster.link_time(0, 2, nbytes)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            ClusterSpec(0, 4)


class TestIntervalHelpers:
    def test_union_merges_overlaps(self):
        assert _union_length([(0, 2), (1, 3), (5, 6)]) == pytest.approx(4.0)

    def test_union_empty(self):
        assert _union_length([]) == 0.0

    def test_intersection(self):
        a = [(0, 4), (6, 8)]
        b = [(2, 7)]
        assert _intersection_length(a, b) == pytest.approx(3.0)

    def test_intersection_disjoint(self):
        assert _intersection_length([(0, 1)], [(2, 3)]) == 0.0


def make_plan(seqlens=(96, 48), machines=2, devices=2, block=16):
    batch = BatchSpec.build(list(seqlens), CausalMask())
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    block_set = generate_blocks(batch, spec, block_size=block)
    cluster = ClusterSpec(machines, devices)
    planner = DCPPlanner(cluster, spec, DCPConfig(block_size=block, restarts=1))
    return planner.plan(block_set), cluster


class TestTiming:
    def test_deterministic(self):
        plan, _ = make_plan()
        a = simulate_plan(plan)
        b = simulate_plan(plan)
        assert a.iteration_time == b.iteration_time

    def test_backward_slower_than_forward(self):
        plan, _ = make_plan()
        fw = simulate_plan(plan, backward=False)
        bw = simulate_plan(plan, backward=True)
        assert bw.iteration_time > fw.iteration_time

    def test_breakdown_sums_to_total(self):
        plan, _ = make_plan()
        breakdown = simulate_plan(plan).breakdown()
        parts = (
            breakdown["others"] + breakdown["non_ovlp_attn"]
            + breakdown["overlap"] + breakdown["non_ovlp_comm"]
        )
        assert parts == pytest.approx(breakdown["total"], rel=1e-6)

    def test_overlap_bounded(self):
        plan, _ = make_plan(seqlens=(128, 96, 64))
        timing = simulate_plan(plan)
        for device in timing.devices.values():
            assert device.overlap_time <= device.compute_time + 1e-12
            assert device.overlap_time <= device.comm_time + 1e-12

    def test_slower_network_increases_time(self):
        plan, cluster = make_plan(seqlens=(128, 96))
        fast = simulate_plan(plan, cluster)
        slow_cluster = ClusterSpec(
            cluster.num_machines, cluster.devices_per_machine,
            inter_bandwidth=cluster.inter_bandwidth / 100,
            intra_bandwidth=cluster.intra_bandwidth / 100,
        )
        slow = simulate_plan(plan, slow_cluster)
        assert slow.iteration_time >= fast.iteration_time


class TestModelCost:
    def test_parameter_count_of_8b_model(self):
        params = GPT_8B.parameter_count()
        assert 6e9 < params < 9e9  # Llama3-8B-shaped

    def test_e2e_composition(self):
        plan, cluster = make_plan()
        result = e2e_iteration_time(plan, cluster=cluster)
        expected = (
            result.num_layers
            * (
                result.attention_forward.iteration_time
                + result.attention_backward.iteration_time
            )
            + result.others_time
            + result.grad_sync_time
        )
        assert result.iteration_time == pytest.approx(expected)

    def test_breakdown_keys(self):
        plan, cluster = make_plan()
        breakdown = e2e_iteration_time(plan, cluster=cluster).breakdown()
        assert set(breakdown) == {
            "others", "non_ovlp_attn", "overlap", "non_ovlp_comm", "total",
        }

    def test_more_tokens_cost_more(self):
        small = ModelSpec(num_layers=2)
        plan, cluster = make_plan()
        few = e2e_iteration_time(
            plan, model=small, cluster=cluster,
            tokens_per_device=np.array([1000] * 4),
        )
        many = e2e_iteration_time(
            plan, model=small, cluster=cluster,
            tokens_per_device=np.array([100000] * 4),
        )
        assert many.others_time > few.others_time
