"""Tests for plan validation, memory accounting and group-wise scaling."""

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    generate_blocks,
    make_mask,
)
from repro.baselines import RingAttentionPlanner, TransformerEnginePlanner
from repro.core import plan_with_groups, split_batch_by_workload
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.scheduling import PlanValidationError, validate_plan
from repro.scheduling.instructions import CommWait
from repro.sim import plan_memory

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def dcp_plan(seqlens=(96, 64, 32), mask=None, seed=0):
    batch = BatchSpec.build(list(seqlens), mask or make_mask("causal"))
    block_set = generate_blocks(batch, ATTENTION, block_size=16)
    planner = DCPPlanner(CLUSTER, ATTENTION,
                         DCPConfig(block_size=16, restarts=1, seed=seed))
    return planner.plan(block_set), block_set


class TestValidatePlan:
    def test_dcp_plans_validate(self):
        for seed in range(3):
            plan, _ = dcp_plan(seed=seed)
            validate_plan(plan)

    def test_baseline_plans_validate(self):
        batch = BatchSpec.build([96, 64], make_mask("causal"))
        block_set = generate_blocks(batch, ATTENTION, block_size=16)
        for planner in (RingAttentionPlanner(), RingAttentionPlanner(True),
                        TransformerEnginePlanner()):
            validate_plan(planner.plan(block_set, CLUSTER))

    def test_detects_wait_without_launch(self):
        plan, _ = dcp_plan()
        plan.device_plans[0].instructions.insert(0, CommWait(op_id=424242))
        with pytest.raises(PlanValidationError, match="unlaunched"):
            validate_plan(plan)

    def test_detects_unmatched_send(self):
        plan, _ = dcp_plan(seqlens=(128, 64, 48))
        # Drop one device's instructions entirely: its sends/recvs vanish
        # while peers still expect them.
        victim = None
        for device, device_plan in plan.device_plans.items():
            if any(ins.kind == "comm_launch"
                   for ins in device_plan.instructions):
                victim = device
                break
        assert victim is not None
        plan.device_plans[victim].instructions = [
            ins for ins in plan.device_plans[victim].instructions
            if ins.kind not in ("comm_launch", "comm_wait")
        ]
        with pytest.raises(PlanValidationError, match="unmatched"):
            validate_plan(plan)


class TestPlanMemory:
    def test_memory_positive_and_tracks_tokens(self):
        plan, block_set = dcp_plan()
        report = plan_memory(plan)
        assert report.max_bytes > 0
        assert report.total_bytes >= report.max_bytes
        # Total local Q/KV/O must be at least the batch's footprint.
        assert report.total_bytes >= block_set.total_bytes

    def test_memory_roughly_balanced(self):
        plan, _ = dcp_plan(seqlens=(256, 128, 64, 32))
        report = plan_memory(plan)
        assert report.imbalance() < 1.0

    def test_empty_report(self):
        from repro.sim.memory import MemoryReport

        assert MemoryReport({}).max_bytes == 0
        assert MemoryReport({}).imbalance() == 0.0


class TestGroups:
    def test_split_balances_workload(self):
        batch = BatchSpec.build([256, 128, 128, 64, 64, 64],
                                make_mask("causal"))
        groups = split_batch_by_workload(batch, 2)
        loads = [
            sum(s.mask.total_pairs(s.seqlen) for s in g.sequences)
            for g in groups
        ]
        assert max(loads) <= 1.5 * min(loads)

    def test_more_groups_than_sequences(self):
        batch = BatchSpec.build([64], make_mask("causal"))
        groups = split_batch_by_workload(batch, 3)
        assert sum(g is not None for g in groups) == 1

    def test_invalid_group_count(self):
        batch = BatchSpec.build([64], make_mask("causal"))
        with pytest.raises(ValueError):
            split_batch_by_workload(batch, 0)

    def test_plan_with_groups_executes(self):
        batch = BatchSpec.build([96, 64, 64, 48, 32], make_mask("causal"))
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        grouped = plan_with_groups(
            batch, cluster, 2, ATTENTION, DCPConfig(block_size=16, restarts=1)
        )
        assert grouped.num_groups == 2
        assert sum(grouped.tokens_per_group()) == batch.total_tokens
        for group_batch, plan in zip(grouped.group_batches,
                                     grouped.group_plans):
            if plan is None:
                continue
            validate_plan(plan)
            executor = SimExecutor(plan)
            inputs = BatchInputs.random(plan.block_set, seed=1)
            executor.load_inputs(inputs)
            executor.run()
            refs = reference_batch_outputs(plan.block_set, inputs)
            for out, ref in zip(executor.gather_outputs(), refs):
                np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

    def test_uneven_machines_rejected(self):
        batch = BatchSpec.build([64], make_mask("causal"))
        cluster = ClusterSpec(num_machines=3, devices_per_machine=2)
        with pytest.raises(ValueError):
            plan_with_groups(batch, cluster, 2, ATTENTION)
