"""Tests for the distributed attention backward pass."""

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    generate_blocks,
    make_mask,
)
from repro.model.attention import attention_forward_backward
from repro.placement import PlacementConfig, place_blocks
from repro.runtime import (
    BatchInputs,
    finalize,
    finalize_with_lse,
    run_forward_backward,
    tile_attention,
    tile_backward,
)
from repro.scheduling import (
    build_schedule,
    serialize_backward_schedule,
    validate_plan,
)
from repro.sim import simulate_plan

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)


def make_schedule(seqlens, mask, machines=2, devices=2, num_divisions=4,
                  seed=0, block_size=16):
    batch = BatchSpec.build(list(seqlens), mask)
    block_set = generate_blocks(batch, ATTENTION, block_size=block_size)
    cluster = ClusterSpec(num_machines=machines, devices_per_machine=devices)
    placement = place_blocks(block_set, cluster,
                             PlacementConfig(seed=seed, restarts=1))
    return build_schedule(block_set, placement, num_divisions)


class TestTileBackward:
    def test_matches_numerical_gradients(self):
        rng = np.random.default_rng(0)
        heads, q_rows, k_rows, dim = 2, 6, 7, 4
        q = rng.standard_normal((heads, q_rows, dim)).astype(np.float32)
        k = rng.standard_normal((k_rows, dim)).astype(np.float32)
        v = rng.standard_normal((k_rows, dim)).astype(np.float32)
        mask = rng.random((q_rows, k_rows)) < 0.7
        mask[:, 0] = True
        scale = 0.5
        upstream = rng.standard_normal((heads, q_rows, dim)).astype(np.float32)

        def loss():
            out = finalize(tile_attention(q, k, v, mask, scale))
            return float((out * upstream).sum())

        out, lse = finalize_with_lse(tile_attention(q, k, v, mask, scale))
        delta = (upstream * out).sum(axis=2)
        dq, dk, dv = tile_backward(q, k, v, upstream, lse, delta, mask, scale)

        eps = 1e-3
        for array, grad in ((q, dq), (k, dk), (v, dv)):
            flat = array.reshape(-1)
            for index in np.random.default_rng(1).integers(0, flat.size, 6):
                orig = flat[index]
                flat[index] = orig + eps
                up = loss()
                flat[index] = orig - eps
                down = loss()
                flat[index] = orig
                numeric = (up - down) / (2 * eps)
                analytic = grad.reshape(-1)[index]
                assert abs(numeric - analytic) < 3e-3 * max(1, abs(numeric))

    def test_fully_masked_rows_zero_gradient(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((1, 4, 4)).astype(np.float32)
        k = rng.standard_normal((4, 4)).astype(np.float32)
        v = rng.standard_normal((4, 4)).astype(np.float32)
        mask = np.zeros((4, 4), dtype=bool)
        upstream = rng.standard_normal((1, 4, 4)).astype(np.float32)
        lse = np.full((1, 4), -np.inf, dtype=np.float32)
        delta = np.zeros((1, 4), dtype=np.float32)
        dq, dk, dv = tile_backward(q, k, v, upstream, lse, delta, mask, 0.5)
        assert np.all(dq == 0) and np.all(dk == 0) and np.all(dv == 0)


@pytest.mark.parametrize(
    "mask",
    [
        make_mask("causal"),
        make_mask("lambda", sink=4, window=12),
        make_mask("shared_question", num_answers=2, answer_fraction=0.3),
        make_mask("causal_blockwise", block=8, window_blocks=2,
                  sink_blocks=1),
    ],
    ids=lambda m: m.name,
)
def test_distributed_backward_matches_dense(mask):
    schedule = make_schedule((80, 48, 20), mask)
    inputs = BatchInputs.random(schedule.block_set, seed=7)
    rng = np.random.default_rng(8)
    grad_outputs = [
        rng.standard_normal(q.shape).astype(np.float32) for q in inputs.q
    ]
    outputs, grads, _, _ = run_forward_backward(schedule, inputs,
                                                grad_outputs)
    for seq in range(len(inputs.q)):
        _, backward = attention_forward_backward(
            inputs.q[seq], inputs.k[seq], inputs.v[seq], mask
        )
        dq_ref, dk_ref, dv_ref = backward(grad_outputs[seq])
        np.testing.assert_allclose(grads.dq[seq], dq_ref, rtol=3e-3,
                                   atol=3e-4)
        np.testing.assert_allclose(grads.dk[seq], dk_ref, rtol=3e-3,
                                   atol=3e-4)
        np.testing.assert_allclose(grads.dv[seq], dv_ref, rtol=3e-3,
                                   atol=3e-4)


@pytest.mark.parametrize("num_divisions", [1, 2, 4])
def test_distributed_backward_any_division_count(num_divisions):
    schedule = make_schedule((64, 32), make_mask("causal"),
                             num_divisions=num_divisions)
    inputs = BatchInputs.random(schedule.block_set, seed=1)
    grad_outputs = [np.ones_like(q) for q in inputs.q]
    _, grads, _, _ = run_forward_backward(schedule, inputs, grad_outputs)
    for seq in range(len(inputs.q)):
        _, backward = attention_forward_backward(
            inputs.q[seq], inputs.k[seq], inputs.v[seq], make_mask("causal")
        )
        dq_ref, _, _ = backward(grad_outputs[seq])
        np.testing.assert_allclose(grads.dq[seq], dq_ref, rtol=3e-3,
                                   atol=3e-4)


class TestBackwardPlan:
    def test_plan_validates(self):
        schedule = make_schedule((96, 64), make_mask("causal"))
        plan = serialize_backward_schedule(schedule)
        validate_plan(plan)

    def test_backward_traffic_exceeds_forward(self):
        """Backward moves KV in *and* gradients out."""
        schedule = make_schedule((128, 64, 32), make_mask("causal"), seed=3)
        inputs = BatchInputs.random(schedule.block_set, seed=1)
        grad_outputs = [np.ones_like(q) for q in inputs.q]
        _, _, forward, backward = run_forward_backward(
            schedule, inputs, grad_outputs
        )
        if forward.fabric.total_bytes > 0:
            assert backward.fabric.total_bytes > forward.fabric.total_bytes

    def test_backward_plan_is_timeable(self):
        schedule = make_schedule((96, 64), make_mask("causal"))
        plan = serialize_backward_schedule(schedule)
        timing = simulate_plan(plan)
        forward_timing = simulate_plan(
            __import__(
                "repro.scheduling", fromlist=["serialize_schedule"]
            ).serialize_schedule(schedule)
        )
        # Executed backward costs more than forward (2.5x tile FLOPs).
        assert timing.iteration_time > forward_timing.iteration_time
