"""Cross-module integration tests: the full pipeline, all planners."""

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    generate_blocks,
    make_mask,
)
from repro.baselines import RingAttentionPlanner, TransformerEnginePlanner
from repro.placement import build_block_hypergraph, zigzag_labels
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import e2e_iteration_time, simulate_plan

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)

SCENARIOS = [
    # (seqlens, mask, machines, devices_per_machine)
    ((128, 64, 32, 16), make_mask("causal"), 2, 2),
    ((100, 70, 25), make_mask("lambda", sink=8, window=16), 2, 2),
    ((96, 96), make_mask("shared_question", num_answers=2,
                         answer_fraction=0.3), 1, 4),
    ((160, 40, 24, 16, 8), make_mask("causal_blockwise", block=16,
                                     window_blocks=2, sink_blocks=1), 4, 1),
    ((64,), make_mask("causal"), 2, 2),  # single sequence
]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: str(s[0]))
def test_all_planners_agree_with_reference(scenario):
    seqlens, mask, machines, devices = scenario
    batch = BatchSpec.build(list(seqlens), mask)
    block_set = generate_blocks(batch, ATTENTION, block_size=16)
    cluster = ClusterSpec(num_machines=machines, devices_per_machine=devices)
    inputs = BatchInputs.random(block_set, seed=1)
    references = reference_batch_outputs(block_set, inputs)

    planners = [
        RingAttentionPlanner(zigzag=False),
        RingAttentionPlanner(zigzag=True),
        TransformerEnginePlanner(),
        DCPPlanner(cluster, ATTENTION, DCPConfig(block_size=16, restarts=1)),
    ]
    for planner in planners:
        plan = (
            planner.plan(block_set)
            if isinstance(planner, DCPPlanner)
            else planner.plan(block_set, cluster)
        )
        executor = SimExecutor(plan)
        executor.load_inputs(inputs)
        executor.run()
        outputs = executor.gather_outputs()
        for out, ref in zip(outputs, references):
            np.testing.assert_allclose(
                out, ref, rtol=2e-4, atol=2e-5,
                err_msg=f"{getattr(planner, 'name', 'dcp')} diverged",
            )


def test_dcp_communicates_no_more_than_static_cp():
    """The warm-start guarantee: DCP <= zigzag static CP in volume."""
    mask = make_mask("causal")
    for seed in range(3):
        rng = np.random.default_rng(seed)
        seqlens = rng.integers(16, 256, size=rng.integers(2, 8)).tolist()
        batch = BatchSpec.build(seqlens, mask)
        block_set = generate_blocks(batch, ATTENTION, block_size=16)
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        planner = DCPPlanner(cluster, ATTENTION,
                             DCPConfig(block_size=16, restarts=1, seed=seed))
        planner.plan(block_set)
        dcp_bytes = planner.last_placement.comm_report().total_bytes
        bhg = build_block_hypergraph(block_set)
        zz = zigzag_labels(bhg, cluster.num_devices)
        zz_bytes = bhg.graph.connectivity_cost(zz, cluster.num_devices)
        assert dcp_bytes <= zz_bytes


def test_sparse_mask_reduces_dcp_communication():
    """Fig. 19's driving effect: sparsity shrinks communication."""
    seqlens = [256, 128]
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    volumes = {}
    for name, mask in [
        ("causal", make_mask("causal")),
        ("lambda", make_mask("lambda", sink=4, window=16)),
    ]:
        batch = BatchSpec.build(seqlens, mask)
        block_set = generate_blocks(batch, ATTENTION, block_size=16)
        planner = DCPPlanner(cluster, ATTENTION,
                             DCPConfig(block_size=16, restarts=1))
        planner.plan(block_set)
        volumes[name] = planner.last_placement.comm_report().total_bytes
    assert volumes["lambda"] <= volumes["causal"]


def test_end_to_end_timing_pipeline():
    """Plan -> simulate -> e2e composition runs for DCP and the baseline."""
    batch = BatchSpec.build([128, 96, 64], make_mask("causal"))
    block_set = generate_blocks(batch, ATTENTION, block_size=16)
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    dcp = DCPPlanner(cluster, ATTENTION, DCPConfig(block_size=16, restarts=1))
    for plan in (
        dcp.plan(block_set),
        TransformerEnginePlanner().plan(block_set, cluster),
    ):
        timing = simulate_plan(plan)
        assert timing.iteration_time > 0
        e2e = e2e_iteration_time(plan, cluster=cluster)
        assert e2e.iteration_time > timing.iteration_time


def test_executor_is_deterministic():
    batch = BatchSpec.build([96, 48], make_mask("causal"))
    block_set = generate_blocks(batch, ATTENTION, block_size=16)
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    planner = DCPPlanner(cluster, ATTENTION,
                         DCPConfig(block_size=16, restarts=1))
    plan = planner.plan(block_set)
    results = []
    for _ in range(2):
        executor = SimExecutor(plan)
        executor.load_inputs(BatchInputs.random(block_set, seed=5))
        executor.run()
        results.append(executor.gather_outputs())
    for a, b in zip(*results):
        np.testing.assert_array_equal(a, b)
