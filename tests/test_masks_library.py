"""Tests for the concrete mask library (paper Fig. 6)."""

import numpy as np
import pytest

from repro.masks import (
    CausalBlockwiseMask,
    CausalMask,
    FullMask,
    LambdaMask,
    SharedQuestionMask,
    make_mask,
)

ALL_MASKS = [
    CausalMask(),
    FullMask(),
    LambdaMask(sink=4, window=8),
    LambdaMask(sink=0, window=3),
    CausalBlockwiseMask(block=8, window_blocks=2, sink_blocks=1),
    CausalBlockwiseMask(block=4, window_blocks=1, sink_blocks=0),
    SharedQuestionMask(num_answers=4, answer_fraction=0.2),
    SharedQuestionMask(num_answers=2, answer_fraction=0.3),
]


@pytest.mark.parametrize("mask", ALL_MASKS, ids=lambda m: m.describe())
@pytest.mark.parametrize("seqlen", [1, 2, 7, 33, 64, 100])
def test_ranges_are_valid(mask, seqlen):
    ranges = mask.ranges(seqlen)
    ranges.validate()


@pytest.mark.parametrize("mask", ALL_MASKS, ids=lambda m: m.describe())
def test_every_token_attends_to_itself(mask):
    dense = mask.dense(50)
    assert np.all(np.diag(dense)), "self-attention must never be masked"


@pytest.mark.parametrize(
    "mask",
    [m for m in ALL_MASKS if not isinstance(m, FullMask)],
    ids=lambda m: m.describe(),
)
def test_masks_are_causal(mask):
    dense = mask.dense(40)
    assert not np.any(np.triu(dense, k=1)), "no token may attend forward"


class TestCausal:
    def test_dense_is_lower_triangular(self):
        dense = CausalMask().dense(9)
        expected = np.tril(np.ones((9, 9), dtype=bool))
        assert np.array_equal(dense, expected)


class TestLambda:
    def test_sink_and_window_structure(self):
        mask = LambdaMask(sink=2, window=3)
        dense = mask.dense(10)
        row = dense[8]
        # sink columns 0-1 plus window columns 6,7,8
        assert row.tolist() == [
            True, True, False, False, False, False, True, True, True, False,
        ]

    def test_short_sequence_fully_causal(self):
        mask = LambdaMask(sink=16, window=32)
        assert np.array_equal(mask.dense(10), CausalMask().dense(10))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LambdaMask(sink=-1, window=4)
        with pytest.raises(ValueError):
            LambdaMask(sink=1, window=0)

    def test_sparser_than_causal(self):
        assert LambdaMask(sink=4, window=8).sparsity_vs_causal(256) < 0.2


class TestCausalBlockwise:
    def test_last_block_attends_everything(self):
        mask = CausalBlockwiseMask(block=4, window_blocks=1, sink_blocks=1)
        dense = mask.dense(16)
        # Rows 12..15 are the "test sample": fully causal.
        for row in range(12, 16):
            assert dense[row, : row + 1].all()

    def test_middle_block_sees_sink_and_window(self):
        mask = CausalBlockwiseMask(block=4, window_blocks=1, sink_blocks=1)
        dense = mask.dense(20)
        # Row 9 is in block 2 (not last): sink block 0 + own block.
        assert dense[9].tolist() == [
            True, True, True, True,      # sink block
            False, False, False, False,  # block 1 outside window
            True, True, False, False,    # own block, causal
            False, False, False, False,
            False, False, False, False,
        ]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CausalBlockwiseMask(block=0)

    def test_large_sink_on_short_sequence(self):
        # Regression: the sink region may extend past short sequences.
        mask = CausalBlockwiseMask(block=4, window_blocks=2, sink_blocks=10)
        for seqlen in (3, 17, 41):
            ranges = mask.ranges(seqlen)
            ranges.validate()
            assert np.array_equal(mask.dense(seqlen)[:40, :40],
                                  CausalMask().dense(seqlen)[:40, :40])


class TestSharedQuestion:
    def test_answers_do_not_see_each_other(self):
        mask = SharedQuestionMask(num_answers=2, answer_fraction=0.25)
        dense = mask.dense(20)  # question 10, answers 5 + 5
        bounds = mask.segment_bounds(20)
        (q0, q1), (a0, a1), (b0, b1) = bounds
        assert not dense[b0:b1, a0:a1].any(), "answer 2 must not see answer 1"
        assert dense[a0:a1, q0:q1].all(), "answers see the whole question"

    def test_question_is_causal(self):
        mask = SharedQuestionMask(num_answers=2, answer_fraction=0.25)
        dense = mask.dense(20)
        q_len = mask.segment_bounds(20)[0][1]
        expected = np.tril(np.ones((q_len, q_len), dtype=bool))
        assert np.array_equal(dense[:q_len, :q_len], expected)

    def test_segment_bounds_cover_sequence(self):
        mask = SharedQuestionMask(num_answers=3, answer_fraction=0.2)
        bounds = mask.segment_bounds(100)
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        for (_, prev_end), (start, _) in zip(bounds, bounds[1:]):
            assert prev_end == start

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SharedQuestionMask(num_answers=0)
        with pytest.raises(ValueError):
            SharedQuestionMask(num_answers=5, answer_fraction=0.25)


class TestFactory:
    def test_make_mask_known(self):
        assert make_mask("causal").name == "causal"
        assert make_mask("lambda", sink=1, window=2).sink == 1

    def test_make_mask_unknown(self):
        with pytest.raises(ValueError, match="unknown mask"):
            make_mask("nope")
