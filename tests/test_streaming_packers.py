"""Property tests for the bounded-reordering-buffer streaming packers.

The contract (ISSUE 10 / ROADMAP scenario-matrix item):

* every policy is ``stream_pack``-equivalent at ``buffer=1`` — with a
  single pending sequence there is nothing to select;
* as the buffer grows, workload-balanced streaming lands within ε of
  the offline packer's workload balance, and length-grouped becomes
  *exactly* the offline packer at unbounded buffer;
* packing is a deterministic function of the stream;
* plans for streamed-packed batches are fingerprint-identical to
  synchronous planning (packers change *which* batches exist, never
  what a given batch's plan is).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner, make_mask
from repro.data import (
    STREAM_PACKERS,
    StreamPacker,
    pack_batches,
    pack_length_grouped,
    pack_workload_balanced,
    packing_stats,
    sample_lengths,
    stream_pack,
    stream_pack_length_grouped,
    stream_pack_workload_balanced,
    stream_packed_specs,
)
from repro.pipeline import StreamingOverlapPipeline, plan_fingerprint

BUDGET = 8192
STREAMING = [stream_pack_workload_balanced, stream_pack_length_grouped]


def seeded_streams():
    streams = []
    for seed in range(4):
        streams.append(
            list(sample_lengths("longdatacollections", 150, seed=seed))
        )
        streams.append(
            list(sample_lengths("longalign", 150, seed=seed + 10))
        )
    return streams


class TestBufferOneEquivalence:
    @pytest.mark.parametrize("streaming", STREAMING)
    def test_seeded_streams(self, streaming):
        for lengths in seeded_streams():
            base = list(stream_pack(lengths, BUDGET, 4096))
            assert list(streaming(lengths, BUDGET, 4096, buffer=1)) == base

    @pytest.mark.parametrize("name", sorted(STREAM_PACKERS))
    def test_registry_factories(self, name):
        lengths = seeded_streams()[0]
        packer = STREAM_PACKERS[name](BUDGET, 4096, buffer=1)
        assert packer.pack(lengths) == list(stream_pack(lengths, BUDGET, 4096))

    @given(
        lengths=st.lists(st.integers(min_value=-5, max_value=3000),
                         max_size=60),
        budget=st.integers(min_value=1, max_value=2048),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_stream(self, lengths, budget):
        base = list(stream_pack(lengths, budget))
        for streaming in STREAMING:
            assert list(streaming(lengths, budget, buffer=1)) == base


class TestOfflineLimit:
    def test_length_grouped_unbounded_is_offline(self):
        """Picking the global shortest from an unbounded buffer emits
        the sorted stream, i.e. exactly ``pack_length_grouped``."""
        for lengths in seeded_streams():
            assert (
                list(stream_pack_length_grouped(
                    lengths, BUDGET, 4096, buffer=None
                ))
                == pack_length_grouped(lengths, BUDGET, 4096)
            )

    def test_workload_balance_within_eps_of_offline(self):
        """Large-buffer streaming balance is within ε of offline LPT."""
        for lengths in seeded_streams():
            offline = packing_stats(
                pack_workload_balanced(lengths, BUDGET)
            )["workload_imbalance"]
            streamed = packing_stats(list(
                stream_pack_workload_balanced(lengths, BUDGET, buffer=256)
            ))["workload_imbalance"]
            assert streamed <= offline + 0.15

    def test_balance_improves_with_buffer(self):
        """A deep buffer never does meaningfully worse than buffer=1
        (sequential) on workload balance."""
        for lengths in seeded_streams():
            sequential = packing_stats(
                pack_batches(lengths, BUDGET)
            )["workload_imbalance"]
            deep = packing_stats(list(
                stream_pack_workload_balanced(lengths, BUDGET, buffer=64)
            ))["workload_imbalance"]
            assert deep <= sequential + 0.05


class TestInvariants:
    @pytest.mark.parametrize("streaming", STREAMING)
    @pytest.mark.parametrize("buffer", [1, 4, 16, None])
    def test_conservation_budget_caps(self, streaming, buffer):
        for lengths in seeded_streams()[:4]:
            batches = list(streaming(lengths, BUDGET, buffer=buffer))
            cleaned = [min(int(x), BUDGET) for x in lengths if int(x) >= 1]
            assert sum(sum(b) for b in batches) == sum(cleaned)
            assert sorted(x for b in batches for x in b) == sorted(cleaned)
            assert all(sum(b) <= BUDGET for b in batches)
            assert all(b for b in batches)

    @pytest.mark.parametrize("streaming", STREAMING)
    def test_rejects_bad_arguments(self, streaming):
        with pytest.raises(ValueError):
            list(streaming([10], 0))
        with pytest.raises(ValueError):
            list(streaming([10], BUDGET, buffer=0))
        with pytest.raises(ValueError):
            StreamPacker(object(), BUDGET, buffer=-1)

    @pytest.mark.parametrize("streaming", STREAMING)
    def test_deterministic(self, streaming):
        """Same stream, same parameters, same batches — repeatably."""
        lengths = list(sample_lengths("longdatacollections", 200, seed=7))
        first = list(streaming(lengths, BUDGET, 4096, buffer=16))
        for _ in range(3):
            assert list(streaming(lengths, BUDGET, 4096, buffer=16)) == first

    @pytest.mark.parametrize("streaming", STREAMING)
    def test_streams_lazily(self, streaming):
        """A bounded buffer reads at most buffer sequences past the
        last emitted batch — the packer works on unbounded sources."""
        pulled = []

        def source():
            for i in range(10_000):
                pulled.append(i)
                yield 600

        gen = streaming(source(), 2048, buffer=8)
        next(gen)
        assert len(pulled) < 30


class TestPipelineFingerprints:
    def test_workload_balanced_stream_matches_sync_plans(self):
        """Plans for a non-sequential streamed packing are byte-identical
        to planning the same batches synchronously."""
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        planner = DCPPlanner(
            cluster,
            AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16),
            DCPConfig(block_size=16, restarts=1),
        )
        lengths = list(sample_lengths("longdatacollections", 40, seed=3))
        packer = STREAM_PACKERS["workload_balanced"](256, 128, buffer=8)
        mask = make_mask("causal")
        specs = list(stream_packed_specs(lengths, mask, packer=packer))
        assert len(specs) >= 2
        sync = [planner.plan_batch(spec) for spec in specs]
        pipeline = StreamingOverlapPipeline(
            stream_packed_specs(lengths, mask, packer=packer),
            planner, lookahead=2, max_workers=2,
        )
        streamed = [plan for _, plan in pipeline]
        assert len(streamed) == len(sync)
        for fast, slow in zip(streamed, sync):
            assert plan_fingerprint(fast) == plan_fingerprint(slow)
