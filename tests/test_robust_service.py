"""Tests for failure handling in the plan service: typed errors,
degraded-mode serving with background upgrade, retrying KV clients,
and shm leak reclamation."""

import threading
import time

import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import batch_signature
from repro.core.kvstore import KVClient, KVStore
from repro.faults import FaultInjector
from repro.pipeline import plan_fingerprint
from repro.pipeline import shm as shm_mod
from repro.pipeline.shm import PlanRing, ShmUnavailable
from repro.service import (
    AdmissionController,
    PlanRejected,
    PlanService,
    degraded_plan,
    is_degraded,
)
from repro.service.errors import (
    KVOpDropped,
    PlannerUnavailable,
    PlanTimeout,
    ServiceError,
    ShardUnavailable,
    TransientServiceError,
    is_retryable,
)


def make_planner():
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(cluster, attention,
                      DCPConfig(block_size=16, restarts=1))


def batch(seqlens):
    return BatchSpec.build(list(seqlens), make_mask("causal"))


class GatedPlanner:
    """Planner that blocks on a gate, for saturating the worker pool."""

    def __init__(self, planner=None):
        self.planner = planner if planner is not None else make_planner()
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def cluster(self):
        return self.planner.cluster

    @property
    def attention(self):
        return self.planner.attention

    @property
    def config(self):
        return self.planner.config

    def plan_batch(self, spec):
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=30.0)
        return self.planner.plan_batch(spec)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- typed error hierarchy ----------------------------------------------------


class TestErrorHierarchy:
    def test_retryable_classification(self):
        assert is_retryable(PlanRejected("t", "tenant_queue_full"))
        assert is_retryable(ShardUnavailable("shard0"))
        assert is_retryable(KVOpDropped("shard:shard0", "put"))
        assert is_retryable(PlanTimeout(0.1))
        assert not is_retryable(PlannerUnavailable("pool dead"))
        assert not is_retryable(ValueError("not a service error"))

    def test_one_hierarchy(self):
        for exc in (PlanRejected("t", "r"), ShardUnavailable("s"),
                    KVOpDropped("s", "put"), PlanTimeout(0.1)):
            assert isinstance(exc, TransientServiceError)
            assert isinstance(exc, ServiceError)
            assert isinstance(exc, RuntimeError)
        assert isinstance(PlannerUnavailable("x"), ServiceError)

    def test_plan_rejected_carries_backoff_hint(self):
        exc = PlanRejected("tenant", "service_saturated",
                           retry_after_s=0.05)
        assert exc.tenant == "tenant"
        assert exc.reason == "service_saturated"
        assert exc.retry_after_s == pytest.approx(0.05)


# -- KVClient bounded retry ---------------------------------------------------


class FlakyStore:
    """Store whose next ``fails`` entry-ops raise a transient error."""

    def __init__(self, fails, exc=None):
        self.store = KVStore()
        self.remaining = fails
        self.exc = exc

    def _maybe_fail(self):
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc if self.exc is not None \
                else ShardUnavailable("flaky")

    def put_entry(self, key, value):
        self._maybe_fail()
        return self.store.put_entry(key, value)

    def get_entry(self, key, timeout=None):
        self._maybe_fail()
        return self.store.get_entry(key, timeout=timeout)

    def __getattr__(self, name):
        return getattr(self.store, name)


class TestKVClientRetry:
    def test_transient_errors_retried_with_backoff(self):
        slept = []
        client = KVClient(FlakyStore(fails=2), machine=1, max_retries=3,
                          backoff_base_s=0.01, backoff_jitter=0.0,
                          sleep=slept.append)
        assert client.put("k", b"v") == 1
        assert client.retries == 2
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]
        assert client.get("k") == b"v"

    def test_backoff_is_capped_and_jittered(self):
        class FixedRng:
            def random(self):
                return 1.0

        client = KVClient(KVStore(), machine=0, max_retries=8,
                          backoff_base_s=0.1, backoff_cap_s=0.2,
                          backoff_jitter=0.5, rng=FixedRng())
        # attempt 5: base * 2^5 = 3.2 -> capped 0.2 -> jitter halves it.
        assert client._backoff_s(5) == pytest.approx(0.1)

    def test_retries_exhausted_reraises(self):
        client = KVClient(FlakyStore(fails=5), machine=0, max_retries=2,
                          backoff_base_s=0.0, sleep=lambda _s: None)
        with pytest.raises(ShardUnavailable):
            client.put("k", b"v")
        assert client.retries == 2

    def test_non_retryable_fails_fast(self):
        slept = []
        client = KVClient(FlakyStore(fails=1, exc=ValueError("bug")),
                          machine=0, max_retries=5, sleep=slept.append)
        with pytest.raises(ValueError):
            client.put("k", b"v")
        assert slept == [] and client.retries == 0

    def test_default_is_fail_fast(self):
        client = KVClient(FlakyStore(fails=1), machine=0)
        with pytest.raises(ShardUnavailable):
            client.put("k", b"v")


# -- degraded plans -----------------------------------------------------------


class TestDegradedPlan:
    def test_tagged_valid_and_deterministic(self):
        planner = make_planner()
        spec = batch([64, 48])
        fallback = degraded_plan(planner, spec)
        assert is_degraded(fallback)
        assert fallback.meta["degraded_source"] == "zigzag"
        again = degraded_plan(planner, spec)
        assert plan_fingerprint(fallback) == plan_fingerprint(again)
        # Same executable geometry as the optimal plan, worse placement.
        optimal = planner.plan_batch(spec)
        assert not is_degraded(optimal)
        assert set(fallback.device_plans) == set(optimal.device_plans)


class TestDeadlineDegradedServing:
    def test_deadline_miss_serves_degraded_then_upgrades(self):
        planner = GatedPlanner()
        with PlanService(planner, workers=1, replication=2) as service:
            spec = batch([64, 48])
            served = service.fetch_plan("t", spec, deadline=0.3)
            assert is_degraded(served)
            stats = service.stats()
            assert stats["degraded_served"] == 1
            assert stats["pending_upgrades"] == 1
            # A second fetch hits the degraded cache entry immediately.
            assert is_degraded(service.fetch_plan("t", spec, deadline=0.3))
            planner.gate.set()  # let the queued demand dispatch finish
            signature = batch_signature(spec)
            assert wait_until(
                lambda: not is_degraded(service.cache.peek(signature))
            )
            upgraded = service.fetch_plan("t", spec, deadline=0.3)
            assert not is_degraded(upgraded)
            assert plan_fingerprint(upgraded) == \
                plan_fingerprint(make_planner().plan_batch(spec))
            stats = service.stats()
            assert stats["plan_upgrades"] == 1
            assert stats["pending_upgrades"] == 0

    def test_shed_dispatch_degrades_and_background_upgrades(self):
        planner = GatedPlanner()
        admission = AdmissionController(max_queued_per_tenant=1,
                                        max_inflight_per_tenant=1)
        with PlanService(planner, workers=1,
                         admission=admission) as service:
            filler = batch([32, 32])
            hot = batch([64, 48])
            # Saturate: one job in flight on the only worker, one queued.
            worker = threading.Thread(
                target=lambda: service.fetch_plan("t", filler, timeout=30.0)
            )
            worker.start()
            assert wait_until(lambda: planner.calls == 1)
            service.scheduler.submit("t", lambda: None)  # fills the queue
            start = time.monotonic()
            served = service.fetch_plan("t", hot, deadline=5.0)
            # Shed dispatch degrades immediately, not after the deadline.
            assert time.monotonic() - start < 2.0
            assert is_degraded(served)
            planner.gate.set()
            worker.join(timeout=30.0)
            signature = batch_signature(hot)
            assert wait_until(
                lambda: not is_degraded(service.cache.peek(signature))
            )
            assert service.stats()["plan_upgrades"] == 1

    def test_waiters_behind_reservation_get_degraded_too(self):
        planner = GatedPlanner()
        with PlanService(planner, workers=1) as service:
            spec = batch([64, 48])
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(
                        service.fetch_plan("t", spec, deadline=0.5)
                    )
                )
                for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            planner.gate.set()
            assert len(results) == 3
            assert all(is_degraded(plan) for plan in results)
            # Exactly one degraded synthesis was published; the others
            # joined it (reservation waiters) or hit the cached entry.
            assert service.stats()["requests"] == 3

    def test_fast_path_with_deadline_stays_optimal(self):
        with PlanService(make_planner(), workers=2,
                         replication=2) as service:
            spec = batch([64, 48])
            plan = service.fetch_plan("t", spec, deadline=30.0)
            assert not is_degraded(plan)
            assert service.stats()["degraded_served"] == 0

    def test_timeout_without_deadline_raises_typed(self):
        planner = GatedPlanner()
        service = PlanService(planner, workers=1)
        try:
            with pytest.raises(PlanTimeout) as excinfo:
                service.fetch_plan("t", batch([64, 48]), timeout=0.1)
            assert is_retryable(excinfo.value)
        finally:
            planner.gate.set()
            service.close()


class TestWorkerRobustness:
    def test_worker_survives_poison_job(self):
        class PoisonedPlanner:
            def __init__(self):
                self.planner = make_planner()
                self.cluster = self.planner.cluster
                self.attention = self.planner.attention
                self.config = self.planner.config

            def plan_batch(self, spec):
                if len(spec.sequences) == 1:
                    raise RuntimeError("poison batch")
                return self.planner.plan_batch(spec)

        with PlanService(PoisonedPlanner(), workers=1) as service:
            with pytest.raises(RuntimeError, match="poison"):
                service.fetch_plan("t", batch([64]), timeout=30.0)
            # The single worker survived and keeps serving other batches.
            plan = service.fetch_plan("t", batch([64, 48]), timeout=30.0)
            assert not is_degraded(plan)
            assert service.stats()["worker_job_errors"] == 1

    def test_store_outage_does_not_fail_the_fetch(self):
        injector = FaultInjector()
        with PlanService(make_planner(), workers=1, shards=2,
                         fault_injector=injector) as service:
            injector.kill("shard:shard0")
            injector.kill("shard:shard1")
            plan = service.fetch_plan("t", batch([64, 48]), timeout=30.0)
            assert not is_degraded(plan)  # planned + cache-served
            assert service.stats()["store_put_failures"] == 1


# -- shm leak reclamation -----------------------------------------------------


class TestShmLeakReclaim:
    def _ring(self):
        try:
            return PlanRing.create(slots=2, slot_bytes=4096)
        except ShmUnavailable:
            pytest.skip("shared memory unavailable on this host")

    def test_leaked_map_reclaimed_after_view_release(self):
        ring = self._ring()
        slot = ring.reserve()
        assert ring.write(slot, b"payload")
        view = ring.read(slot)
        before = shm_mod.leaked_maps()
        ring.close()  # exported view still alive -> both segments leak
        leaked = shm_mod.leaked_maps() - before
        assert leaked > 0
        view.release()
        assert shm_mod.reclaim_leaked() == leaked
        assert shm_mod.leaked_maps() == before

    def test_next_ring_operation_reclaims(self):
        ring = self._ring()
        slot = ring.reserve()
        assert ring.write(slot, b"payload")
        view = ring.read(slot)
        before = shm_mod.leaked_maps()
        ring.close()
        assert shm_mod.leaked_maps() > before
        view.release()
        other = self._ring()
        try:
            other.reserve()  # ring traffic triggers deferred reclaim
            assert shm_mod.leaked_maps() == before
        finally:
            other.close()

    def test_unreleasable_view_stays_queued(self):
        ring = self._ring()
        slot = ring.reserve()
        assert ring.write(slot, b"payload")
        view = ring.read(slot)
        before = shm_mod.leaked_maps()
        ring.close()
        leaked = shm_mod.leaked_maps() - before
        assert shm_mod.reclaim_leaked() == 0  # view still alive
        assert shm_mod.leaked_maps() == before + leaked
        view.release()
        assert shm_mod.reclaim_leaked() == leaked
