"""Parity tests: vectorized planner hot path vs scalar references.

The CSR/structure-of-arrays rewrite of the planner must not change any
decision: these property tests prove, on randomized hypergraphs and
batches, that

* vectorized gain evaluation matches the scalar per-edge definition,
* ``greedy_refine``/``fm_refine``/``rebalance`` produce identical
  labels, cost and move counts to the scalar reference implementations
  under the same RNG seed,
* vectorized block generation emits exactly the multiset of
  computation blocks the scalar loop produced,

plus the planner-level satellites (non-mutating ``plan()``, plan-cache
stats, planning-stats counters).
"""

import numpy as np
import pytest

from repro.blocks import (
    AttentionSpec,
    BatchSpec,
    CompBlock,
    CompBlockArray,
    generate_blocks,
)
from repro.hypergraph import (
    BalanceConstraint,
    Hypergraph,
    RefinementState,
    ScalarRefinementState,
    fm_refine,
    greedy_refine,
    partition_hypergraph,
    rebalance,
    scalar_fm_refine,
    scalar_greedy_refine,
    scalar_rebalance,
)
from repro.masks import CausalMask, LambdaMask, SharedQuestionMask


def random_hypergraph(rng, num_vertices=60, num_edges=120):
    weights = np.stack(
        [rng.integers(1, 10, num_vertices), rng.integers(0, 6, num_vertices)],
        axis=1,
    )
    pins = [
        rng.choice(num_vertices, size=int(rng.integers(2, 6)), replace=False)
        for _ in range(num_edges)
    ]
    edge_weights = rng.integers(1, 30, num_edges)
    return Hypergraph(weights, pins, edge_weights)


class TestCsrStructure:
    def test_pin_part_counts_matches_naive(self):
        rng = np.random.default_rng(0)
        g = random_hypergraph(rng)
        k = 4
        labels = rng.integers(0, k, g.num_vertices)
        counts = g.pin_part_counts(labels, k)
        for edge_index, pin in enumerate(g.pins):
            parts, occur = np.unique(labels[pin], return_counts=True)
            naive = np.zeros(k, dtype=np.int64)
            naive[parts] = occur
            assert np.array_equal(counts[edge_index], naive)

    def test_connectivity_cost_matches_naive(self):
        rng = np.random.default_rng(1)
        g = random_hypergraph(rng)
        k = 3
        labels = rng.integers(0, k, g.num_vertices)
        naive = sum(
            int(g.edge_weights[e]) * (len(np.unique(labels[pin])) - 1)
            for e, pin in enumerate(g.pins)
            if len(pin)
        )
        assert g.connectivity_cost(labels, k) == naive

    def test_vertex_csr_matches_incidence(self):
        rng = np.random.default_rng(2)
        g = random_hypergraph(rng)
        incidence = g.incidence()
        for vertex in range(g.num_vertices):
            assert g.incident_edges(vertex).tolist() == incidence[vertex]

    def test_from_csr_roundtrip(self):
        rng = np.random.default_rng(3)
        g = random_hypergraph(rng)
        rebuilt = Hypergraph.from_csr(
            g.weights, g.edge_indptr, g.edge_pins, g.edge_weights
        )
        labels = rng.integers(0, 3, g.num_vertices)
        assert rebuilt.connectivity_cost(labels, 3) == g.connectivity_cost(
            labels, 3
        )


class TestGainParity:
    def test_gain_matches_scalar_definition(self):
        rng = np.random.default_rng(4)
        g = random_hypergraph(rng)
        k = 4
        labels = rng.integers(0, k, g.num_vertices)
        vec = RefinementState(g, labels, k)
        ref = ScalarRefinementState(g, labels, k)
        for vertex in range(g.num_vertices):
            for target in range(k):
                assert vec.gain(vertex, target) == ref.gain(vertex, target)

    def test_gain_vector_and_batch_match_scalar(self):
        rng = np.random.default_rng(5)
        g = random_hypergraph(rng)
        k = 3
        labels = rng.integers(0, k, g.num_vertices)
        vec = RefinementState(g, labels, k)
        ref = ScalarRefinementState(g, labels, k)
        some = rng.choice(g.num_vertices, size=17, replace=True)
        gains, adjacent = vec.batch_gains(some)
        for row, vertex in enumerate(some.tolist()):
            per_vertex = vec.gain_vector(vertex)
            for target in range(k):
                expected = ref.gain(vertex, target)
                assert per_vertex[target] == expected
                assert gains[row, target] == expected
            source = labels[vertex]
            assert not adjacent[row, source]

    def test_move_keeps_cost_consistent(self):
        rng = np.random.default_rng(6)
        g = random_hypergraph(rng)
        k = 3
        labels = rng.integers(0, k, g.num_vertices)
        state = RefinementState(g, labels, k)
        for vertex in range(0, g.num_vertices, 5):
            for target in range(k):
                if target == state.labels[vertex]:
                    continue
                before = state.cost()
                gain = state.gain(vertex, target)
                state.move(vertex, target)
                assert before - state.cost() == gain
                state.move(vertex, int(labels[vertex]))  # restore


class TestRefinementParity:
    @pytest.mark.parametrize("trial", range(12))
    def test_full_parity_on_random_graphs(self, trial):
        rng = np.random.default_rng(100 + trial)
        g = random_hypergraph(rng, 40 + 3 * trial, 90 + 5 * trial)
        k = 2 + trial % 4
        labels = rng.integers(0, k, g.num_vertices)
        caps = BalanceConstraint((0.2, 0.3)).caps(g, k)
        for vec_fn, ref_fn in [
            (greedy_refine, scalar_greedy_refine),
            (fm_refine, scalar_fm_refine),
            (rebalance, scalar_rebalance),
        ]:
            vec_state = RefinementState(g, labels.copy(), k)
            ref_state = ScalarRefinementState(g, labels.copy(), k)
            vec_out = vec_fn(vec_state, caps, np.random.default_rng(trial))
            ref_out = ref_fn(ref_state, caps, np.random.default_rng(trial))
            assert vec_out == ref_out
            assert np.array_equal(vec_state.labels, ref_state.labels)
            assert vec_state.cost() == ref_state.cost()
            assert np.array_equal(
                vec_state.part_weights, ref_state.part_weights
            )

    def test_chained_pipeline_parity(self):
        # greedy -> fm -> rebalance back to back, sharing one RNG like
        # the partition driver does.
        rng = np.random.default_rng(7)
        g = random_hypergraph(rng, 80, 160)
        k = 4
        labels = rng.integers(0, k, g.num_vertices)
        caps = BalanceConstraint((0.15, 0.25)).caps(g, k)
        vec_state = RefinementState(g, labels.copy(), k)
        ref_state = ScalarRefinementState(g, labels.copy(), k)
        vec_rng = np.random.default_rng(11)
        ref_rng = np.random.default_rng(11)
        rebalance(vec_state, caps, vec_rng)
        scalar_rebalance(ref_state, caps, ref_rng)
        greedy_refine(vec_state, caps, vec_rng)
        scalar_greedy_refine(ref_state, caps, ref_rng)
        fm_refine(vec_state, caps, vec_rng)
        scalar_fm_refine(ref_state, caps, ref_rng)
        assert np.array_equal(vec_state.labels, ref_state.labels)
        assert vec_state.cost() == ref_state.cost()

    def test_partition_cost_identical_across_runs(self):
        # End-to-end determinism of the multilevel driver stays intact.
        rng = np.random.default_rng(8)
        g = random_hypergraph(rng, 90, 200)
        a = partition_hypergraph(g, 4, seed=5)
        b = partition_hypergraph(g, 4, seed=5)
        assert a.cost == b.cost
        assert np.array_equal(a.labels, b.labels)


def scalar_generate_comp_blocks(batch, attention, block_size):
    """The original per-tile Python loop, kept as the test oracle."""
    from repro.masks import block_bounds, tile_workload_matrix

    comp_blocks = []
    for seq_index, seq in enumerate(batch.sequences):
        bounds = block_bounds(seq.seqlen, block_size)
        ranges = seq.mask.ranges(seq.seqlen)
        workload = tile_workload_matrix(ranges, bounds)
        q_idx, kv_idx = np.nonzero(workload)
        for qi, ki in zip(q_idx.tolist(), kv_idx.tolist()):
            pairs = int(workload[qi, ki])
            for head_group in range(attention.head_groups):
                comp_blocks.append(
                    CompBlock(
                        seq_index=seq_index,
                        head_group=head_group,
                        q_block=qi,
                        kv_block=ki,
                        pairs=pairs,
                    )
                )
    return comp_blocks


class TestGenerateBlocksParity:
    @pytest.mark.parametrize(
        "mask",
        [
            CausalMask(),
            LambdaMask(sink=2, window=12),
            SharedQuestionMask(num_answers=3, answer_fraction=0.25),
        ],
        ids=["causal", "lambda", "shared_question"],
    )
    def test_comp_block_multisets_identical(self, mask):
        batch = BatchSpec.build([100, 64, 17], mask)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        block_set = generate_blocks(batch, attention, block_size=16)
        expected = scalar_generate_comp_blocks(batch, attention, 16)
        # Exact order parity, which implies multiset parity.
        assert block_set.comp_blocks == expected
        assert sorted(block_set.comp_blocks) == sorted(expected)

    def test_array_and_object_views_agree(self):
        batch = BatchSpec.build([64, 32], CausalMask())
        block_set = generate_blocks(batch, AttentionSpec(), block_size=16)
        arr = block_set.comp_array
        assert len(arr) == len(block_set.comp_blocks)
        for index in (0, len(arr) // 2, len(arr) - 1):
            assert arr[index] == block_set.comp_blocks[index]
        round_trip = CompBlockArray.from_blocks(block_set.comp_blocks)
        assert np.array_equal(round_trip.pairs, arr.pairs)
        assert np.array_equal(round_trip.q_block, arr.q_block)

    def test_aggregates_match_object_sums(self):
        batch = BatchSpec.build([96, 48], LambdaMask(sink=1, window=24))
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        block_set = generate_blocks(batch, attention, block_size=16)
        assert block_set.total_pairs == sum(
            c.pairs for c in block_set.comp_blocks
        )
        assert block_set.total_flops == sum(
            block_set.comp_flops(c) for c in block_set.comp_blocks
        )
        assert block_set.total_bytes == sum(
            block_set.slice_bytes(ts) for ts in block_set.token_slices
        )


class TestPlannerSatellites:
    def _planner(self):
        from repro import ClusterSpec, DCPConfig, DCPPlanner

        cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        return DCPPlanner(
            cluster, attention, DCPConfig(block_size=16, restarts=1)
        )

    def test_plan_does_not_mutate_cluster(self):
        from repro import ClusterSpec

        planner = self._planner()
        original = planner.cluster
        other = ClusterSpec(num_machines=2, devices_per_machine=2)
        batch = BatchSpec.build([64], CausalMask())
        block_set = generate_blocks(
            batch, planner.attention, planner.config.block_size
        )
        plan = planner.plan(block_set, other)
        assert planner.cluster is original
        assert plan.cluster == other

    def test_planning_stats_counters_populated(self):
        planner = self._planner()
        batch = BatchSpec.build([96, 64], CausalMask())
        planner.plan_batch(batch)
        stats = planner.last_stats
        assert stats.num_vertices > 0
        assert stats.num_edges > 0
        assert stats.gain_evals > 0
        assert stats.total > 0
        as_dict = stats.as_dict()
        assert as_dict["num_vertices"] == stats.num_vertices
        assert as_dict["refine_moves"] == stats.refine_moves

    def test_plan_cache_stats(self):
        from repro.core import PlanCache

        cache = PlanCache(self._planner(), capacity=4)
        batch = BatchSpec.build([48, 32], CausalMask())
        first = cache.plan_batch(batch)
        assert first.meta["plan_cache"]["misses"] == 1
        second = cache.plan_batch(batch)
        assert second is first
        stats = second.meta["plan_cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1
        assert stats["capacity"] == 4


class TestScalarFastPath:
    """The small-graph scalar gain path mirrors the batched path exactly."""

    @pytest.mark.parametrize("trial", range(8))
    def test_batch_gains_modes_identical(self, trial):
        rng = np.random.default_rng(500 + trial)
        g = random_hypergraph(rng, 10 + 5 * trial, 20 + 10 * trial)
        k = 2 + trial % 4
        state = RefinementState(g, rng.integers(0, k, g.num_vertices), k)
        vertices = rng.choice(
            g.num_vertices, size=min(g.num_vertices, 3 + trial), replace=False
        )
        scalar_gains, scalar_adj = state.batch_gains(vertices, mode="scalar")
        batched_gains, batched_adj = state.batch_gains(vertices, mode="batched")
        assert np.array_equal(scalar_gains, batched_gains)
        assert np.array_equal(scalar_adj, batched_adj)
        assert scalar_gains.dtype == batched_gains.dtype

    def test_isolated_vertices_identical(self):
        # A vertex with no incident edges exercises the empty-slice path.
        weights = np.array([[1, 0], [2, 1], [3, 0]])
        g = Hypergraph(weights, [[0, 1]], np.array([5]))
        state = RefinementState(g, np.array([0, 1, 0]), 3)
        vertices = np.array([2, 0, 2])
        scalar = state.batch_gains(vertices, mode="scalar")
        batched = state.batch_gains(vertices, mode="batched")
        assert np.array_equal(scalar[0], batched[0])
        assert np.array_equal(scalar[1], batched[1])

    def test_small_graphs_auto_dispatch_to_scalar(self):
        from repro.hypergraph.refine import SMALL_GRAPH_VERTICES

        rng = np.random.default_rng(3)
        small = random_hypergraph(rng, 20, 40)
        state = RefinementState(small, rng.integers(0, 2, 20), 2)
        assert state._scalar_gains
        assert small.num_vertices <= SMALL_GRAPH_VERTICES
        big = random_hypergraph(rng, SMALL_GRAPH_VERTICES + 10, 80)
        state = RefinementState(
            big, rng.integers(0, 2, big.num_vertices), 2
        )
        assert not state._scalar_gains

    @pytest.mark.parametrize("trial", range(6))
    def test_fm_refine_identical_under_either_path(self, trial):
        """Full FM runs, one forced scalar and one forced batched, make
        identical move decisions — the heap sees identical gains."""
        rng = np.random.default_rng(700 + trial)
        g = random_hypergraph(rng, 24 + 4 * trial, 50 + 8 * trial)
        k = 2 + trial % 3
        labels = rng.integers(0, k, g.num_vertices)
        caps = BalanceConstraint((0.25, 0.35)).caps(g, k)
        scalar_state = RefinementState(g, labels.copy(), k)
        scalar_state._scalar_gains = True
        batched_state = RefinementState(g, labels.copy(), k)
        batched_state._scalar_gains = False
        scalar_moves = fm_refine(
            scalar_state, caps, np.random.default_rng(trial)
        )
        batched_moves = fm_refine(
            batched_state, caps, np.random.default_rng(trial)
        )
        assert scalar_moves == batched_moves
        assert np.array_equal(scalar_state.labels, batched_state.labels)
        assert scalar_state.cost() == batched_state.cost()
