"""Tests for the KV store and the distributed planner pool (§6.1)."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import AttentionSpec, BatchSpec
from repro.core import (
    DCPConfig,
    DCPPlanner,
    DistributedDataloader,
    KVClient,
    KVStore,
    PlannerPool,
    min_cores_to_hide_planning,
    simulate_planning_overlap,
)
from repro.masks import CausalMask
from repro.sim import ClusterSpec


# -- KVStore -----------------------------------------------------------------


class TestKVStore:
    def test_put_get_round_trip(self):
        store = KVStore()
        store.put("a", {"x": [1, 2, 3]})
        assert store.get("a") == {"x": [1, 2, 3]}

    def test_versions_increment(self):
        store = KVStore()
        assert store.put("k", 1) == 1
        assert store.put("k", 2) == 2

    def test_get_blocks_until_timeout(self):
        store = KVStore()
        with pytest.raises(KeyError):
            store.get("missing", timeout=0.01)

    def test_try_get_missing_is_none(self):
        store = KVStore()
        assert store.try_get("missing") is None

    def test_delete(self):
        store = KVStore()
        store.put("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert not store.contains("k")

    def test_values_are_snapshots(self):
        store = KVStore()
        value = [1, 2]
        store.put("k", value)
        value.append(3)
        assert store.get("k") == [1, 2]

    def test_keys_sorted(self):
        store = KVStore()
        store.put("b", 1)
        store.put("a", 2)
        assert store.keys() == ["a", "b"]

    def test_size_and_traffic(self):
        store = KVStore()
        store.put("k", np.zeros(100))
        assert store.size_bytes() > 0
        store.get("k")
        traffic = store.traffic
        assert traffic["in"] > 0
        assert traffic["out"] > 0

    def test_numpy_round_trip(self):
        store = KVStore()
        array = np.arange(12, dtype=np.float32).reshape(3, 4)
        store.put("arr", array)
        np.testing.assert_array_equal(store.get("arr"), array)

    def test_put_if_changed_skips_identical_payload(self):
        store = KVStore()
        version, changed = store.put_if_changed("k", [1, 2, 3])
        assert (version, changed) == (1, True)
        before = store.traffic["in"]
        version, changed = store.put_if_changed("k", [1, 2, 3])
        assert (version, changed) == (1, False)
        assert store.traffic["in"] == before  # no bytes moved
        version, changed = store.put_if_changed("k", [1, 2, 4])
        assert (version, changed) == (2, True)

    def test_get_unless_honours_version_cursor(self):
        store = KVStore()
        store.put("k", "payload")
        value, version, fetched = store.get_unless("k")
        assert (value, version, fetched) == ("payload", 1, True)
        before = store.traffic["out"]
        value, version, fetched = store.get_unless("k", version=1)
        assert (value, fetched) == (None, False)
        assert version == 1
        assert store.traffic["out"] == before  # cursor hit: free
        store.put("k", "fresh")
        value, version, fetched = store.get_unless("k", version=1)
        assert (value, version, fetched) == ("fresh", 2, True)

    def test_get_unless_times_out_like_get(self):
        store = KVStore()
        with pytest.raises(KeyError):
            store.get_unless("missing", timeout=0.01)


class TestKVClient:
    def test_local_client_free(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=0)
        client.put("k", [1] * 100)
        client.get("k")
        assert client.wire_bytes() == 0

    def test_remote_client_pays_wire(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        client.put("k", [1] * 100)
        assert client.bytes_sent > 0
        client.get("k")
        assert client.bytes_received > 0

    def test_conditional_ops_charge_only_moved_payloads(self):
        store = KVStore(host_machine=0)
        client = KVClient(store=store, machine=1)
        _version, changed = client.put_if_changed("k", [1] * 100)
        assert changed
        sent = client.bytes_sent
        _version, changed = client.put_if_changed("k", [1] * 100)
        assert not changed
        assert client.bytes_sent == sent
        _value, version, fetched = client.get_unless("k")
        assert fetched
        received = client.bytes_received
        value, _version, fetched = client.get_unless("k", version=version)
        assert not fetched and value is None
        assert client.bytes_received == received


# -- PlannerPool / DistributedDataloader --------------------------------------


def _planner():
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(cluster, spec, DCPConfig(block_size=32, restarts=1))


def _batches(count=3):
    return [
        BatchSpec.build([64 + 32 * i, 32], CausalMask()) for i in range(count)
    ]


class TestPlannerPool:
    def test_submit_and_fetch(self):
        store = KVStore()
        with PlannerPool(_planner(), store, num_machines=2) as pool:
            batch = _batches(1)[0]
            pool.submit(0, batch)
            plan = pool.fetch(0, timeout=30.0)
        assert plan.num_devices == 2
        assert store.contains("plan/0")

    def test_duplicate_submit_is_single_job(self):
        store = KVStore()
        with PlannerPool(_planner(), store) as pool:
            batch = _batches(1)[0]
            f1 = pool.submit(0, batch)
            f2 = pool.submit(0, batch)
            assert f1 is f2
            f1.result(timeout=30.0)

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            PlannerPool(_planner(), KVStore(), num_machines=0)

    def test_partial_republish_skips_unchanged_device_slices(self):
        """Re-publishing an identical plan (a re-plan that changed
        nothing for a device) writes no per-device bytes, and a
        consumer re-fetch presenting its version cursors moves only the
        skeleton."""
        store = KVStore()
        batch = _batches(1)[0]
        # Two machines so one consumer is remote from the store host —
        # the saved re-fetch bytes are NIC bytes, not local reads.
        cluster = ClusterSpec(num_machines=2, devices_per_machine=1)
        spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        planner = DCPPlanner(cluster, spec, DCPConfig(block_size=32,
                                                      restarts=1))
        with PlannerPool(planner, store, partial_plans=True) as pool:
            pool.submit(0, batch).result(timeout=30.0)
            plan, _wire, fetched = pool.device_pull(0)
            assert sorted(fetched) == sorted(plan.device_plans)
            written = pool.device_entries_written
            assert written == plan.num_devices
            assert pool.device_entries_unchanged == 0
            # Replace-resubmit the same batch: the fresh worker plans an
            # identical plan and republishes — every device entry is
            # byte-identical, so nothing is rewritten.
            pool.submit(0, batch, replace=True).result(timeout=30.0)
            assert pool.device_entries_written == written
            assert pool.device_entries_unchanged == plan.num_devices
            # Consumer re-fetch with cursors: unchanged slices are free.
            replan, _wire2, refetched = pool.device_pull(0, known=fetched)
            assert pool.refetch_saved_bytes > 0
            for device, (version, _payload) in refetched.items():
                assert version == fetched[device][0]  # nothing re-versioned
            from repro.pipeline import plan_fingerprint

            assert plan_fingerprint(replan) == plan_fingerprint(plan)

    def test_plans_survive_pickling(self):
        """Plans cross the store as pickles; instruction streams survive."""
        store = KVStore()
        with PlannerPool(_planner(), store) as pool:
            batch = _batches(1)[0]
            pool.submit(0, batch)
            fetched = pool.fetch(0, timeout=30.0)
        direct = _planner().plan_batch(batch)
        assert fetched.total_comm_bytes() == direct.total_comm_bytes()
        for device in range(fetched.num_devices):
            assert (
                len(fetched.plan_for(device).instructions)
                == len(direct.plan_for(device).instructions)
            )


class TestDistributedDataloader:
    def test_yields_every_batch_in_order(self):
        store = KVStore()
        batches = _batches(4)
        with PlannerPool(_planner(), store, num_machines=2) as pool:
            loader = DistributedDataloader(batches, pool, lookahead=2)
            plans = [plan for _, plan in loader]
        assert len(plans) == 4
        for batch, plan in zip(batches, plans):
            planned_tokens = sum(
                sum(ts.tokens for ts in dp.local_slices)
                for dp in plan.device_plans.values()
            )
            assert planned_tokens == batch.total_tokens

    def test_local_data_covers_devices(self):
        store = KVStore()
        with PlannerPool(_planner(), store) as pool:
            loader = DistributedDataloader(_batches(1), pool, lookahead=1)
            local_data, _ = next(iter(loader))
        assert set(local_data) == {0, 1}

    def test_rejects_negative_lookahead(self):
        with pytest.raises(ValueError):
            DistributedDataloader([], PlannerPool(_planner(), KVStore()), -1)


# -- analytic overlap model ---------------------------------------------------


class TestPlanningOverlap:
    def test_zero_plan_time_never_stalls(self):
        timeline = simulate_planning_overlap([0.0] * 5, [1.0] * 5)
        assert timeline.total_stall == 0.0
        assert timeline.planning_hidden()

    def test_cold_start_stall_only(self):
        timeline = simulate_planning_overlap(
            [0.5] * 5, [1.0] * 5, cores_per_machine=2
        )
        assert timeline.stalls[0] == pytest.approx(0.5)
        assert timeline.planning_hidden()

    def test_serial_slow_planning_stalls(self):
        timeline = simulate_planning_overlap(
            [2.0] * 6, [1.0] * 6, cores_per_machine=1, lookahead=2
        )
        assert not timeline.planning_hidden()
        assert timeline.total_stall > 0

    def test_paper_claim_ten_cores_hide_ten_seconds(self):
        """Fig. 18: 10 s planning hides under 1 s iterations with ~10 cores."""
        plan_times = [10.0] * 40
        exec_times = [1.0] * 40
        hidden = simulate_planning_overlap(
            plan_times, exec_times, cores_per_machine=12, lookahead=12
        )
        assert hidden.planning_hidden()
        starved = simulate_planning_overlap(
            plan_times, exec_times, cores_per_machine=5, lookahead=12
        )
        assert not starved.planning_hidden()

    def test_machines_multiply_capacity(self):
        plan_times = [4.0] * 20
        exec_times = [1.0] * 20
        one = simulate_planning_overlap(
            plan_times, exec_times, num_machines=1, cores_per_machine=2,
            lookahead=6,
        )
        four = simulate_planning_overlap(
            plan_times, exec_times, num_machines=4, cores_per_machine=2,
            lookahead=6,
        )
        assert four.total_stall <= one.total_stall

    def test_min_cores_matches_throughput_bound(self):
        cores = min_cores_to_hide_planning(
            [10.0] * 40, [1.0] * 40, lookahead=12
        )
        assert cores is not None
        assert 10 <= cores <= 12

    def test_min_cores_none_when_latency_bound(self):
        # With lookahead 0, a 10x plan time can never hide.
        assert (
            min_cores_to_hide_planning(
                [10.0] * 10, [1.0] * 10, lookahead=0, max_cores=8
            )
            is None
        )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            simulate_planning_overlap([1.0], [1.0, 2.0])

    def test_empty_timeline(self):
        timeline = simulate_planning_overlap([], [])
        assert timeline.total_time == 0.0
        assert timeline.stall_fraction == 0.0

    def test_stall_fraction_bounded(self):
        timeline = simulate_planning_overlap(
            [3.0] * 8, [1.0] * 8, cores_per_machine=1, lookahead=1
        )
        assert 0.0 < timeline.stall_fraction < 1.0

    @given(
        plan=st.floats(0.0, 5.0),
        execution=st.floats(0.1, 5.0),
        cores=st.integers(1, 8),
        lookahead=st.integers(0, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_execution_order_preserved(self, plan, execution, cores,
                                       lookahead):
        timeline = simulate_planning_overlap(
            [plan] * 10,
            [execution] * 10,
            cores_per_machine=cores,
            lookahead=lookahead,
        )
        for i in range(1, 10):
            assert timeline.exec_start[i] >= timeline.exec_end[i - 1] - 1e-9
            # A plan is always complete before its execution starts.
            assert timeline.plan_end[i] <= timeline.exec_start[i] + 1e-9


# -- bounded residency (max_bytes / TTL eviction) -----------------------------


class TestKVStoreEviction:
    def test_max_bytes_evicts_lru(self):
        store = KVStore(max_bytes=220)
        for key in ("a", "b", "c"):
            store.put(key, b"x" * 100)
        # a (the least recently used) was reclaimed to fit c.
        assert not store.contains("a")
        assert store.contains("b") and store.contains("c")
        assert store.size_bytes() <= 220
        assert store.eviction_stats == {"evictions": 1, "evicted_bytes": 100}

    def test_reads_refresh_recency(self):
        store = KVStore(max_bytes=220)
        store.put("a", b"x" * 100)
        store.put("b", b"x" * 100)
        assert store.try_get("a") is not None  # a is now most recent
        store.put("c", b"x" * 100)
        assert store.contains("a") and not store.contains("b")

    def test_oversized_payload_still_served_to_its_writer(self):
        store = KVStore(max_bytes=10)
        store.put("big", b"x" * 100)
        # The write's own key is protected from its own enforcement
        # pass; the store is over budget until the next write.
        assert store.try_get("big") == b"x" * 100

    def test_ttl_reclaims_idle_entries(self):
        store = KVStore(ttl_s=0.05)
        store.put("stale", b"x" * 10)
        time.sleep(0.1)
        assert store.expire() == 1
        assert not store.contains("stale")
        assert store.eviction_stats["evicted_bytes"] == 10

    def test_write_activity_refreshes_ttl(self):
        store = KVStore(ttl_s=0.2)
        store.put("hot", b"x")
        time.sleep(0.1)
        store.put_if_changed("hot", b"x")  # unchanged republish = activity
        time.sleep(0.12)
        assert store.expire() == 0
        assert store.contains("hot")

    def test_eviction_never_takes_blocked_reader_key(self):
        """A key a blocked get() waits on is pinned against eviction:
        the publishing put must reach the waiter, even though writing
        it pushes the store past max_bytes and *something* else (here:
        filler) is reclaimed instead."""
        store = KVStore(max_bytes=150)
        store.put("filler", b"f" * 100)
        got = {}

        def reader():
            got["value"] = store.get("awaited", timeout=5.0)

        thread = threading.Thread(target=reader)
        thread.start()
        # Wait until the reader registered its waiter.
        deadline = time.time() + 2.0
        while not store._waiters and time.time() < deadline:
            time.sleep(0.005)
        assert "awaited" in store._waiters
        store.put("awaited", b"a" * 100)  # now over budget
        thread.join(timeout=5.0)
        assert got["value"] == b"a" * 100
        assert not store.contains("filler")  # the evictable key paid

    def test_validation(self):
        with pytest.raises(ValueError):
            KVStore(max_bytes=0)
        with pytest.raises(ValueError):
            KVStore(ttl_s=0.0)


class TestPlannerPoolRetention:
    def test_retain_iterations_prunes_old_plans(self):
        store = KVStore()
        with PlannerPool(_planner(), store, retain_iterations=2) as pool:
            for i, batch in enumerate(_batches(5)):
                pool.submit(i, batch).result(timeout=30.0)
        # Iterations 0..2 fell behind the window; 3 and 4 remain.
        assert not store.contains("plan/0")
        assert not store.contains("plan/2")
        assert store.contains("plan/3") and store.contains("plan/4")
        assert pool.pruned_iterations == 3

    def test_retain_prunes_partial_plan_keys_too(self):
        store = KVStore()
        with PlannerPool(_planner(), store, partial_plans=True,
                         retain_iterations=1) as pool:
            for i, batch in enumerate(_batches(3)):
                pool.submit(i, batch).result(timeout=30.0)
        assert store.keys(prefix="plan/0") == []
        assert store.keys(prefix="plan/1") == []
        assert any(key.startswith("plan/2/") for key in store.keys())

    def test_retain_validation(self):
        with pytest.raises(ValueError):
            PlannerPool(_planner(), KVStore(), retain_iterations=0)
