"""Tests for the streaming overlap pipeline (online §6.1).

Covers the serving-shaped behaviors the fixed-stream tests cannot:
generator-fed batch sources with no upfront length, mid-stream
cluster-shape events (invalidation + re-dispatch + ``replans``
accounting), the dataloaders' streaming routing, the streaming packer,
and the KV backend's per-device partial plan fetches.
"""

import itertools
import threading

import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    make_mask,
)
from repro.core import (
    DCPDataloader,
    DistributedDataloader,
    KVStore,
    PlanCache,
    PlannerPool,
    batch_signature,
)
from repro.data import pack_batches, stream_pack, stream_packed_specs
from repro.pipeline import (
    KVPlannerBackend,
    PipelineRunner,
    StreamingOverlapPipeline,
    plan_fingerprint,
)
from repro.sim import ClusterEvent, ClusterEventSource

CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)
ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)


def make_planner(cluster=CLUSTER, block_size=16):
    return DCPPlanner(
        cluster, ATTENTION, DCPConfig(block_size=block_size, restarts=1)
    )


def make_batches(count=4, base=48):
    mask = make_mask("causal")
    return [
        BatchSpec.build([base + 16 * (i % 3), 32], mask) for i in range(count)
    ]


class TestEventSource:
    def test_add_remove_resize(self):
        events = ClusterEventSource(CLUSTER)
        assert events.current == CLUSTER
        added = events.add_machines(2)
        assert added.kind == "device_add"
        assert events.current.num_machines == 4
        removed = events.remove_machines(3)
        assert removed.kind == "device_remove"
        assert events.current.num_machines == 1
        resized = events.resize(devices_per_machine=4)
        assert resized.kind == "resize"
        assert events.current.devices_per_machine == 4
        assert events.pending() == 3
        drained = events.poll()
        assert [e.kind for e in drained] == [
            "device_add", "device_remove", "resize"
        ]
        assert events.poll() == []

    def test_cannot_remove_last_machine(self):
        events = ClusterEventSource(ClusterSpec(num_machines=1))
        with pytest.raises(ValueError):
            events.remove_machines(1)
        assert events.pending() == 0

    def test_events_are_values(self):
        event = ClusterEvent(kind="resize", cluster=CLUSTER)
        assert event.cluster.num_devices == CLUSTER.num_devices

    def test_concurrent_mutations_are_atomic(self):
        """Read-modify-commit races must not lose updates: N observers
        each adding one machine must land on exactly initial + N."""
        events = ClusterEventSource(CLUSTER)
        barrier = threading.Barrier(8)
        errors = []

        def observer():
            try:
                barrier.wait()
                for _ in range(5):
                    events.add_machines(1)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=observer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert events.current.num_machines == CLUSTER.num_machines + 40
        assert len(events.poll()) == 40


class TestGeneratorStream:
    def test_generator_fed_plans_byte_identical(self):
        """An unbounded-looking source yields exactly the sync plans."""
        planner = make_planner()
        batches = make_batches(5)
        sync = [planner.plan_batch(b) for b in batches]
        pipeline = StreamingOverlapPipeline(
            (b for b in batches), planner, lookahead=2, max_workers=2
        )
        streamed = [plan for _, plan in pipeline]
        assert len(streamed) == len(sync)
        for fast, slow in zip(streamed, sync):
            assert plan_fingerprint(fast) == plan_fingerprint(slow)

    def test_window_never_overruns_the_stream(self):
        """The pipeline pulls at most lookahead+1 batches ahead."""
        planner = make_planner()
        batches = make_batches(6)
        pulled = []

        def source():
            for batch in batches:
                pulled.append(len(pulled))
                yield batch

        pipeline = StreamingOverlapPipeline(
            source(), planner, lookahead=1, max_workers=1
        )
        consumed = 0
        for _, _plan in pipeline:
            consumed += 1
            # Never more than the executing batch + the full window.
            assert len(pulled) <= consumed + pipeline.lookahead + 1
        assert consumed == len(batches)

    def test_infinite_stream_truncated_by_consumer(self):
        planner = make_planner()
        template = make_batches(3)
        endless = itertools.cycle(template)
        pipeline = StreamingOverlapPipeline(
            endless, planner, lookahead=1, max_workers=1
        )
        taken = list(itertools.islice(iter(pipeline), 5))
        assert len(taken) == 5
        pipeline.close()

    def test_packer_feeds_pipeline_directly(self):
        """stream_packed_specs -> pipeline without materializing."""
        planner = make_planner()
        mask = make_mask("causal")
        lengths = [40, 56, 32, 64, 48, 40, 32]
        stream = stream_packed_specs(
            iter(lengths), mask, token_budget=96, max_seqlen=64
        )
        pipeline = StreamingOverlapPipeline(
            stream, planner, lookahead=2, max_workers=2
        )
        plans = [plan for _, plan in pipeline]
        packed = pack_batches(lengths, token_budget=96, max_seqlen=64)
        assert len(plans) == len(packed)


class TestStreamPacker:
    def test_stream_pack_matches_pack_batches(self):
        lengths = [500, 1200, 90, 3000, 77, 1500, 640, 2048]
        assert list(stream_pack(lengths, token_budget=2048)) == pack_batches(
            lengths, token_budget=2048
        )

    def test_stream_pack_truncates_and_skips(self):
        got = list(stream_pack([0, 5000, 3, -2], token_budget=1000))
        assert got == pack_batches([0, 5000, 3, -2], token_budget=1000)
        assert got == [[1000], [3]]

    def test_stream_pack_is_lazy(self):
        seen = []

        def source():
            for n in [600, 600, 600, 600]:
                seen.append(n)
                yield n

        stream = stream_pack(source(), token_budget=1000)
        assert seen == []
        first = next(stream)
        assert first == [600]
        # Emitting batch 1 required reading only one length past it.
        assert len(seen) == 2

    def test_stream_pack_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            list(stream_pack([1], token_budget=0))


class TestClusterEvents:
    def test_removal_triggers_replan_and_new_shape(self):
        """Whole-window cold mode: every re-plan is byte-identical to a
        fresh planner targeting the new shape (delta's warm/reuse paths
        have their own oracle in test_delta_replan.py)."""
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(5)
        pipeline = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=2, max_workers=2,
            events=events, replan_mode="scratch",
        )
        plans = []
        for i, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            if i == 1:
                events.remove_machines(1)
        stats = pipeline.stats()
        assert stats.cluster_events == 1
        assert stats.replans >= 1
        assert plans[0].cluster == CLUSTER
        shrunk = ClusterSpec(num_machines=1, devices_per_machine=2)
        assert plans[-1].cluster == shrunk
        assert plans[-1].num_devices == 2
        # Post-event plans match a planner configured for the new shape.
        fresh = make_planner(cluster=shrunk)
        assert plan_fingerprint(plans[-1]) == plan_fingerprint(
            fresh.plan_batch(batches[-1])
        )
        assert any(r.replanned for r in stats.records)

    def test_addition_retargets_window(self):
        """On a device add the window responds — by re-planning jobs
        still in flight or by reusing settled plans (delta) — and every
        plan yielded after the event targets the grown shape."""
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(4)
        pipeline = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=1, max_workers=1, events=events
        )
        iterator = iter(pipeline)
        next(iterator)
        events.add_machines(1)
        rest = [plan for _, plan in iterator]
        stats = pipeline.stats()
        assert stats.replans + stats.replan_jobs_reused >= 1
        for plan in rest:
            assert plan.cluster.num_machines == 3

    def test_event_invalidates_cache_not_stale_hit(self):
        """After removal the cached old-shape plan must not be served."""
        planner = make_planner()
        cache = PlanCache(planner, capacity=16)
        events = ClusterEventSource(CLUSTER)
        mask = make_mask("causal")
        batches = [BatchSpec.build([48, 32], mask) for _ in range(4)]
        pipeline = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=1, max_workers=1,
            cache=cache, events=events,
        )
        plans = []
        for i, (_, plan) in enumerate(pipeline):
            plans.append(plan)
            if i == 0:
                events.remove_machines(1)
        assert plans[0].cluster == CLUSTER
        for plan in plans[1:]:
            assert plan.cluster.num_machines == 1
            assert plan is not plans[0]
        stats = cache.stats()
        # The old-shape entry was either dropped (affected by the
        # removal) or rescued onto the new-shape key (delta remap) —
        # never served stale.
        assert stats["invalidations"] + stats["remapped"] >= 1

    def test_shared_event_source_reaches_every_pipeline(self):
        """Two pipelines on one event source must both observe a shape
        change — observation is cursor-based, not a destructive drain
        that only the first poller wins."""
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(4)
        first = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=1, max_workers=1, events=events
        )
        second = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=1, max_workers=1, events=events
        )
        it_first, it_second = iter(first), iter(second)
        next(it_first)
        next(it_second)
        events.remove_machines(1)
        last_first = [plan for _, plan in it_first][-1]
        last_second = [plan for _, plan in it_second][-1]
        for pipeline, last in ((first, last_first), (second, last_second)):
            stats = pipeline.stats()
            assert stats.cluster_events == 1
            assert stats.replans + stats.replan_jobs_reused >= 1
            assert last.cluster.num_machines == 1

    def test_no_op_event_does_not_replan(self):
        """An add immediately undone nets out: no re-dispatch."""
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(4)
        pipeline = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=1, max_workers=1, events=events
        )
        iterator = iter(pipeline)
        next(iterator)
        events.add_machines(1)
        events.remove_machines(1)
        list(iterator)
        stats = pipeline.stats()
        assert stats.cluster_events == 2
        assert stats.replans == 0

    def test_redispatch_refreshes_epoch(self):
        """Re-dispatched window items must carry the post-invalidation
        epoch, or their retry-path publications would all be rejected
        (stranding the owned reservations)."""
        planner = make_planner()
        cache = PlanCache(planner, capacity=16)
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(4)
        pipeline = StreamingOverlapPipeline(
            iter(batches), planner, lookahead=2, max_workers=1,
            cache=cache, events=events,
        )
        iterator = iter(pipeline)
        next(iterator)
        events.remove_machines(1)
        next(iterator)  # observes the event, re-dispatches the window
        assert pipeline.replans + pipeline.replan_jobs_reused >= 1
        for item in pipeline._pending:
            assert item.epoch == cache.epoch
        list(iterator)

    def test_invalid_shapes_rejected_before_commit(self):
        """ClusterSpec validation runs inside replace(), so a bogus
        resize raises at the emit site and commits nothing."""
        events = ClusterEventSource(CLUSTER)
        with pytest.raises(ValueError):
            events.resize(num_machines=0)
        with pytest.raises(ValueError):
            events.add_machines(-CLUSTER.num_machines - 1)
        assert events.current == CLUSTER
        assert events.version == 0

    def test_kv_pool_bookkeeping_pruned_after_consumption(self):
        """Consumed iterations must not pin plans in pool/backend maps
        — the KV path's half of the O(1)-memory streaming story."""
        planner = make_planner()
        batches = make_batches(4)
        with PlannerPool(planner, KVStore(), num_machines=2) as pool:
            backend = KVPlannerBackend(pool)
            pipeline = StreamingOverlapPipeline(
                iter(batches), planner, lookahead=1, backend=backend
            )
            plans = [plan for _, plan in pipeline]
            assert len(plans) == 4
            assert pool._submitted == {}
            assert pool._generations == {}
            assert pool._publish_locks == {}
            assert backend._latest == {}

    def test_event_buffer_is_bounded(self):
        events = ClusterEventSource(CLUSTER)
        for _ in range(ClusterEventSource.MAX_BUFFERED_EVENTS + 50):
            events.add_machines(1)
        assert events.version == ClusterEventSource.MAX_BUFFERED_EVENTS + 50
        drained = events.poll()
        assert len(drained) == ClusterEventSource.MAX_BUFFERED_EVENTS

    def test_signatures_carry_cluster_shape(self):
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        pipeline = StreamingOverlapPipeline(
            [], planner, lookahead=1, events=events,
            cache=PlanCache(planner),
        )
        batch = make_batches(1)[0]
        key = pipeline._signature(batch)
        assert key == (CLUSTER, batch_signature(batch))
        assert list(pipeline) == []

    def test_no_events_keeps_base_keyspace(self):
        """Without an event source the shape cannot change, so a cache
        warmed through plan_batch (base signatures) must keep hitting —
        the dataloaders route everything through the streaming path."""
        planner = make_planner()
        cache = PlanCache(planner, capacity=8)
        mask = make_mask("causal")
        batch = BatchSpec.build([48, 32], mask)
        warm = cache.plan_batch(batch)  # keyed by batch_signature
        pipeline = StreamingOverlapPipeline(
            [BatchSpec.build([48, 32], mask)], planner,
            lookahead=1, cache=cache,
        )
        plans = [plan for _, plan in pipeline]
        assert plans[0] is warm  # served from the warmed entry
        assert pipeline.stats().cache_hits == 1


class TestDataloaderRouting:
    def test_dcp_dataloader_accepts_generator(self):
        planner = make_planner()
        batches = make_batches(3)
        loader = DCPDataloader((b for b in batches), planner, lookahead=1)
        plans = [plan for _, plan in loader]
        sync = [planner.plan_batch(b) for b in batches]
        assert len(plans) == 3
        for a, b in zip(plans, sync):
            assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_dcp_dataloader_events(self):
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        loader = DCPDataloader(
            make_batches(4), planner, lookahead=1, events=events
        )
        plans = []
        for i, (_, plan) in enumerate(loader):
            plans.append(plan)
            if i == 0:
                events.remove_machines(1)
        stats = loader.stats()
        assert stats.replans + stats.replan_jobs_reused >= 1
        assert plans[-1].cluster.num_machines == 1

    def test_distributed_dataloader_accepts_generator_and_events(self):
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        batches = make_batches(4)
        with PlannerPool(planner, KVStore(), num_machines=2) as pool:
            loader = DistributedDataloader(
                (b for b in batches), pool, lookahead=1, events=events
            )
            plans = []
            for i, (_, plan) in enumerate(loader):
                plans.append(plan)
                if i == 0:
                    events.remove_machines(1)
        assert len(plans) == 4
        stats = loader.stats()
        assert stats.replans + stats.replan_jobs_reused >= 1
        assert plans[0].cluster.num_machines == 2
        # Every plan yielded after the event targets the new shape —
        # including the in-window jobs the KV pool had already memoized
        # (a replace-resubmission, not a stale-future re-read).
        for plan in plans[1:]:
            assert plan.cluster.num_machines == 1


class TestPerDevicePartialFetch:
    def _round_trip(self, partial):
        planner = make_planner()
        batches = make_batches(3)
        store = KVStore()
        with PlannerPool(
            planner, store, num_machines=2, partial_plans=partial
        ) as pool:
            backend = KVPlannerBackend(pool, per_device_fetch=True)
            pipeline = StreamingOverlapPipeline(
                iter(batches), planner, lookahead=1, backend=backend
            )
            plans = [plan for _, plan in pipeline]
        return planner, batches, store, backend, plans

    def test_partial_fetch_round_trips_identical_plans(self):
        planner, batches, _store, _backend, plans = self._round_trip(True)
        for plan, batch in zip(plans, batches):
            assert plan_fingerprint(plan) == plan_fingerprint(
                planner.plan_batch(batch)
            )

    def test_partial_layout_in_store(self):
        _planner, _batches, store, _backend, plans = self._round_trip(True)
        assert store.keys("plan/0/skeleton") == ["plan/0/skeleton"]
        device_keys = store.keys("plan/0/device/")
        assert len(device_keys) == plans[0].num_devices
        skeleton_bytes = store.entry_bytes("plan/0/skeleton")
        assert skeleton_bytes and skeleton_bytes > 0
        for key in device_keys:
            assert store.entry_bytes(key) > 0
        assert store.entry_bytes("plan/0") is None  # no monolithic copy

    def test_partial_fetch_cuts_consumer_wire_bytes(self):
        *_rest, full_backend, _plans = self._round_trip(False)
        *_rest, partial_backend, _plans2 = self._round_trip(True)
        assert full_backend.consumer_wire_bytes > 0
        assert partial_backend.consumer_wire_bytes > 0
        assert (
            partial_backend.consumer_wire_bytes
            < full_backend.consumer_wire_bytes
        )

    def test_fetch_device_returns_single_stream(self):
        planner = make_planner()
        batches = make_batches(1)
        with PlannerPool(
            planner, KVStore(), partial_plans=True
        ) as pool:
            pool.submit(0, batches[0]).result()
            full = pool.fetch(0)
            stream = pool.fetch_device(0, device=1)
            assert stream.device == 1
            assert stream.instructions == full.device_plans[1].instructions

    def test_fetch_device_requires_partial_mode(self):
        planner = make_planner()
        with PlannerPool(planner, KVStore()) as pool:
            with pytest.raises(ValueError):
                pool.fetch_device(0, device=0)

    def test_legacy_full_fetch_unchanged(self):
        planner = make_planner()
        batches = make_batches(2)
        with PlannerPool(planner, KVStore(), num_machines=2) as pool:
            backend = KVPlannerBackend(pool)
            pipeline = StreamingOverlapPipeline(
                iter(batches), planner, lookahead=1, backend=backend
            )
            plans = [plan for _, plan in pipeline]
        assert backend.consumer_wire_bytes == 0
        assert len(plans) == 2


class TestRunnerIntegration:
    def test_runner_on_iteration_fires_events(self):
        planner = make_planner()
        events = ClusterEventSource(CLUSTER)
        pipeline = StreamingOverlapPipeline(
            iter(make_batches(4)), planner, lookahead=1, events=events
        )

        def fire(index, info):
            if index == 0:
                events.remove_machines(1)

        executed = []

        def execute(local_data, plan):
            executed.append(plan.cluster.num_machines)
            return {"machines": plan.cluster.num_machines}

        runner = PipelineRunner(pipeline, execute=execute, on_iteration=fire)
        report = runner.run()
        assert len(report.executions) == 4
        assert executed[0] == 2
        assert executed[-1] == 1
        stats = report.stats
        assert stats.replans + stats.replan_jobs_reused >= 1

    def test_streaming_stats_survive_as_dict(self):
        planner = make_planner()
        pipeline = StreamingOverlapPipeline(
            iter(make_batches(2)), planner, lookahead=1
        )
        list(pipeline)
        payload = pipeline.stats().as_dict()
        for key in ("replans", "cluster_events", "plan_retries"):
            assert key in payload
