"""Tests for the timeline/trace export (repro.sim.trace)."""

import json
import os

import pytest

from repro.baselines import RingAttentionPlanner
from repro.blocks import AttentionSpec, BatchSpec, generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask
from repro.sim import (
    ClusterSpec,
    ascii_gantt,
    simulate_plan,
    to_chrome_trace,
    write_chrome_trace,
)

CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


@pytest.fixture(scope="module")
def result():
    batch = BatchSpec.build([512, 128], CausalMask())
    spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    block_set = generate_blocks(batch, spec, block_size=64)
    plan = RingAttentionPlanner().plan(block_set, CLUSTER)
    return simulate_plan(plan)


class TestEvents:
    def test_events_recorded_per_device(self, result):
        for timing in result.devices.values():
            assert timing.events, "every device should log events"

    def test_event_lanes_valid(self, result):
        lanes = {
            lane
            for timing in result.devices.values()
            for _, lane, _, _ in timing.events
        }
        assert lanes <= {"compute", "comm", "stall"}
        assert "compute" in lanes
        assert "comm" in lanes

    def test_events_within_iteration(self, result):
        horizon = result.iteration_time + 1e-9
        for timing in result.devices.values():
            for _, _, start, end in timing.events:
                assert 0.0 <= start <= end <= horizon

    def test_events_sorted(self, result):
        for timing in result.devices.values():
            starts = [start for _, _, start, _ in timing.events]
            assert starts == sorted(starts)

    def test_compute_events_match_intervals(self, result):
        for timing in result.devices.values():
            compute_events = [
                (start, end)
                for _, lane, start, end in timing.events
                if lane == "compute"
            ]
            assert sorted(compute_events) == sorted(timing.compute_intervals)


class TestChromeTrace:
    def test_structure(self, result):
        trace = to_chrome_trace(result)
        assert "traceEvents" in trace
        names = {e["name"] for e in trace["traceEvents"]}
        assert "process_name" in names

    def test_json_serializable(self, result):
        json.dumps(to_chrome_trace(result))

    def test_one_process_per_device(self, result):
        trace = to_chrome_trace(result)
        pids = {
            e["pid"]
            for e in trace["traceEvents"]
            if e["name"] == "process_name"
        }
        assert pids == set(result.devices)

    def test_durations_non_negative(self, result):
        for event in to_chrome_trace(result)["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0

    def test_time_scale(self, result):
        micro = to_chrome_trace(result, time_scale=1e6)
        milli = to_chrome_trace(result, time_scale=1e3)
        xs_micro = [e["ts"] for e in micro["traceEvents"] if e["ph"] == "X"]
        xs_milli = [e["ts"] for e in milli["traceEvents"] if e["ph"] == "X"]
        nonzero = [
            (a, b) for a, b in zip(xs_micro, xs_milli) if b > 0
        ]
        assert all(a == pytest.approx(1000 * b) for a, b in nonzero)

    def test_write_round_trip(self, result, tmp_path):
        path = os.path.join(tmp_path, "trace.json")
        write_chrome_trace(result, path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["traceEvents"]


class TestAsciiGantt:
    def test_one_line_per_device_plus_header(self, result):
        chart = ascii_gantt(result)
        assert len(chart.splitlines()) == len(result.devices) + 1

    def test_width_respected(self, result):
        chart = ascii_gantt(result, width=40)
        for line in chart.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_max_devices(self, result):
        chart = ascii_gantt(result, max_devices=2)
        assert len(chart.splitlines()) == 3

    def test_contains_compute_and_comm(self, result):
        chart = ascii_gantt(result)
        assert "#" in chart
        assert "=" in chart or "X" in chart

    def test_dcp_plan_renders(self):
        batch = BatchSpec.build([256, 64], CausalMask())
        spec = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        block_set = generate_blocks(batch, spec, block_size=32)
        planner = DCPPlanner(
            CLUSTER, attention=spec, config=DCPConfig(block_size=32, restarts=1)
        )
        plan = planner.plan(block_set, CLUSTER)
        chart = ascii_gantt(simulate_plan(plan))
        assert "busy" in chart
