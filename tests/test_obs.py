"""Tests for the unified telemetry subsystem (repro.obs).

Covers the tentpole guarantees: span nesting and thread-safety of the
tracer, histogram quantile accuracy against ``numpy.percentile``,
snapshot/diff/merge including cross-process round trips through the
repo's own transports, the disabled-path overhead bound, the
Chrome-trace export + shared-epoch merge, and the migrated attribute
views (transport stats, cache stats, pool counters, KV traffic)
staying shape-identical to their pre-registry forms.
"""

import json
import pickle
import threading
import time

import numpy as np
import pytest

from repro.blocks import AttentionSpec, BatchSpec
from repro.core import DCPConfig, DCPPlanner, KVStore, PlanCache
from repro.masks import CausalMask
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    Tracer,
    merge_snapshots,
)
from repro.obs.bench import plan_fetch_summary
from repro.obs.report import format_seconds, render_snapshot
from repro.sim import ClusterSpec, merge_chrome_traces

CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)
ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)


def make_planner(metrics=None):
    return DCPPlanner(
        CLUSTER,
        ATTENTION,
        DCPConfig(block_size=64, restarts=1),
        metrics=metrics,
    )


# -- tracer ---------------------------------------------------------------


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("noop", "test"):
            pass
        assert len(tracer) == 0

    def test_span_nesting_parent_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", "test"):
            with tracer.span("inner", "test"):
                pass
        spans = {s[0]: s for s in tracer.spans()}
        outer, inner = spans["outer"], spans["inner"]
        assert inner[5] == outer[4]  # inner.parent_id == outer.span_id
        assert outer[5] == 0
        # inner closed first and sits inside outer's interval
        assert outer[6] <= inner[6] <= inner[7] <= outer[7]

    def test_thread_safety_and_per_thread_stacks(self):
        tracer = Tracer(enabled=True)
        spans_per_thread = 50

        def work():
            for i in range(spans_per_thread):
                with tracer.span("outer", "test", i=i):
                    with tracer.span("inner", "test"):
                        pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == 4 * spans_per_thread * 2
        ids = [s[4] for s in spans]
        assert len(set(ids)) == len(ids)  # unique span ids
        outers = {s[4]: s for s in spans if s[0] == "outer"}
        for s in spans:
            if s[0] != "inner":
                continue
            parent = outers[s[5]]  # parent is an outer span...
            assert parent[3] == s[3]  # ...from the same thread

    def test_disabled_overhead_regression(self):
        """The disabled fast path must stay allocation/lock-free cheap.

        Bounds the *absolute* per-call cost generously (CI machines
        vary) — a lock or allocation sneaking onto the path lands well
        above 2µs/call; the measured cost is ~100ns.
        """
        import sys

        if sys.gettrace() is not None:
            pytest.skip("per-call timing is meaningless under a "
                        "settrace tracer (coverage fallback run)")
        from repro.obs.trace import disable_tracing, span, tracing_enabled

        was = tracing_enabled()
        disable_tracing()
        try:
            iters = 20000
            start = time.perf_counter()
            for _ in range(iters):
                with span("bench", "test"):
                    pass
            per_call = (time.perf_counter() - start) / iters
        finally:
            if was:  # pragma: no cover - tracing is off in tests
                from repro.obs.trace import enable_tracing

                enable_tracing()
        assert per_call < 2e-6

    def test_chrome_trace_export(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", "test", key="value"):
            pass
        tracer.add_span("measured", "test", tracer.origin, tracer.origin + 0.5)
        trace = tracer.to_chrome_trace()
        assert trace["clockOrigin"] == tracer.origin
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert names == {"work", "measured"}
        measured = next(e for e in slices if e["name"] == "measured")
        assert measured["ts"] == pytest.approx(0.0, abs=1e-6)
        assert measured["dur"] == pytest.approx(5e5)
        json.dumps(trace)  # serializable

    def test_traced_decorator(self):
        tracer = Tracer(enabled=True)
        import repro.obs.trace as obs_trace

        old = obs_trace._TRACER
        obs_trace._TRACER = tracer
        try:

            @obs_trace.traced(cat="test")
            def add(a, b):
                return a + b

            assert add(1, 2) == 3
        finally:
            obs_trace._TRACER = old
        names = [s[0] for s in tracer.spans()]
        assert len(names) == 1 and names[0].endswith("add")


# -- metrics --------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("g")
        gauge.set(3.5)
        gauge.inc(0.5)
        assert gauge.value == 4.0
        assert registry.counter("c") is counter  # get-or-create
        with pytest.raises(TypeError):
            registry.gauge("c")

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_histogram_quantiles_vs_numpy(self, seed):
        rng = np.random.default_rng(seed)
        # log-uniform latencies spanning the bucket range
        samples = 10.0 ** rng.uniform(-6, 0, size=2000)
        registry = MetricsRegistry()
        hist = registry.histogram("lat_s")
        for value in samples:
            hist.observe(value)
        for q in (0.50, 0.95, 0.99):
            expected = float(np.percentile(samples, q * 100))
            estimate = hist.quantile(q)
            # exponential buckets: the estimate must land within one
            # bucket width (factor of 2) of the exact percentile
            assert expected / 2 <= estimate <= expected * 2
        snap = hist.snapshot()
        assert snap["count"] == len(samples)
        assert snap["min"] == pytest.approx(samples.min())
        assert snap["max"] == pytest.approx(samples.max())

    def test_histogram_quantiles_clamped_to_extrema(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.010, 0.011, 0.012):
            hist.observe(value)
        assert 0.010 <= hist.quantile(0.0) <= 0.012
        assert 0.010 <= hist.quantile(1.0) <= 0.012

    def test_snapshot_diff(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        hist = registry.histogram("h_s")
        hist.observe(0.001)
        before = registry.snapshot()
        registry.counter("c").inc(2)
        hist.observe(0.1)
        delta = registry.diff(before)
        assert delta["c"]["value"] == 2
        assert delta["h_s"]["count"] == 1
        # the window's only observation was ~0.1s
        assert 0.05 <= delta["h_s"]["p50"] <= 0.2

    def test_merge_snapshots_identity(self):
        """Merging per-process snapshots equals observing in one."""
        samples_a = [0.001 * (i + 1) for i in range(40)]
        samples_b = [0.0005 * (i + 1) for i in range(25)]

        def build(samples, incs):
            registry = MetricsRegistry()
            for value in samples:
                registry.histogram("h_s").observe(value)
            registry.counter("c").inc(incs)
            return registry

        merged = merge_snapshots(
            [build(samples_a, 3).snapshot(), build(samples_b, 4).snapshot()]
        )
        combined = build(samples_a + samples_b, 7).snapshot()
        assert merged["c"] == combined["c"]
        m, c = merged["h_s"], combined["h_s"]
        assert m["counts"] == c["counts"]
        assert m["count"] == c["count"]
        assert (m["min"], m["max"]) == (c["min"], c["max"])
        # summation order differs across processes; identical to 1 ulp
        assert m["sum"] == pytest.approx(c["sum"], rel=1e-12)
        for key in ("p50", "p95", "p99"):
            assert m[key] == pytest.approx(c[key], rel=1e-12)

    def test_cross_process_roundtrip_via_pickle_and_kv(self):
        """Snapshots survive the repo's own transports bit-identically."""
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.histogram("h_s").observe(0.25)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(registry)).snapshot() == snap
        store = KVStore()
        store.put("snap", snap)
        assert store.get("snap") == snap

    def test_json_stability(self):
        def build():
            registry = MetricsRegistry()
            registry.histogram("b_s").observe(0.002)
            registry.counter("a").inc()
            return registry

        assert build().to_json() == build().to_json()
        parsed = MetricsRegistry.from_json(build().to_json())
        assert set(parsed) == {"a", "b_s"}

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(1.0)
        assert registry.counter("c").value == 0
        assert registry.snapshot() == {}
        assert len(registry) == 0


# -- instrumentation + migrated views ------------------------------------


class TestInstrumentation:
    def test_planner_stage_metrics(self):
        planner = make_planner()
        batch = BatchSpec.build([256, 128], CausalMask())
        planner.plan_batch(batch)
        snap = planner.metrics.snapshot()
        assert snap["planner.plans"]["value"] == 1
        for name in (
            "planner.plan_s",
            "planner.block_generation_s",
            "planner.placement_s",
            "planner.scheduling_s",
        ):
            assert snap[name]["count"] == 1
        assert snap["planner.plan_s"]["p50"] > 0

    def test_planner_null_registry(self):
        planner = make_planner(metrics=NullRegistry())
        batch = BatchSpec.build([256, 128], CausalMask())
        planner.plan_batch(batch)  # no-op metrics, no error
        assert planner.metrics.snapshot() == {}

    def test_cache_stats_view_shapes(self):
        planner = make_planner()
        cache = PlanCache(planner, capacity=4)
        batch = BatchSpec.build([256, 128], CausalMask())
        cache.plan_batch(batch)
        cache.plan_batch(batch)
        assert cache.hits == 1 and cache.misses == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        snap = cache.metrics.snapshot()
        assert snap["cache.hits"]["value"] == 1
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0

    def test_kvstore_traffic_view_and_latency(self):
        store = KVStore()
        store.put("k", b"payload")
        assert store.get("k") == b"payload"
        assert store.traffic == {"in": 7, "out": 7, "get_misses": 0}
        snap = store.metrics.snapshot()
        assert snap["kv.puts"]["value"] == 1
        assert snap["kv.gets"]["value"] == 1
        assert snap["kv.put_s"]["count"] == 1
        assert snap["kv.get_s"]["count"] == 1
        # A try_get miss is a lookup too: it lands in kv.gets/kv.get_s
        # and is broken out in kv.get_misses (regression: the early
        # return used to skip all accounting).
        assert store.try_get("absent") is None
        snap = store.metrics.snapshot()
        assert snap["kv.gets"]["value"] == 2
        assert snap["kv.get_misses"]["value"] == 1
        assert snap["kv.get_s"]["count"] == 2
        assert store.traffic["get_misses"] == 1

    def test_pipeline_plan_fetch_split(self):
        from repro.pipeline import OverlapPipeline, PipelineRunner

        planner = make_planner()
        cache = PlanCache(planner, capacity=8)
        batches = [
            BatchSpec.build([256, 128], CausalMask()),
            BatchSpec.build([192, 64], CausalMask()),
        ]
        pipeline = OverlapPipeline(
            batches * 2, planner, lookahead=1, max_workers=1,
            backend="thread", cache=cache,
        )
        runner = PipelineRunner(pipeline, execute=lambda local, plan: None)
        runner.run()
        snap = pipeline.metrics.snapshot()
        assert snap["pipeline.iterations"]["value"] == 4
        fetch = plan_fetch_summary(snap)
        assert fetch["hit"]["count"] == 2  # cycle 2 served by the cache
        assert fetch["dispatch"]["count"] == 2
        assert fetch["dispatch"]["p50_s"] >= 0.0

    def test_shared_registry_across_components(self):
        registry = MetricsRegistry()
        planner = make_planner(metrics=registry)
        cache = PlanCache(planner, capacity=4, metrics=registry)
        store = KVStore(metrics=registry)
        batch = BatchSpec.build([256, 128], CausalMask())
        store.put("plan", cache.plan_batch(batch))
        names = registry.names()
        assert "planner.plan_s" in names
        assert "cache.misses" in names
        assert "kv.puts" in names


# -- chrome-trace merge ---------------------------------------------------


class TestMergeChromeTraces:
    def test_shared_epoch_rebase_and_pid_namespacing(self):
        early = Tracer(enabled=True)
        late = Tracer(enabled=True)
        late.origin = early.origin + 2.0  # late trace starts 2s in
        late.add_span("b", "test", late.origin, late.origin + 0.5)
        early.add_span("a", "test", early.origin, early.origin + 0.5)
        merged = merge_chrome_traces(
            [early.to_chrome_trace(), late.to_chrome_trace()],
            labels=["early", "late"],
        )
        slices = {
            e["name"]: e for e in merged["traceEvents"] if e["ph"] == "X"
        }
        # late's span lands 2s (2e6µs) after early's on the shared epoch
        assert slices["b"]["ts"] - slices["a"]["ts"] == pytest.approx(
            2e6, rel=1e-6
        )
        assert slices["a"]["pid"] != slices["b"]["pid"]
        labels = {
            e["args"]["name"]
            for e in merged["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert any(name.startswith("early:") for name in labels)
        assert any(name.startswith("late:") for name in labels)

    def test_origin_free_trace_lands_at_epoch(self):
        tracer = Tracer(enabled=True)
        tracer.add_span("a", "test", tracer.origin + 1.0, tracer.origin + 2.0)
        sim_trace = {
            "traceEvents": [
                {"name": "sim", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 0.0, "dur": 10.0}
            ]
        }
        merged = merge_chrome_traces([tracer.to_chrome_trace(), sim_trace])
        slices = {
            e["name"]: e for e in merged["traceEvents"] if e["ph"] == "X"
        }
        assert slices["sim"]["ts"] == 0.0
        assert slices["a"]["ts"] == pytest.approx(1e6, rel=1e-6)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_chrome_traces([{"traceEvents": []}], labels=["a", "b"])


# -- report rendering -----------------------------------------------------


class TestReport:
    def test_format_seconds(self):
        assert format_seconds(None) == "-"
        assert format_seconds(2.5) == "2.500s"
        assert format_seconds(0.0125) == "12.500ms"
        assert format_seconds(3.2e-5) == "32.0us"

    def test_render_snapshot_table(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.iterations").inc(8)
        hist = registry.histogram("pipeline.plan_fetch_hit_s")
        hist.observe(0.002)
        text = render_snapshot(registry.snapshot())
        lines = text.splitlines()
        assert lines[0].split()[:2] == ["metric", "type"]
        assert any(
            "pipeline.plan_fetch_hit_s" in line and "ms" in line
            for line in lines
        )
        assert render_snapshot({}) == "(empty snapshot)"
