"""Distributed backward through multi-range masks, and store concurrency."""

import threading

import numpy as np
import pytest

from repro import AttentionSpec, BatchSpec, ClusterSpec, generate_blocks
from repro.core import KVStore
from repro.masks import DilatedBlockMask, GlobalTokenMask
from repro.placement import PlacementConfig, place_blocks
from repro.runtime import BatchInputs, run_forward_backward
from repro.runtime.reference import reference_attention
from repro.scheduling import build_schedule

ATTENTION = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
CLUSTER = ClusterSpec(num_machines=2, devices_per_machine=2)


def _dense_grads(block_set, inputs, grad_outputs):
    """Numerical reference gradients via the dense forward."""
    qpg = block_set.attention.q_heads_per_group
    dq_ref, dk_ref, dv_ref = [], [], []
    for seq_index, seq in enumerate(block_set.batch.sequences):
        q = inputs.q[seq_index]
        k = inputs.k[seq_index]
        v = inputs.v[seq_index]
        mask = seq.mask.dense(seq.seqlen)
        upstream = grad_outputs[seq_index]
        eps = 1e-3

        def loss(q=q, k=k, v=v):
            out = reference_attention(q, k, v, mask, qpg)
            return float((out * upstream).sum())

        # Spot-check a handful of coordinates with central differences.
        rng = np.random.default_rng(seq_index)
        coords = [
            tuple(rng.integers(0, s) for s in q.shape) for _ in range(4)
        ]
        dq_num = {}
        for coord in coords:
            q_plus = q.copy()
            q_plus[coord] += eps
            q_minus = q.copy()
            q_minus[coord] -= eps
            dq_num[coord] = (loss(q=q_plus) - loss(q=q_minus)) / (2 * eps)
        dq_ref.append(dq_num)
    return dq_ref


@pytest.mark.parametrize(
    "mask",
    [
        DilatedBlockMask(block=4, stride=2, window=12),
        GlobalTokenMask(every=16, window=12),
    ],
    ids=lambda m: m.name,
)
def test_distributed_backward_multirange(mask):
    """dQ of the distributed backward matches numerical gradients."""
    batch = BatchSpec.build([64, 48], mask)
    block_set = generate_blocks(batch, ATTENTION, block_size=16)
    placement = place_blocks(
        block_set, CLUSTER, PlacementConfig(seed=0, restarts=1)
    )
    schedule = build_schedule(block_set, placement, num_divisions=2)

    inputs = BatchInputs.random(block_set, seed=5)
    rng = np.random.default_rng(7)
    grad_outputs = [
        rng.standard_normal(
            (ATTENTION.num_q_heads, seq.seqlen, ATTENTION.head_dim)
        ).astype(np.float32)
        for seq in batch.sequences
    ]
    outputs, grads, _, _ = run_forward_backward(
        schedule, inputs, grad_outputs
    )

    # Forward matches the dense reference.
    for seq_index, seq in enumerate(batch.sequences):
        ref = reference_attention(
            inputs.q[seq_index],
            inputs.k[seq_index],
            inputs.v[seq_index],
            seq.mask.dense(seq.seqlen),
            ATTENTION.q_heads_per_group,
        )
        np.testing.assert_allclose(
            outputs[seq_index], ref, rtol=2e-4, atol=2e-5
        )

    # Spot-check dQ against central differences.
    references = _dense_grads(block_set, inputs, grad_outputs)
    for seq_index, dq_num in enumerate(references):
        for coord, expected in dq_num.items():
            actual = float(grads.dq[seq_index][coord])
            assert actual == pytest.approx(expected, rel=3e-2, abs=3e-3)


def test_kvstore_concurrent_producers_consumers():
    """Many threads writing and blocking-reading never deadlock or corrupt."""
    store = KVStore()
    n = 40
    errors = []

    def producer(start):
        for i in range(start, n, 2):
            store.put(f"item/{i}", {"value": i * i})

    def consumer():
        try:
            for i in range(n):
                value = store.get(f"item/{i}", timeout=10.0)
                if value["value"] != i * i:
                    errors.append((i, value))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=consumer),
        threading.Thread(target=producer, args=(0,)),
        threading.Thread(target=producer, args=(1,)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors
    assert store.size_bytes() > 0
