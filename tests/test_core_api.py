"""Tests for the public API: config, planner, dataloader."""

import numpy as np
import pytest

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPDataloader,
    DCPPlanner,
    make_mask,
)
from repro.core import LocalData
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs


class TestDCPConfig:
    def test_defaults_match_paper(self):
        config = DCPConfig()
        assert config.num_divisions == 4
        assert config.eps_inter == pytest.approx(0.4)
        assert config.eps_intra == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DCPConfig(block_size=0)
        with pytest.raises(ValueError):
            DCPConfig(num_divisions=0)
        with pytest.raises(ValueError):
            DCPConfig(lookahead=-1)

    def test_placement_config_propagates(self):
        placement = DCPConfig(eps_inter=0.7, seed=9).placement_config()
        assert placement.eps_inter == pytest.approx(0.7)
        assert placement.seed == 9


class TestDCPPlanner:
    def make(self, **cfg):
        cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        return DCPPlanner(
            cluster, attention, DCPConfig(block_size=16, restarts=1, **cfg)
        )

    def test_plan_batch_records_stats(self):
        planner = self.make()
        batch = BatchSpec.build([64, 32], make_mask("causal"))
        plan = planner.plan_batch(batch)
        stats = planner.last_stats
        assert stats.total > 0
        assert stats.placement > 0
        assert plan.meta["planner"] == "dcp"
        assert plan.num_devices == 4

    def test_every_token_assigned_once(self):
        planner = self.make()
        batch = BatchSpec.build([64, 48, 16], make_mask("causal"))
        plan = planner.plan_batch(batch)
        seen = {}
        for device_plan in plan.device_plans.values():
            for ts in device_plan.local_slices:
                key = (ts.seq_index, ts.block_index)
                assert key not in seen
                seen[key] = device_plan.device
        total = sum(
            ts.tokens
            for dp in plan.device_plans.values()
            for ts in dp.local_slices
        )
        assert total == batch.total_tokens


class TestDataloader:
    def make_loader(self, lookahead):
        cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
        attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
        planner = DCPPlanner(
            cluster, attention, DCPConfig(block_size=16, restarts=1)
        )
        mask = make_mask("causal")
        batches = [
            BatchSpec.build([48, 32], mask),
            BatchSpec.build([64], mask),
            BatchSpec.build([32, 32, 16], mask),
        ]
        return DCPDataloader(batches, planner, lookahead=lookahead), batches

    @pytest.mark.parametrize("lookahead", [0, 2])
    def test_yields_all_batches(self, lookahead):
        loader, batches = self.make_loader(lookahead)
        seen = list(loader)
        assert len(seen) == len(batches)
        for (local_data, plan), batch in zip(seen, batches):
            tokens = sum(data.tokens for data in local_data.values())
            assert tokens == batch.total_tokens
            assert all(isinstance(d, LocalData) for d in local_data.values())

    def test_plans_are_executable(self):
        loader, _ = self.make_loader(lookahead=1)
        for _, plan in loader:
            executor = SimExecutor(plan)
            inputs = BatchInputs.random(plan.block_set, seed=0)
            executor.load_inputs(inputs)
            executor.run()
            outputs = executor.gather_outputs()
            refs = reference_batch_outputs(plan.block_set, inputs)
            for out, ref in zip(outputs, refs):
                np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
