"""repro — reproduction of DCP: Dynamic Context Parallelism (SOSP 2025).

Top-level convenience re-exports; see subpackages for the full API:

* :mod:`repro.core` — DCPConfig, DCPPlanner, DCPDataloader, distributed
  planner pool + KV store, plan cache, block-size autotuner
* :mod:`repro.masks` — attention-mask specifications (2-range paper
  masks plus arbitrary multi-range masks)
* :mod:`repro.blocks` — data/computation block representation
* :mod:`repro.hypergraph` — multilevel hypergraph partitioner
* :mod:`repro.placement` — hierarchical block placement
* :mod:`repro.scheduling` — divisions, instructions, serialization
* :mod:`repro.pipeline` — background planning pipeline hiding planner
  latency behind execution (§6.1, measured)
* :mod:`repro.runtime` — simulated distributed executor (numerics)
* :mod:`repro.sim` — cluster spec, timing simulation, model cost,
  memory accounting, timeline/trace export
* :mod:`repro.parallel` — composing DCP with TP and PP (§6.2)
* :mod:`repro.baselines` — RFA / LoongTrain / TransformerEngine /
  Ulysses / FlexSP-style
* :mod:`repro.data` — synthetic datasets, batching, packing strategies
* :mod:`repro.model` — numpy GPT for the loss-curve experiment
* :mod:`repro.obs` — unified telemetry: span tracer, metrics registry,
  latency histograms, obs CLI (``python -m repro.obs``)
"""

from .blocks import AttentionSpec, BatchSpec, SequenceSpec, generate_blocks
from .core import (
    DCPConfig,
    DCPDataloader,
    DCPPlanner,
    autotune_block_size,
)
from .masks import make_mask
from .obs import MetricsRegistry, enable_tracing, get_tracer, span
from .pipeline import OverlapPipeline, OverlapStats, PipelineRunner
from .sim import ClusterSpec

__version__ = "1.2.0"

__all__ = [
    "AttentionSpec",
    "BatchSpec",
    "SequenceSpec",
    "generate_blocks",
    "DCPConfig",
    "DCPDataloader",
    "DCPPlanner",
    "autotune_block_size",
    "make_mask",
    "MetricsRegistry",
    "enable_tracing",
    "get_tracer",
    "span",
    "ClusterSpec",
    "OverlapPipeline",
    "OverlapStats",
    "PipelineRunner",
    "__version__",
]
