"""Numpy blockwise-attention kernels (FlashAttention math, paper §5).

A tile computes attention of one Q block (all query heads of one head
group) against one KV block, producing an *unnormalized* partial:

``state = (acc, m, l)`` where ``m`` is the running row max of the
logits, ``l`` the running sum of ``exp(logit - m)``, and ``acc`` the
running ``sum(exp(logit - m) * V)``.  Partials merge associatively
(:func:`merge_partials`), so tiles may execute in any order on any
device; :func:`finalize` normalizes at the end.  This is numerically
identical to FlashAttention's online softmax.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AttnPartial",
    "empty_partial",
    "tile_attention",
    "merge_partials",
    "accumulate_tile",
    "finalize",
    "finalize_with_lse",
    "tile_backward",
]

_NEG_INF = np.float32(-np.inf)


@dataclass
class AttnPartial:
    """Running online-softmax state for one output block."""

    acc: np.ndarray  # [heads, rows, head_dim]
    m: np.ndarray  # [heads, rows]
    l: np.ndarray  # [heads, rows]

    def copy(self) -> "AttnPartial":
        return AttnPartial(self.acc.copy(), self.m.copy(), self.l.copy())


def empty_partial(heads: int, rows: int, head_dim: int) -> AttnPartial:
    """A partial with no contributions yet (finalizes to zeros)."""
    return AttnPartial(
        acc=np.zeros((heads, rows, head_dim), dtype=np.float32),
        m=np.full((heads, rows), _NEG_INF, dtype=np.float32),
        l=np.zeros((heads, rows), dtype=np.float32),
    )


def tile_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    scale: float,
) -> AttnPartial:
    """Attention partial of one tile.

    Parameters
    ----------
    q:
        ``[heads, q_rows, head_dim]`` query block.
    k, v:
        ``[k_rows, head_dim]`` key/value block (shared across the
        group's query heads — GQA).
    mask:
        Boolean ``[q_rows, k_rows]``; False entries are masked out.
    scale:
        Logit scale, normally ``1 / sqrt(head_dim)``.
    """
    scores = np.einsum("hqd,kd->hqk", q.astype(np.float32), k.astype(np.float32))
    scores *= np.float32(scale)
    scores = np.where(mask[None, :, :], scores, _NEG_INF)
    m = scores.max(axis=2)
    # Rows with no unmasked key: keep m = -inf and contribute nothing.
    safe_m = np.where(np.isfinite(m), m, np.float32(0.0))
    p = np.exp(scores - safe_m[:, :, None], dtype=np.float32)
    p = np.where(mask[None, :, :], p, np.float32(0.0))
    l = p.sum(axis=2)
    acc = np.einsum("hqk,kd->hqd", p, v.astype(np.float32))
    return AttnPartial(acc=acc, m=m, l=l)


def merge_partials(dst: AttnPartial, src: AttnPartial) -> None:
    """Merge ``src`` into ``dst`` in place (associative, commutative)."""
    m_new = np.maximum(dst.m, src.m)
    safe = np.where(np.isfinite(m_new), m_new, np.float32(0.0))
    dst_scale = np.where(
        np.isfinite(dst.m), np.exp(dst.m - safe, dtype=np.float32), np.float32(0.0)
    )
    src_scale = np.where(
        np.isfinite(src.m), np.exp(src.m - safe, dtype=np.float32), np.float32(0.0)
    )
    dst.acc *= dst_scale[:, :, None]
    dst.acc += src.acc * src_scale[:, :, None]
    dst.l *= dst_scale
    dst.l += src.l * src_scale
    dst.m = m_new


def accumulate_tile(
    state: AttnPartial,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    scale: float,
) -> None:
    """Compute one tile and fold it into ``state``."""
    merge_partials(state, tile_attention(q, k, v, mask, scale))


def finalize(state: AttnPartial) -> np.ndarray:
    """Normalize a partial into the output block ``[heads, rows, dim]``.

    Fully-masked rows (no contributions) become zeros, matching the
    dense reference's convention.
    """
    denom = np.where(state.l > 0, state.l, np.float32(1.0))
    out = state.acc / denom[:, :, None]
    return np.where((state.l > 0)[:, :, None], out, np.float32(0.0))


def finalize_with_lse(state: AttnPartial):
    """Finalize and also return the row log-sum-exp.

    ``lse = m + log(l)`` is what FlashAttention saves for the backward
    pass; fully-masked rows keep ``lse = -inf``.
    """
    out = finalize(state)
    with np.errstate(divide="ignore"):
        lse = np.where(
            state.l > 0,
            state.m + np.log(state.l, where=state.l > 0,
                             out=np.zeros_like(state.l)),
            _NEG_INF,
        ).astype(np.float32)
    return out, lse


def tile_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    grad_out: np.ndarray,
    lse: np.ndarray,
    delta: np.ndarray,
    mask: np.ndarray,
    scale: float,
):
    """Backward of one attention tile (FlashAttention-2 backward math).

    Parameters
    ----------
    q:
        ``[heads, q_rows, dim]``; ``k``, ``v``: ``[k_rows, dim]``.
    grad_out:
        Upstream gradient of the *final normalized* output rows,
        ``[heads, q_rows, dim]``.
    lse:
        Row log-sum-exp from the forward pass, ``[heads, q_rows]``.
    delta:
        ``rowsum(grad_out * O_final)``, ``[heads, q_rows]`` — the ``D``
        statistic of the Flash backward.
    mask:
        Boolean ``[q_rows, k_rows]``.

    Returns
    -------
    (dq, dk, dv):
        ``dq`` ``[heads, q_rows, dim]``; ``dk``/``dv`` ``[k_rows, dim]``
        summed over the group's query heads (GQA semantics).
    """
    scores = np.einsum("hqd,kd->hqk", q.astype(np.float32),
                       k.astype(np.float32))
    scores *= np.float32(scale)
    safe_lse = np.where(np.isfinite(lse), lse, np.float32(0.0))
    probs = np.exp(scores - safe_lse[:, :, None], dtype=np.float32)
    probs = np.where(mask[None, :, :], probs, np.float32(0.0))
    probs = np.where(np.isfinite(lse)[:, :, None], probs, np.float32(0.0))

    grad_out = grad_out.astype(np.float32)
    dv = np.einsum("hqk,hqd->kd", probs, grad_out)
    dp = np.einsum("hqd,kd->hqk", grad_out, v.astype(np.float32))
    ds = probs * (dp - delta[:, :, None])
    ds *= np.float32(scale)
    dq = np.einsum("hqk,kd->hqd", ds, k.astype(np.float32))
    dk = np.einsum("hqk,hqd->kd", ds, q.astype(np.float32))
    return dq, dk, dv
