"""Simulated point-to-point communication fabric.

Messages are matched on ``(src, dst, tag)`` exactly like tagged P2P in
NCCL/MPI.  The fabric also keeps complete traffic accounting (total,
per-link, intra- vs inter-machine) which tests and benchmarks read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim.cluster import ClusterSpec

__all__ = ["Message", "Fabric"]


@dataclass
class Message:
    src: int
    dst: int
    tag: Tuple
    payload: object
    nbytes: int


class Fabric:
    """In-memory mailbox with NCCL-style tag matching."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._mailbox: Dict[Tuple[int, int, Tuple], Message] = {}
        self.total_bytes = 0
        self.inter_machine_bytes = 0
        self.message_count = 0
        self.link_bytes: Dict[Tuple[int, int], int] = {}

    def post(self, src: int, dst: int, tag: Tuple, payload: object, nbytes: int) -> None:
        key = (src, dst, tag)
        if key in self._mailbox:
            raise RuntimeError(f"duplicate message {key}")
        self._mailbox[key] = Message(src, dst, tag, payload, nbytes)
        self.total_bytes += nbytes
        self.message_count += 1
        self.link_bytes[(src, dst)] = self.link_bytes.get((src, dst), 0) + nbytes
        if not self.cluster.same_machine(src, dst):
            self.inter_machine_bytes += nbytes

    def ready(self, src: int, dst: int, tag: Tuple) -> bool:
        return (src, dst, tag) in self._mailbox

    def collect(self, src: int, dst: int, tag: Tuple) -> Optional[Message]:
        return self._mailbox.pop((src, dst, tag), None)

    def pending_count(self) -> int:
        return len(self._mailbox)
