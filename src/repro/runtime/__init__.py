"""Simulated distributed executor, kernels, fabric and reference."""

from .backward import AttentionGrads, run_forward_backward
from .device import DeviceBuffers
from .executor import BatchInputs, SimExecutor
from .fabric import Fabric, Message
from .kernels import (
    AttnPartial,
    accumulate_tile,
    empty_partial,
    finalize,
    finalize_with_lse,
    merge_partials,
    tile_attention,
    tile_backward,
)
from .reference import reference_attention, reference_batch_outputs

__all__ = [
    "AttentionGrads",
    "run_forward_backward",
    "finalize_with_lse",
    "tile_backward",
    "DeviceBuffers",
    "BatchInputs",
    "SimExecutor",
    "Fabric",
    "Message",
    "AttnPartial",
    "accumulate_tile",
    "empty_partial",
    "finalize",
    "merge_partials",
    "tile_attention",
    "reference_attention",
    "reference_batch_outputs",
]
