"""Cooperative multi-device executor for DCP execution plans.

This is the repository's substitute for the paper's GPU executor: it
interprets the same five instructions over numpy buffers, with real
tag-matched message passing between simulated devices.  Devices run
round-robin, each progressing until it blocks on a :class:`CommWait`
whose messages have not arrived; a full cycle without progress is a
deadlock and raises.

Numerics are exact (FlashAttention online softmax in float32), so the
executor doubles as the correctness oracle for placement, scheduling
and serialization — and powers the paper's loss-curve experiment
(Fig. 21).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..blocks import BlockSet
from ..scheduling.instructions import (
    BlockwiseAttention,
    BlockwiseAttentionBackward,
    BlockwiseCopy,
    BlockwiseGradReduce,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
)
from .device import DeviceBuffers
from .fabric import Fabric
from .kernels import finalize, merge_partials, tile_attention, tile_backward

__all__ = ["SimExecutor", "BatchInputs"]


@dataclass
class BatchInputs:
    """Per-sequence attention inputs.

    ``q[seq]`` has shape ``[num_q_heads, L, head_dim]``; ``k[seq]`` and
    ``v[seq]`` have shape ``[num_kv_groups, L, head_dim]``.
    """

    q: List[np.ndarray]
    k: List[np.ndarray]
    v: List[np.ndarray]

    @staticmethod
    def random(block_set: BlockSet, seed: int = 0) -> "BatchInputs":
        rng = np.random.default_rng(seed)
        attention = block_set.attention
        q, k, v = [], [], []
        for seq in block_set.batch.sequences:
            shape_q = (attention.num_q_heads, seq.seqlen, attention.head_dim)
            shape_kv = (attention.num_kv_groups, seq.seqlen, attention.head_dim)
            q.append(rng.standard_normal(shape_q).astype(np.float32))
            k.append(rng.standard_normal(shape_kv).astype(np.float32))
            v.append(rng.standard_normal(shape_kv).astype(np.float32))
        return BatchInputs(q, k, v)


class _DeviceRunner:
    """Instruction interpreter state for one device."""

    def __init__(self, plan: DevicePlan, executor: "SimExecutor") -> None:
        self.plan = plan
        self.executor = executor
        self.pc = 0
        self.pending_recvs: Dict[int, List] = {}

    @property
    def done(self) -> bool:
        return self.pc >= len(self.plan.instructions)

    def step(self) -> bool:
        """Execute instructions until blocked; True if progressed."""
        progressed = False
        while not self.done:
            instruction = self.plan.instructions[self.pc]
            if isinstance(instruction, CommWait):
                if not self._try_complete_wait(instruction.op_id):
                    return progressed
            elif isinstance(instruction, CommLaunch):
                self._launch(instruction)
            elif isinstance(instruction, BlockwiseAttention):
                self._attention(instruction)
            elif isinstance(instruction, BlockwiseAttentionBackward):
                self._attention_backward(instruction)
            elif isinstance(instruction, BlockwiseReduction):
                self._reduction(instruction)
            elif isinstance(instruction, BlockwiseGradReduce):
                self._grad_reduce(instruction)
            elif isinstance(instruction, BlockwiseCopy):
                self._copy(instruction)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown instruction {instruction!r}")
            self.pc += 1
            progressed = True
        return progressed

    # -- communication ----------------------------------------------------

    def _launch(self, instruction: CommLaunch) -> None:
        executor = self.executor
        device = self.plan.device
        buffers = executor.buffers[device]
        for send in instruction.sends:
            if send.buffer == "q":
                payload = (buffers.q_view(send.slot).copy(), None)
            elif send.buffer == "kv":
                k, v = buffers.kv_view(send.slot)
                payload = (k.copy(), v.copy())
            elif send.buffer == "acc":
                payload = buffers.acc[send.slot].copy()
            elif send.buffer == "do":
                grad_out, lse, delta = buffers.do[send.slot]
                payload = (grad_out.copy(), lse.copy(), delta.copy())
            elif send.buffer == "dq":
                payload = buffers.dq[send.slot].copy()
            elif send.buffer == "dkv":
                payload = buffers.dkv[send.slot].copy()
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot send buffer {send.buffer!r}")
            executor.fabric.post(device, send.peer, send.tag, payload, send.nbytes)
        if instruction.recvs:
            self.pending_recvs[instruction.op_id] = list(instruction.recvs)

    def _try_complete_wait(self, op_id: int) -> bool:
        recvs = self.pending_recvs.get(op_id, [])
        fabric = self.executor.fabric
        device = self.plan.device
        if not all(fabric.ready(r.peer, device, r.tag) for r in recvs):
            return False
        buffers = self.executor.buffers[device]
        for recv in recvs:
            message = fabric.collect(recv.peer, device, recv.tag)
            if recv.buffer == "q":
                buffers.load_q(recv.slot, message.payload[0])
            elif recv.buffer == "kv":
                buffers.load_kv(recv.slot, message.payload[0], message.payload[1])
            elif recv.buffer == "acc":
                buffers.set_acc(recv.slot, message.payload)
            elif recv.buffer == "do":
                buffers.do[recv.slot] = message.payload
            elif recv.buffer == "dq":
                buffers.dq[recv.slot] = message.payload
            elif recv.buffer == "dkv":
                buffers.dkv[recv.slot] = message.payload
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot receive buffer {recv.buffer!r}")
        self.pending_recvs.pop(op_id, None)
        return True

    # -- computation ------------------------------------------------------

    def _attention(self, instruction: BlockwiseAttention) -> None:
        executor = self.executor
        buffers = executor.buffers[self.plan.device]
        scale = 1.0 / np.sqrt(executor.block_set.attention.head_dim)
        for tile in instruction.tiles:
            q = buffers.q_view(tile.q_slot)
            k, v = buffers.kv_view(tile.kv_slot)
            mask = executor.tile_mask(tile.seq_index, tile.q_block, tile.kv_block)
            state = buffers.acc_state(tile.acc_slot, q.shape[1])
            merge_partials(state, tile_attention(q, k, v, mask, scale))

    def _attention_backward(self, instruction: BlockwiseAttentionBackward) -> None:
        executor = self.executor
        buffers = executor.buffers[self.plan.device]
        scale = 1.0 / np.sqrt(executor.block_set.attention.head_dim)
        for tile in instruction.tiles:
            q = buffers.q_view(tile.q_slot)
            k, v = buffers.kv_view(tile.kv_slot)
            grad_out, lse, delta = buffers.do[tile.do_slot]
            mask = executor.tile_mask(tile.seq_index, tile.q_block,
                                      tile.kv_block)
            dq_tile, dk_tile, dv_tile = tile_backward(
                q, k, v, grad_out, lse, delta, mask, scale
            )
            buffers.dq_state(tile.dq_slot, q.shape[1])[...] += dq_tile
            dkv = buffers.dkv_state(tile.dkv_slot, k.shape[0])
            dkv[0] += dk_tile
            dkv[1] += dv_tile

    def _grad_reduce(self, instruction: BlockwiseGradReduce) -> None:
        buffers = self.executor.buffers[self.plan.device]
        for add in instruction.adds:
            store = buffers.dq if add.buffer == "dq" else buffers.dkv
            src = store[add.src_slot]
            dst = store.get(add.dst_slot)
            if dst is None or dst.shape != src.shape:
                store[add.dst_slot] = src.copy()
            else:
                dst += src

    def _reduction(self, instruction: BlockwiseReduction) -> None:
        buffers = self.executor.buffers[self.plan.device]
        for merge in instruction.merges:
            src = buffers.acc[merge.src_acc_slot]
            dst = buffers.acc_state(merge.dst_acc_slot, src.acc.shape[1])
            merge_partials(dst, src)
        for fin in instruction.finalizes:
            state = buffers.acc.get(fin.acc_slot)
            if state is None:
                continue  # output block never touched; stays zero
            buffers.store_o(fin.o_slot, finalize(state))

    def _copy(self, instruction: BlockwiseCopy) -> None:
        buffers = self.executor.buffers[self.plan.device]
        for copy in instruction.copies:
            if copy.buffer == "q":
                buffers.q[copy.dst_slot] = buffers.q[copy.src_slot]
                buffers.q_tokens[copy.dst_slot] = buffers.q_tokens[copy.src_slot]
            elif copy.buffer == "kv":
                buffers.kv[copy.dst_slot] = buffers.kv[copy.src_slot]
                buffers.kv_tokens[copy.dst_slot] = buffers.kv_tokens[copy.src_slot]
            elif copy.buffer == "o":
                buffers.o[copy.dst_slot] = buffers.o[copy.src_slot]
            elif copy.buffer == "acc":
                buffers.acc[copy.dst_slot] = buffers.acc[copy.src_slot].copy()
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot copy buffer {copy.buffer!r}")


class SimExecutor:
    """Execute an :class:`ExecutionPlan` over simulated devices."""

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan
        self.block_set: BlockSet = plan.block_set
        self.cluster = plan.cluster
        self.fabric = Fabric(self.cluster)
        attention = self.block_set.attention
        self.buffers: Dict[int, DeviceBuffers] = {
            device: DeviceBuffers(
                device_plan.buffer_sizes,
                attention.q_heads_per_group,
                self.block_set.block_size,
                attention.head_dim,
            )
            for device, device_plan in plan.device_plans.items()
        }
        self._mask_cache: Dict[Tuple[int, int, int], np.ndarray] = {}

    # -- masks -------------------------------------------------------------

    def tile_mask(self, seq_index: int, q_block: int, kv_block: int) -> np.ndarray:
        key = (seq_index, q_block, kv_block)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        bounds = self.block_set.seq_bounds[seq_index]
        ranges = self.block_set.seq_ranges[seq_index]
        q_start, q_stop = int(bounds[q_block]), int(bounds[q_block + 1])
        k_start, k_stop = int(bounds[kv_block]), int(bounds[kv_block + 1])
        mask = ranges.tile_mask(q_start, q_stop, k_start, k_stop)
        self._mask_cache[key] = mask
        return mask

    # -- data movement -------------------------------------------------------

    def load_inputs(self, inputs: BatchInputs) -> None:
        """Scatter per-sequence Q/K/V into each device's local slots."""
        attention = self.block_set.attention
        qpg = attention.q_heads_per_group
        for device_plan in self.plan.device_plans.values():
            buffers = self.buffers[device_plan.device]
            for key, slot in device_plan.q_slots.items():
                seq_index, block_index, head_group = key
                token_slice = self.block_set.slice_of(seq_index, block_index)
                heads = slice(head_group * qpg, (head_group + 1) * qpg)
                data = inputs.q[seq_index][heads, token_slice.start : token_slice.stop]
                buffers.load_q(slot, data)
            for key, slot in device_plan.kv_slots.items():
                seq_index, block_index, head_group = key
                token_slice = self.block_set.slice_of(seq_index, block_index)
                span = slice(token_slice.start, token_slice.stop)
                buffers.load_kv(
                    slot,
                    inputs.k[seq_index][head_group, span],
                    inputs.v[seq_index][head_group, span],
                )

    def run(self, max_cycles: int = 1_000_000) -> float:
        """Run all devices to completion; raise on deadlock.

        Returns the measured wall-clock seconds the execution took, so
        the overlap pipeline (:mod:`repro.pipeline`) can put measured
        execution time on the same axis as measured planning time.
        """
        start = time.perf_counter()
        runners = [
            _DeviceRunner(device_plan, self)
            for _, device_plan in sorted(self.plan.device_plans.items())
        ]
        for _ in range(max_cycles):
            if all(runner.done for runner in runners):
                return time.perf_counter() - start
            progressed = False
            for runner in runners:
                if not runner.done and runner.step():
                    progressed = True
            if not progressed:
                stuck = [r.plan.device for r in runners if not r.done]
                raise RuntimeError(
                    f"deadlock: devices {stuck} blocked, "
                    f"{self.fabric.pending_count()} messages pending"
                )
        raise RuntimeError("executor exceeded max cycles")

    def gather_outputs(self) -> List[np.ndarray]:
        """Assemble per-sequence outputs ``[num_q_heads, L, head_dim]``."""
        attention = self.block_set.attention
        qpg = attention.q_heads_per_group
        outputs = [
            np.zeros(
                (attention.num_q_heads, seq.seqlen, attention.head_dim),
                dtype=np.float32,
            )
            for seq in self.block_set.batch.sequences
        ]
        for device_plan in self.plan.device_plans.values():
            buffers = self.buffers[device_plan.device]
            for key, slot in device_plan.o_slots.items():
                seq_index, block_index, head_group = key
                token_slice = self.block_set.slice_of(seq_index, block_index)
                heads = slice(head_group * qpg, (head_group + 1) * qpg)
                outputs[seq_index][
                    heads, token_slice.start : token_slice.stop
                ] = buffers.o_view(slot, token_slice.tokens)
        return outputs
