"""Dense reference attention (single-device oracle).

Computes masked GQA attention per sequence the straightforward way, in
float32, materializing the full logit matrix.  Used only in tests and
the loss-curve experiment; intended for modest sequence lengths.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..blocks import AttentionSpec, BlockSet
from .executor import BatchInputs

__all__ = ["reference_attention", "reference_batch_outputs"]


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    q_heads_per_group: int,
) -> np.ndarray:
    """Dense masked attention for one sequence.

    Parameters
    ----------
    q:
        ``[num_q_heads, L, D]``.
    k, v:
        ``[num_kv_groups, L, D]``; query head ``h`` reads group
        ``h // q_heads_per_group``.
    mask:
        Boolean ``[L, L]``; fully masked rows produce zeros.
    """
    num_heads, length, head_dim = q.shape
    scale = np.float32(1.0 / np.sqrt(head_dim))
    out = np.zeros_like(q, dtype=np.float32)
    for head in range(num_heads):
        group = head // q_heads_per_group
        scores = (q[head].astype(np.float32) @ k[group].astype(np.float32).T) * scale
        scores = np.where(mask, scores, np.float32(-np.inf))
        row_max = scores.max(axis=1, keepdims=True)
        safe_max = np.where(np.isfinite(row_max), row_max, np.float32(0.0))
        weights = np.exp(scores - safe_max, dtype=np.float32)
        weights = np.where(mask, weights, np.float32(0.0))
        denom = weights.sum(axis=1, keepdims=True)
        has_any = denom > 0
        denom = np.where(has_any, denom, np.float32(1.0))
        out[head] = np.where(
            has_any, (weights / denom) @ v[group].astype(np.float32), np.float32(0.0)
        )
    return out


def reference_batch_outputs(
    block_set: BlockSet, inputs: BatchInputs
) -> List[np.ndarray]:
    """Reference outputs for every sequence of a batch."""
    attention: AttentionSpec = block_set.attention
    outputs = []
    for seq_index, seq in enumerate(block_set.batch.sequences):
        mask = seq.mask.dense(seq.seqlen)
        outputs.append(
            reference_attention(
                inputs.q[seq_index],
                inputs.k[seq_index],
                inputs.v[seq_index],
                mask,
                attention.q_heads_per_group,
            )
        )
    return outputs
