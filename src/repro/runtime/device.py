"""Per-device block buffers for the simulated executor (paper §5).

One contiguous buffer per block type, addressed by slot index — the
executor's analogue of the paper's block tables.  Storage is float32
(the simulator's working precision); wire sizes in the plan account for
bf16 independently.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..runtime.kernels import AttnPartial, empty_partial

__all__ = ["DeviceBuffers"]


class DeviceBuffers:
    """Q/KV/O/acc buffers of one simulated device."""

    def __init__(
        self,
        sizes: Dict[str, int],
        q_heads: int,
        block_size: int,
        head_dim: int,
    ) -> None:
        self.q_heads = q_heads
        self.block_size = block_size
        self.head_dim = head_dim
        shape_q = (q_heads, block_size, head_dim)
        self.q = np.zeros((sizes.get("q", 0),) + shape_q, dtype=np.float32)
        self.kv = np.zeros(
            (sizes.get("kv", 0), 2, block_size, head_dim), dtype=np.float32
        )
        self.o = np.zeros((sizes.get("o", 0),) + shape_q, dtype=np.float32)
        self.acc: Dict[int, Optional[AttnPartial]] = {
            slot: None for slot in range(sizes.get("acc", 0))
        }
        # Backward-pass buffers (allocated lazily, keyed by slot):
        # do: (grad_out [h, t, d], lse [h, t], delta [h, t]);
        # dq: running sum [h, t, d]; dkv: running sum [2, t, d].
        self.do: Dict[int, tuple] = {}
        self.dq: Dict[int, Optional[np.ndarray]] = {}
        self.dkv: Dict[int, Optional[np.ndarray]] = {}
        # Valid token counts per slot (last block of a sequence is short).
        self.q_tokens = np.zeros(sizes.get("q", 0), dtype=np.int64)
        self.kv_tokens = np.zeros(sizes.get("kv", 0), dtype=np.int64)

    # -- input staging ----------------------------------------------------

    def load_q(self, slot: int, data: np.ndarray) -> None:
        tokens = data.shape[1]
        self.q[slot, :, :tokens] = data
        self.q_tokens[slot] = tokens

    def load_kv(self, slot: int, k: np.ndarray, v: np.ndarray) -> None:
        tokens = k.shape[0]
        self.kv[slot, 0, :tokens] = k
        self.kv[slot, 1, :tokens] = v
        self.kv_tokens[slot] = tokens

    def q_view(self, slot: int) -> np.ndarray:
        return self.q[slot, :, : self.q_tokens[slot]]

    def kv_view(self, slot: int):
        tokens = self.kv_tokens[slot]
        return self.kv[slot, 0, :tokens], self.kv[slot, 1, :tokens]

    # -- accumulator management -------------------------------------------

    def acc_state(self, slot: int, rows: int) -> AttnPartial:
        state = self.acc.get(slot)
        if state is None or state.acc.shape[1] != rows:
            state = empty_partial(self.q_heads, rows, self.head_dim)
            self.acc[slot] = state
        return state

    def set_acc(self, slot: int, state: AttnPartial) -> None:
        self.acc[slot] = state

    def store_o(self, slot: int, data: np.ndarray) -> None:
        tokens = data.shape[1]
        self.o[slot, :, :tokens] = data

    def o_view(self, slot: int, tokens: int) -> np.ndarray:
        return self.o[slot, :, :tokens]

    # -- backward-pass buffers ----------------------------------------------

    def load_do(self, slot: int, grad_out, lse, delta) -> None:
        self.do[slot] = (grad_out, lse, delta)

    def dq_state(self, slot: int, tokens: int) -> np.ndarray:
        state = self.dq.get(slot)
        if state is None or state.shape[1] != tokens:
            state = np.zeros((self.q_heads, tokens, self.head_dim),
                             dtype=np.float32)
            self.dq[slot] = state
        return state

    def dkv_state(self, slot: int, tokens: int) -> np.ndarray:
        state = self.dkv.get(slot)
        if state is None or state.shape[1] != tokens:
            state = np.zeros((2, tokens, self.head_dim), dtype=np.float32)
            self.dkv[slot] = state
        return state
