"""Distributed attention forward + backward on the simulated cluster.

Orchestrates a complete attention autograd step from one division
schedule: run the forward plan (saving per-block log-sum-exp like
FlashAttention), build the output-gradient packages at each output
block's home, run the backward plan, and gather dQ/dK/dV — all through
the same five-instruction executor and fabric.

Baselines keep the paper's analytic backward cost model; this module
exists for DCP plans, where the backward pass shares the forward
placement and divisions (see :mod:`repro.scheduling.backward`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..scheduling.backward import serialize_backward_schedule
from ..scheduling.divisions import Schedule
from ..scheduling.serialize import serialize_schedule
from .executor import BatchInputs, SimExecutor
from .kernels import finalize_with_lse

__all__ = [
    "AttentionGrads",
    "run_forward_backward",
    "run_plans_forward_backward",
]


@dataclass
class AttentionGrads:
    """Per-sequence attention gradients."""

    dq: List[np.ndarray]  # [num_q_heads, L, head_dim]
    dk: List[np.ndarray]  # [num_kv_groups, L, head_dim]
    dv: List[np.ndarray]


def run_plans_forward_backward(
    forward_plan,
    backward_plan,
    inputs: BatchInputs,
    grad_outputs: List[np.ndarray],
    init_dkv: bool = False,
) -> Tuple[List[np.ndarray], AttentionGrads, SimExecutor, SimExecutor]:
    """Execute a (forward, backward) plan pair and gather gradients.

    Works for any planner whose plans expose ``acc_slots`` (forward)
    and ``do/dq/dkv`` slot maps (backward).  ``init_dkv=True``
    pre-zeros every local dKV accumulator before running — required by
    ring backward, where accumulators circulate even through devices
    that contribute nothing to them.
    """
    block_set = forward_plan.block_set
    attention = block_set.attention
    qpg = attention.q_heads_per_group

    # -- forward ----------------------------------------------------------
    forward = SimExecutor(forward_plan)
    forward.load_inputs(inputs)
    forward.run()
    outputs = forward.gather_outputs()

    # -- stage backward inputs ---------------------------------------------
    backward = SimExecutor(backward_plan)
    backward.load_inputs(inputs)

    for device, device_plan in backward_plan.device_plans.items():
        forward_buffers = forward.buffers[device]
        forward_acc = forward_plan.device_plans[device].acc_slots
        buffers = backward.buffers[device]
        for key, do_slot in device_plan.do_slots.items():
            seq_index, block_index, head_group = key
            token_slice = block_set.slice_of(seq_index, block_index)
            heads = slice(head_group * qpg, (head_group + 1) * qpg)
            span = slice(token_slice.start, token_slice.stop)
            grad_block = grad_outputs[seq_index][heads, span].astype(
                np.float32
            )
            state = forward_buffers.acc.get(forward_acc.get(key, -1))
            if state is None:
                # No attention computed for these rows: zero package.
                lse = np.full(
                    (qpg, token_slice.tokens), -np.inf, dtype=np.float32
                )
                out_block = np.zeros_like(grad_block)
            else:
                out_block, lse = finalize_with_lse(state)
            delta = (grad_block * out_block).sum(axis=2).astype(np.float32)
            buffers.load_do(do_slot, grad_block, lse, delta)
        if init_dkv:
            for key, dkv_slot in device_plan.dkv_slots.items():
                tokens = block_set.slice_of(key[0], key[1]).tokens
                buffers.dkv_state(dkv_slot, tokens)

    # -- backward ------------------------------------------------------------
    backward.run()

    # -- gather gradients at their home devices -------------------------------
    home_of_slice: Dict[Tuple[int, int], int] = {}
    for device, device_plan in backward_plan.device_plans.items():
        for token_slice in device_plan.local_slices:
            home_of_slice[
                (token_slice.seq_index, token_slice.block_index)
            ] = device

    dq = [
        np.zeros(
            (attention.num_q_heads, seq.seqlen, attention.head_dim),
            dtype=np.float32,
        )
        for seq in block_set.batch.sequences
    ]
    dk = [
        np.zeros(
            (attention.num_kv_groups, seq.seqlen, attention.head_dim),
            dtype=np.float32,
        )
        for seq in block_set.batch.sequences
    ]
    dv = [np.zeros_like(arr) for arr in dk]

    for token_slice in block_set.token_slices:
        device = home_of_slice[(token_slice.seq_index, token_slice.block_index)]
        buffers = backward.buffers[device]
        device_plan = backward_plan.device_plans[device]
        span = slice(token_slice.start, token_slice.stop)
        for head_group in range(attention.head_groups):
            key = (token_slice.seq_index, token_slice.block_index, head_group)
            heads = slice(head_group * qpg, (head_group + 1) * qpg)
            dq_slot = device_plan.dq_slots.get(key)
            if dq_slot is not None and buffers.dq.get(dq_slot) is not None:
                dq[token_slice.seq_index][heads, span] = buffers.dq[dq_slot]
            dkv_slot = device_plan.dkv_slots.get(key)
            if dkv_slot is not None and buffers.dkv.get(dkv_slot) is not None:
                dkv = buffers.dkv[dkv_slot]
                dk[token_slice.seq_index][head_group, span] = dkv[0]
                dv[token_slice.seq_index][head_group, span] = dkv[1]

    return outputs, AttentionGrads(dq=dq, dk=dk, dv=dv), forward, backward


def run_forward_backward(
    schedule: Schedule,
    inputs: BatchInputs,
    grad_outputs: List[np.ndarray],
) -> Tuple[List[np.ndarray], AttentionGrads, SimExecutor, SimExecutor]:
    """Execute DCP attention forward and backward for one batch.

    Serializes both plans from ``schedule`` and delegates to
    :func:`run_plans_forward_backward`.
    """
    forward_plan = serialize_schedule(schedule)
    backward_plan = serialize_backward_schedule(schedule)
    return run_plans_forward_backward(
        forward_plan, backward_plan, inputs, grad_outputs
    )
