"""CLI package: ``python -m repro.plan`` (see repro.plan_cli)."""
