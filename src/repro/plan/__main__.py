"""``python -m repro.plan`` — see :mod:`repro.plan_cli`."""

import sys

from ..plan_cli import main

sys.exit(main())
