"""Hypergraph construction from a BlockSet (paper §4.2, Fig. 12).

Vertices:

* one *token-group* vertex per :class:`TokenSlice`, weight
  ``[0, bytes]`` aggregating all of its Q/KV/O head-blocks (this encodes
  the paper's constraint that Q/KV/O of the same tokens co-locate);
* one vertex per computation block, weight ``[flops, 0]``.

Hyperedges: one per *data block* (token slice x head group x tensor
kind), pinning the block's home vertex together with every computation
block that reads or writes it; edge weight = the block's bytes.  The
connectivity-minus-one metric of a partition then equals the placement's
total communication volume.

Construction is fully vectorized: every computation block contributes
three integer-encoded (kind, sequence, block, head group) keys, one
``np.unique`` pass groups them into edges (sorted exactly like the old
``sorted(users.items())`` loop), and the CSR pin structure is emitted
with one lexsort — no per-block Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..blocks import BlockKind, BlockSet, CompBlock, DataBlockId, TokenSlice
from ..hypergraph import Hypergraph
from .keys import KIND_RANK, RANK_KIND, BlockKeyCodec

__all__ = ["BlockHypergraph", "build_block_hypergraph"]


@dataclass
class BlockHypergraph:
    """A hypergraph plus the block <-> vertex correspondence.

    Vertex numbering: token slices occupy ``[0, len(slices))`` in the
    order of ``block_set.token_slices``; computation blocks follow in
    the order of ``block_set.comp_array``.
    """

    graph: Hypergraph
    block_set: BlockSet
    slice_vertex: Dict[Tuple[int, int], int]
    edge_blocks: List[DataBlockId]

    @property
    def num_slices(self) -> int:
        return len(self.block_set.token_slices)

    @property
    def comp_vertex(self) -> Dict[CompBlock, int]:
        """Computation block -> vertex id (lazy; prefer array offsets)."""
        cached = self.__dict__.get("_comp_vertex")
        if cached is None:
            offset = self.num_slices
            cached = {
                comp: offset + index
                for index, comp in enumerate(self.block_set.comp_blocks)
            }
            self.__dict__["_comp_vertex"] = cached
        return cached

    def vertex_of_slice(self, token_slice: TokenSlice) -> int:
        return self.slice_vertex[(token_slice.seq_index, token_slice.block_index)]

    def labels_to_devices(self, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a vertex label vector into (slice labels, comp labels)."""
        return labels[: self.num_slices], labels[self.num_slices :]

    def induced_subgraph(
        self, vertices: Sequence[int]
    ) -> Tuple[Hypergraph, np.ndarray]:
        """Subgraph on ``vertices``; returns it plus the original ids.

        Edges keep only local pins; edges left with fewer than two pins
        are dropped (they cannot contribute connectivity).
        """
        graph = self.graph
        vertices = np.asarray(sorted(vertices), dtype=np.int64)
        member = np.zeros(graph.num_vertices, dtype=bool)
        member[vertices] = True
        pin_kept = member[graph.edge_pins]
        kept_sizes = np.bincount(
            graph.pin_edge_ids[pin_kept], minlength=graph.num_edges
        )
        edge_kept = kept_sizes >= 2
        final = pin_kept & edge_kept[graph.pin_edge_ids]
        # Pins stay sorted per edge, and the monotone global->local
        # renumbering preserves that invariant.
        pins_flat = np.searchsorted(vertices, graph.edge_pins[final])
        sizes = kept_sizes[edge_kept]
        indptr = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        sub = Hypergraph.from_csr(
            graph.weights[vertices],
            indptr,
            pins_flat,
            graph.edge_weights[edge_kept],
        )
        return sub, vertices


def build_block_hypergraph(block_set: BlockSet) -> BlockHypergraph:
    """Build the placement hypergraph for one batch."""
    slices = block_set.token_slices
    comp = block_set.comp_array
    attention = block_set.attention
    num_slices = len(slices)
    num_comps = len(comp)

    weights = np.zeros((num_slices + num_comps, 2), dtype=np.int64)
    slice_tokens = block_set.slice_tokens
    weights[:num_slices, 1] = attention.slice_bytes(slice_tokens)
    weights[num_slices:, 0] = attention.tile_flops(comp.pairs)

    slice_vertex: Dict[Tuple[int, int], int] = {
        (ts.seq_index, ts.block_index): index
        for index, ts in enumerate(slices)
    }

    # Each computation block touches three data blocks; encode their
    # (kind, seq, block, head group) identities as scalar keys whose
    # ascending order equals DataBlockId's lexicographic order.
    codec = BlockKeyCodec(block_set)
    entry_keys = np.concatenate(
        [
            codec.encode(BlockKind.Q, comp.seq_index, comp.q_block, comp.head_group),
            codec.encode(BlockKind.KV, comp.seq_index, comp.kv_block, comp.head_group),
            codec.encode(BlockKind.O, comp.seq_index, comp.q_block, comp.head_group),
        ]
    ) if num_comps else np.zeros(0, dtype=np.int64)
    unique_keys, edge_of_entry = np.unique(entry_keys, return_inverse=True)
    num_edges = len(unique_keys)

    # Decode each edge's data-block identity.
    rank, seq, block, group = codec.decode(unique_keys)
    home_vertex = block_set.slice_indices(seq, block)

    # CSR pins: the home slice vertex plus every computation vertex
    # touching the block, sorted per edge by one lexsort.
    comp_vertices = num_slices + np.arange(num_comps, dtype=np.int64)
    pin_edges = np.concatenate([np.arange(num_edges, dtype=np.int64),
                                edge_of_entry])
    pin_vertices = np.concatenate([home_vertex,
                                   np.tile(comp_vertices, 3)])
    order = np.lexsort((pin_vertices, pin_edges))
    edge_pins = pin_vertices[order]
    sizes = np.bincount(pin_edges, minlength=num_edges)
    edge_indptr = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(sizes, out=edge_indptr[1:])

    # Edge weights: the data block's bytes by kind.
    tokens = slice_tokens[home_vertex]
    q_bytes = attention.q_heads_per_group * tokens * attention.head_dim * attention.dtype_bytes
    kv_bytes = 2 * tokens * attention.head_dim * attention.dtype_bytes
    edge_weights = np.where(rank == KIND_RANK[BlockKind.KV], kv_bytes, q_bytes)

    edge_blocks = [
        DataBlockId(RANK_KIND[r], s, b, g)
        for r, s, b, g in zip(
            rank.tolist(), seq.tolist(), block.tolist(), group.tolist()
        )
    ]

    graph = Hypergraph.from_csr(weights, edge_indptr, edge_pins, edge_weights)
    return BlockHypergraph(
        graph=graph,
        block_set=block_set,
        slice_vertex=slice_vertex,
        edge_blocks=edge_blocks,
    )
