"""Hypergraph construction from a BlockSet (paper §4.2, Fig. 12).

Vertices:

* one *token-group* vertex per :class:`TokenSlice`, weight
  ``[0, bytes]`` aggregating all of its Q/KV/O head-blocks (this encodes
  the paper's constraint that Q/KV/O of the same tokens co-locate);
* one vertex per :class:`CompBlock`, weight ``[flops, 0]``.

Hyperedges: one per *data block* (token slice x head group x tensor
kind), pinning the block's home vertex together with every computation
block that reads or writes it; edge weight = the block's bytes.  The
connectivity-minus-one metric of a partition then equals the placement's
total communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..blocks import BlockKind, BlockSet, CompBlock, DataBlockId, TokenSlice
from ..hypergraph import Hypergraph

__all__ = ["BlockHypergraph", "build_block_hypergraph"]


@dataclass
class BlockHypergraph:
    """A hypergraph plus the block <-> vertex correspondence.

    Vertex numbering: token slices occupy ``[0, len(slices))`` in the
    order of ``block_set.token_slices``; computation blocks follow in
    the order of ``block_set.comp_blocks``.
    """

    graph: Hypergraph
    block_set: BlockSet
    slice_vertex: Dict[Tuple[int, int], int]
    comp_vertex: Dict[CompBlock, int]
    edge_blocks: List[DataBlockId]

    @property
    def num_slices(self) -> int:
        return len(self.block_set.token_slices)

    def vertex_of_slice(self, token_slice: TokenSlice) -> int:
        return self.slice_vertex[(token_slice.seq_index, token_slice.block_index)]

    def labels_to_devices(self, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a vertex label vector into (slice labels, comp labels)."""
        return labels[: self.num_slices], labels[self.num_slices :]

    def induced_subgraph(
        self, vertices: Sequence[int]
    ) -> Tuple[Hypergraph, np.ndarray]:
        """Subgraph on ``vertices``; returns it plus the original ids.

        Edges keep only local pins; edges left with fewer than two pins
        are dropped (they cannot contribute connectivity).
        """
        vertices = np.asarray(sorted(vertices), dtype=np.int64)
        local_of = {int(v): i for i, v in enumerate(vertices)}
        weights = self.graph.weights[vertices]
        pins: List[List[int]] = []
        edge_weights: List[int] = []
        for edge_index, pin in enumerate(self.graph.pins):
            local = [local_of[int(v)] for v in pin if int(v) in local_of]
            if len(local) >= 2:
                pins.append(local)
                edge_weights.append(int(self.graph.edge_weights[edge_index]))
        return Hypergraph(weights, pins, edge_weights), vertices


def build_block_hypergraph(block_set: BlockSet) -> BlockHypergraph:
    """Build the placement hypergraph for one batch."""
    slices = block_set.token_slices
    comps = block_set.comp_blocks
    num_slices = len(slices)

    weights = np.zeros((num_slices + len(comps), 2), dtype=np.int64)
    slice_vertex: Dict[Tuple[int, int], int] = {}
    for index, token_slice in enumerate(slices):
        slice_vertex[(token_slice.seq_index, token_slice.block_index)] = index
        weights[index, 1] = block_set.slice_bytes(token_slice)

    comp_vertex: Dict[CompBlock, int] = {}
    for offset, comp in enumerate(comps):
        vertex = num_slices + offset
        comp_vertex[comp] = vertex
        weights[vertex, 0] = block_set.comp_flops(comp)

    # Group computation vertices by the data blocks they touch.
    users: Dict[DataBlockId, List[int]] = {}
    for comp, vertex in comp_vertex.items():
        users.setdefault(comp.q_input, []).append(vertex)
        users.setdefault(comp.kv_input, []).append(vertex)
        users.setdefault(comp.output, []).append(vertex)

    pins: List[List[int]] = []
    edge_weights: List[int] = []
    edge_blocks: List[DataBlockId] = []
    for block, comp_vertices in sorted(users.items()):
        home = slice_vertex[(block.seq_index, block.block_index)]
        pins.append([home] + comp_vertices)
        edge_weights.append(block_set.block_bytes(block))
        edge_blocks.append(block)

    graph = Hypergraph(weights, pins, edge_weights)
    return BlockHypergraph(
        graph=graph,
        block_set=block_set,
        slice_vertex=slice_vertex,
        comp_vertex=comp_vertex,
        edge_blocks=edge_blocks,
    )
