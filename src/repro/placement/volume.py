"""Communication-volume accounting for a placement.

Given device assignments for token slices and computation blocks, this
module computes exactly which data blocks move between which devices:

* **Q/KV blocks** travel from their home device to every *distinct*
  remote device that computes with them (one copy per device, however
  many computation blocks use it there).
* **O blocks** travel in the opposite direction: each remote device that
  produced partial output for the block sends one partial back to the
  block's home device for reduction.

The resulting total equals the hypergraph connectivity metric, which the
tests assert.  The (block, device) demand sets are computed with one
``np.unique`` pass over integer-encoded keys instead of per-block
Python dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..blocks import BlockKind, BlockSet, DataBlockId
from ..sim.cluster import ClusterSpec
from .keys import KIND_RANK, RANK_KIND, BlockKeyCodec

__all__ = ["Transfer", "CommReport", "communication_report"]


@dataclass(frozen=True)
class Transfer:
    """One data block moving from ``src`` to ``dst`` device."""

    block: DataBlockId
    src: int
    dst: int
    nbytes: int


@dataclass
class CommReport:
    """All transfers a placement induces, with aggregate views."""

    transfers: List[Transfer]
    num_devices: int
    cluster: ClusterSpec = None

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    @property
    def inter_machine_bytes(self) -> int:
        if self.cluster is None:
            return 0
        return sum(
            t.nbytes
            for t in self.transfers
            if not self.cluster.same_machine(t.src, t.dst)
        )

    def per_device_bytes(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sent, received) bytes per device."""
        sent = np.zeros(self.num_devices, dtype=np.int64)
        received = np.zeros(self.num_devices, dtype=np.int64)
        for transfer in self.transfers:
            sent[transfer.src] += transfer.nbytes
            received[transfer.dst] += transfer.nbytes
        return sent, received

    def max_device_bytes(self) -> int:
        """Max per-device communication (send + receive), paper Fig. 17."""
        sent, received = self.per_device_bytes()
        if self.num_devices == 0:
            return 0
        return int((sent + received).max())


def communication_report(
    block_set: BlockSet,
    slice_device: np.ndarray,
    comp_device: np.ndarray,
    num_devices: int,
    cluster: ClusterSpec = None,
) -> CommReport:
    """Enumerate every transfer a placement induces.

    ``slice_device`` is indexed like ``block_set.token_slices`` and
    ``comp_device`` like ``block_set.comp_array``.
    """
    if len(slice_device) != len(block_set.token_slices):
        raise ValueError("one device per token slice required")
    comp = block_set.comp_array
    if len(comp_device) != len(comp):
        raise ValueError("one device per computation block required")

    slice_device = np.asarray(slice_device, dtype=np.int64)
    comp_device = np.asarray(comp_device, dtype=np.int64)
    attention = block_set.attention
    codec = BlockKeyCodec(block_set)
    slice_tokens = block_set.slice_tokens

    def transfers_for(keys: np.ndarray, to_home: bool) -> List[Transfer]:
        """Unique (block, device) demands -> transfers, in sorted order."""
        if len(keys) == 0:
            return []
        pairs = np.unique(keys * num_devices + np.tile(comp_device, len(keys) // len(comp)))
        block_keys = pairs // num_devices
        devices = pairs % num_devices
        rank, seq, block, group = codec.decode(block_keys)
        slice_index = block_set.slice_indices(seq, block)
        home = slice_device[slice_index]
        tokens = slice_tokens[slice_index]
        nbytes = np.where(
            rank == KIND_RANK[BlockKind.KV],
            2 * tokens * attention.head_dim * attention.dtype_bytes,
            attention.q_heads_per_group
            * tokens
            * attention.head_dim
            * attention.dtype_bytes,
        )
        out: List[Transfer] = []
        remote = devices != home
        for r, s, b, g, device, h, nb in zip(
            rank[remote].tolist(),
            seq[remote].tolist(),
            block[remote].tolist(),
            group[remote].tolist(),
            devices[remote].tolist(),
            home[remote].tolist(),
            nbytes[remote].tolist(),
        ):
            data_block = DataBlockId(RANK_KIND[r], s, b, g)
            if to_home:
                out.append(Transfer(data_block, device, h, nb))
            else:
                out.append(Transfer(data_block, h, device, nb))
        return out

    # Readers pull Q and KV blocks from their homes; writers push O
    # partials back.  Key order reproduces the sorted-dict iteration of
    # the scalar implementation (blocks ascending, then devices).
    reader_keys = (
        np.concatenate(
            [
                codec.encode(
                    BlockKind.Q, comp.seq_index, comp.q_block, comp.head_group
                ),
                codec.encode(
                    BlockKind.KV, comp.seq_index, comp.kv_block, comp.head_group
                ),
            ]
        )
        if len(comp)
        else np.zeros(0, dtype=np.int64)
    )
    writer_keys = (
        codec.encode(
            BlockKind.O, comp.seq_index, comp.q_block, comp.head_group
        )
        if len(comp)
        else np.zeros(0, dtype=np.int64)
    )

    transfers = transfers_for(reader_keys, to_home=False)
    transfers.extend(transfers_for(writer_keys, to_home=True))
    return CommReport(transfers=transfers, num_devices=num_devices, cluster=cluster)
