"""Communication-volume accounting for a placement.

Given device assignments for token slices and computation blocks, this
module computes exactly which data blocks move between which devices:

* **Q/KV blocks** travel from their home device to every *distinct*
  remote device that computes with them (one copy per device, however
  many computation blocks use it there).
* **O blocks** travel in the opposite direction: each remote device that
  produced partial output for the block sends one partial back to the
  block's home device for reduction.

The resulting total equals the hypergraph connectivity metric, which the
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..blocks import BlockKind, BlockSet, DataBlockId
from ..sim.cluster import ClusterSpec

__all__ = ["Transfer", "CommReport", "communication_report"]


@dataclass(frozen=True)
class Transfer:
    """One data block moving from ``src`` to ``dst`` device."""

    block: DataBlockId
    src: int
    dst: int
    nbytes: int


@dataclass
class CommReport:
    """All transfers a placement induces, with aggregate views."""

    transfers: List[Transfer]
    num_devices: int
    cluster: ClusterSpec = None

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    @property
    def inter_machine_bytes(self) -> int:
        if self.cluster is None:
            return 0
        return sum(
            t.nbytes
            for t in self.transfers
            if not self.cluster.same_machine(t.src, t.dst)
        )

    def per_device_bytes(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sent, received) bytes per device."""
        sent = np.zeros(self.num_devices, dtype=np.int64)
        received = np.zeros(self.num_devices, dtype=np.int64)
        for transfer in self.transfers:
            sent[transfer.src] += transfer.nbytes
            received[transfer.dst] += transfer.nbytes
        return sent, received

    def max_device_bytes(self) -> int:
        """Max per-device communication (send + receive), paper Fig. 17."""
        sent, received = self.per_device_bytes()
        if self.num_devices == 0:
            return 0
        return int((sent + received).max())


def communication_report(
    block_set: BlockSet,
    slice_device: np.ndarray,
    comp_device: np.ndarray,
    num_devices: int,
    cluster: ClusterSpec = None,
) -> CommReport:
    """Enumerate every transfer a placement induces.

    ``slice_device`` is indexed like ``block_set.token_slices`` and
    ``comp_device`` like ``block_set.comp_blocks``.
    """
    if len(slice_device) != len(block_set.token_slices):
        raise ValueError("one device per token slice required")
    if len(comp_device) != len(block_set.comp_blocks):
        raise ValueError("one device per computation block required")

    slice_index = {
        (ts.seq_index, ts.block_index): i
        for i, ts in enumerate(block_set.token_slices)
    }

    # data block -> set of devices that need it (excluding home)
    readers: Dict[DataBlockId, set] = {}
    writers: Dict[DataBlockId, set] = {}
    for comp, device in zip(block_set.comp_blocks, comp_device):
        device = int(device)
        readers.setdefault(comp.q_input, set()).add(device)
        readers.setdefault(comp.kv_input, set()).add(device)
        writers.setdefault(comp.output, set()).add(device)

    transfers: List[Transfer] = []
    for block, devices in sorted(readers.items()):
        home = int(slice_device[slice_index[(block.seq_index, block.block_index)]])
        nbytes = block_set.block_bytes(block)
        for device in sorted(devices):
            if device != home:
                transfers.append(Transfer(block, home, device, nbytes))
    for block, devices in sorted(writers.items()):
        home = int(slice_device[slice_index[(block.seq_index, block.block_index)]])
        nbytes = block_set.block_bytes(block)
        for device in sorted(devices):
            if device != home:
                transfers.append(Transfer(block, device, home, nbytes))

    return CommReport(transfers=transfers, num_devices=num_devices, cluster=cluster)
