"""Hierarchical placement of data/computation blocks onto devices."""

from .build import BlockHypergraph, build_block_hypergraph
from .heuristics import dp_pack_labels, zigzag_chunk_device, zigzag_labels
from .hierarchical import Placement, PlacementConfig, place_blocks
from .volume import CommReport, Transfer, communication_report

__all__ = [
    "BlockHypergraph",
    "build_block_hypergraph",
    "zigzag_chunk_device",
    "zigzag_labels",
    "dp_pack_labels",
    "Placement",
    "PlacementConfig",
    "place_blocks",
    "CommReport",
    "Transfer",
    "communication_report",
]
