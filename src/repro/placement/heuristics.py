"""Heuristic placements used as partitioner warm starts and baselines.

``zigzag`` reproduces the placement every static-CP framework uses for
causal masks (paper Fig. 4): each sequence is cut into ``2k`` chunks and
device ``i`` takes chunks ``i`` and ``2k - 1 - i``, balancing causal
work.  ``dp_pack`` is pure data parallelism: whole sequences bin-packed
onto devices (LPT), no CP communication at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .build import BlockHypergraph

__all__ = ["zigzag_chunk_device", "zigzag_labels", "dp_pack_labels"]


def zigzag_chunk_device(index: int, total: int, k: int) -> int:
    """Device for slice ``index`` of ``total`` under zigzag over ``k``.

    >>> [zigzag_chunk_device(i, 8, 4) for i in range(8)]
    [0, 1, 2, 3, 3, 2, 1, 0]
    """
    if total < 1 or not 0 <= index < total:
        raise ValueError("index outside sequence")
    chunk = index * 2 * k // total if total > 2 * k else index % (2 * k)
    chunk = min(chunk, 2 * k - 1)
    return chunk if chunk < k else 2 * k - 1 - chunk


def _grouped_slices(
    bhg: BlockHypergraph, subset: Optional[Sequence[int]]
) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
    """Group slice vertex ids by sequence; also map vertex -> local pos.

    ``subset`` (original vertex ids) restricts the view for machine-local
    warm starts; None means the whole graph.
    """
    num_slices = bhg.num_slices
    if subset is None:
        slice_vertices: Iterable[int] = range(num_slices)
    else:
        slice_vertices = [v for v in subset if v < num_slices]
    by_seq: Dict[int, List[int]] = {}
    for vertex in slice_vertices:
        token_slice = bhg.block_set.token_slices[vertex]
        by_seq.setdefault(token_slice.seq_index, []).append(vertex)
    for vertices in by_seq.values():
        vertices.sort(key=lambda v: bhg.block_set.token_slices[v].block_index)
    return by_seq, {}


def _finalize(
    bhg: BlockHypergraph,
    subset: Optional[Sequence[int]],
    slice_label: Dict[int, int],
    k: int,
) -> np.ndarray:
    """Fill computation-block labels (follow Q) and pack the output.

    When ``subset`` is given the output is aligned with
    ``sorted(subset)`` — the vertex order of ``induced_subgraph``.
    Computation labels are filled in one vectorized lookup over the
    columnar block arrays.
    """
    num_slices = bhg.num_slices
    block_set = bhg.block_set
    if subset is None:
        vertices = np.arange(bhg.graph.num_vertices, dtype=np.int64)
    else:
        vertices = np.asarray(sorted(int(v) for v in subset), dtype=np.int64)

    # Dense slice-vertex -> label table; -1 marks slices outside the
    # subset (their machine-local label is unknown here).
    slice_table = np.full(num_slices, -1, dtype=np.int64)
    for vertex, label in slice_label.items():
        slice_table[vertex] = label

    labels = np.zeros(len(vertices), dtype=np.int64)
    is_slice = vertices < num_slices
    slice_labels = slice_table[vertices[is_slice]]
    if (slice_labels < 0).any():
        missing = vertices[is_slice][slice_labels < 0]
        raise KeyError(
            f"slice vertices {missing.tolist()} have no heuristic label"
        )
    labels[is_slice] = slice_labels

    comp_rows = vertices[~is_slice] - num_slices
    if len(comp_rows):
        comp = block_set.comp_array
        seq = comp.seq_index[comp_rows]
        q_block = comp.q_block[comp_rows]
        q_vertex = block_set.slice_indices(seq, q_block)
        comp_labels = slice_table[q_vertex]
        missing = comp_labels < 0
        if missing.any():  # Q lives on another machine; spread deterministically.
            comp_labels[missing] = (
                q_block[missing] + comp.head_group[comp_rows][missing]
            ) % k
        labels[~is_slice] = comp_labels
    return labels


def zigzag_labels(
    bhg: BlockHypergraph, k: int, subset: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Zigzag warm start: static CP's causal-balanced placement."""
    by_seq, _ = _grouped_slices(bhg, subset)
    slice_label: Dict[int, int] = {}
    for vertices in by_seq.values():
        total = len(vertices)
        for position, vertex in enumerate(vertices):
            slice_label[vertex] = zigzag_chunk_device(position, total, k)
    return _finalize(bhg, subset, slice_label, k)


def dp_pack_labels(
    bhg: BlockHypergraph, k: int, subset: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Data-parallel warm start: whole sequences LPT-packed by tokens."""
    by_seq, _ = _grouped_slices(bhg, subset)
    loads = np.zeros(k, dtype=np.int64)
    slice_label: Dict[int, int] = {}
    seq_tokens = {
        seq: sum(bhg.block_set.token_slices[v].tokens for v in vertices)
        for seq, vertices in by_seq.items()
    }
    for seq in sorted(by_seq, key=lambda s: -seq_tokens[s]):
        device = int(np.argmin(loads))
        loads[device] += seq_tokens[seq]
        for vertex in by_seq[seq]:
            slice_label[vertex] = device
    return _finalize(bhg, subset, slice_label, k)
