"""Hierarchical data/computation placement (paper §4.2).

Level 1 assigns blocks to machines, minimizing inter-machine volume
under a loose computation-balance tolerance (the paper uses
``eps = 0.4`` between nodes); level 2 places each machine's blocks onto
its devices under a tight tolerance (``eps = 0.1``).  Both levels run
the multilevel hypergraph partitioner with zigzag and DP-packing warm
starts, so the result communicates no more than static CP or pure DP
would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..blocks import BlockSet, CompBlock, TokenSlice
from ..hypergraph import BalanceConstraint, partition_hypergraph, repair_labels
from ..sim.cluster import ClusterSpec
from .build import BlockHypergraph, build_block_hypergraph
from .heuristics import dp_pack_labels, zigzag_labels
from .volume import CommReport, communication_report

__all__ = ["PlacementConfig", "Placement", "place_blocks"]


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs of the placement optimizer (paper §7.1 hyper-parameters)."""

    eps_inter: float = 0.4
    eps_intra: float = 0.1
    eps_data: float = 0.08
    seed: int = 0
    restarts: int = 2
    refine_passes: int = 5
    use_warm_starts: bool = True


@dataclass
class Placement:
    """Device assignment for every token slice and computation block."""

    block_set: BlockSet
    cluster: ClusterSpec
    slice_device: np.ndarray
    comp_device: np.ndarray
    #: Size of the placement hypergraph (surfaced in PlanningStats).
    num_vertices: int = 0
    num_edges: int = 0

    def device_of_slice(self, token_slice: TokenSlice) -> int:
        index = self.block_set.token_slices.index(token_slice)
        return int(self.slice_device[index])

    def device_of_comp(self, comp: CompBlock) -> int:
        index = self.block_set.comp_blocks.index(comp)
        return int(self.comp_device[index])

    def tokens_per_device(self) -> np.ndarray:
        out = np.zeros(self.cluster.num_devices, dtype=np.int64)
        np.add.at(out, self.slice_device, self.block_set.slice_tokens)
        return out

    def flops_per_device(self) -> np.ndarray:
        out = np.zeros(self.cluster.num_devices, dtype=np.int64)
        comp = self.block_set.comp_array
        np.add.at(
            out,
            self.comp_device,
            self.block_set.attention.tile_flops(comp.pairs),
        )
        return out

    def comm_report(self) -> CommReport:
        return communication_report(
            self.block_set,
            self.slice_device,
            self.comp_device,
            self.cluster.num_devices,
            self.cluster,
        )


def _warm_starts(
    bhg: BlockHypergraph, k: int, subset=None, enabled: bool = True
) -> List[np.ndarray]:
    if not enabled or k < 2:
        return []
    return [zigzag_labels(bhg, k, subset), dp_pack_labels(bhg, k, subset)]


def _warm_vector(
    block_set: BlockSet, warm: Optional[Tuple[np.ndarray, np.ndarray]]
) -> Optional[np.ndarray]:
    """Validate a previous placement's labels against this block set.

    Returns the concatenated per-vertex device labels (slices first,
    then computation blocks — the hypergraph's vertex order), or
    ``None`` if the shapes do not line up (a different block
    decomposition: the warm start is useless and planning falls back to
    the cold path).
    """
    if warm is None:
        return None
    slice_prev, comp_prev = (np.asarray(w, dtype=np.int64) for w in warm)
    if slice_prev.shape != (len(block_set.token_slices),):
        return None
    if comp_prev.shape != (len(block_set.comp_blocks),):
        return None
    return np.concatenate([slice_prev, comp_prev])


def place_blocks(
    block_set: BlockSet,
    cluster: ClusterSpec,
    config: Optional[PlacementConfig] = None,
    warm: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Placement:
    """Optimize block placement hierarchically for one batch.

    ``warm`` is a previous placement of the *same* block set —
    ``(slice_device, comp_device)`` label arrays, e.g. recovered from
    ``plan.meta["placement"]`` — targeting a cluster with the same
    ``devices_per_machine`` but possibly a different machine count.
    The labels are global device ids, so their machine assignment is
    only meaningful under an unchanged device -> machine map; callers
    re-planning across a ``devices_per_machine`` change must plan cold
    (the streaming delta re-planner does).  Two warm regimes, both
    deterministic:

    * every previous label names a device that still exists: the
      placement is adopted verbatim (the delta re-planner's reuse
      guarantee — a re-plan of an unaffected batch reproduces its plan
      byte-for-byte);
    * some labels reference vanished devices: the stranded vertices are
      repaired onto surviving devices (:func:`repair_labels`) and the
      result refined warm-only (``restarts=0``) at both hierarchy
      levels — no multilevel runs, no heuristic warm starts, which is
      what makes an event re-plan several times cheaper than planning
      from scratch.
    """
    config = config or PlacementConfig()
    num_machines = cluster.num_machines
    devices_per_machine = cluster.devices_per_machine

    warm_labels = _warm_vector(block_set, warm)
    if warm_labels is not None and len(warm_labels) and np.all(
        (warm_labels >= 0) & (warm_labels < cluster.num_devices)
    ):
        # Previous placement is feasible on this shape: adopt it.
        num_slices = len(block_set.token_slices)
        return Placement(
            block_set=block_set,
            cluster=cluster,
            slice_device=warm_labels[:num_slices].copy(),
            comp_device=warm_labels[num_slices:].copy(),
            num_vertices=len(warm_labels),
            num_edges=0,
        )

    bhg = build_block_hypergraph(block_set)
    num_vertices = bhg.graph.num_vertices
    warm_only = warm_labels is not None

    # -- level 1: machines ------------------------------------------------
    if num_machines == 1:
        machine_labels = np.zeros(num_vertices, dtype=np.int64)
    else:
        balance = BalanceConstraint((config.eps_inter, config.eps_data))
        if warm_only:
            warm_machines = repair_labels(
                bhg.graph,
                warm_labels // devices_per_machine,
                num_machines,
                balance.caps(bhg.graph, num_machines),
            )
            level1_warm, restarts = [warm_machines], 0
        else:
            level1_warm = _warm_starts(
                bhg, num_machines, enabled=config.use_warm_starts
            )
            restarts = config.restarts
        result = partition_hypergraph(
            bhg.graph,
            num_machines,
            balance,
            seed=config.seed,
            restarts=restarts,
            warm_starts=level1_warm,
            refine_passes=config.refine_passes,
        )
        machine_labels = result.labels

    # -- level 2: devices within each machine -----------------------------
    device_labels = np.zeros(num_vertices, dtype=np.int64)
    for machine in range(num_machines):
        members = np.nonzero(machine_labels == machine)[0]
        if len(members) == 0:
            continue
        first_device = machine * devices_per_machine
        if devices_per_machine == 1:
            device_labels[members] = first_device
            continue
        subgraph, original_ids = bhg.induced_subgraph(members)
        if warm_only:
            # The previous intra-machine offset is a meaningful start
            # for vertices that stayed on their machine and an
            # arbitrary-but-valid one for migrants; refinement sorts
            # both out.  Always in range, so no repair needed.
            level2_warm = [warm_labels[original_ids] % devices_per_machine]
            restarts = 0
        else:
            level2_warm = _warm_starts(
                bhg,
                devices_per_machine,
                subset=original_ids,
                enabled=config.use_warm_starts,
            )
            restarts = config.restarts
        result = partition_hypergraph(
            subgraph,
            devices_per_machine,
            BalanceConstraint((config.eps_intra, config.eps_data)),
            seed=config.seed + machine + 1,
            restarts=restarts,
            warm_starts=level2_warm,
            refine_passes=config.refine_passes,
        )
        device_labels[original_ids] = first_device + result.labels

    slice_device, comp_device = bhg.labels_to_devices(device_labels)
    return Placement(
        block_set=block_set,
        cluster=cluster,
        slice_device=slice_device.copy(),
        comp_device=comp_device.copy(),
        num_vertices=bhg.graph.num_vertices,
        num_edges=bhg.graph.num_edges,
    )
