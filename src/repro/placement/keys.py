"""Integer encoding of data-block identities, shared by the vectorized
hypergraph builder and the communication accountant.

A data block is ``(kind, seq_index, block_index, head_group)``; packing
it into one ``int64`` lets ``np.unique``/``np.lexsort`` group and sort
blocks in single passes.  The packing is strictly order-preserving:
ascending scalar keys equal the lexicographic order of
:class:`~repro.blocks.DataBlockId` tuples, whose string kinds sort
``"kv" < "o" < "q"`` — both build.py and volume.py rely on that to
reproduce the iteration order of the scalar ``sorted(dict)`` loops
they replaced.
"""

from __future__ import annotations

import numpy as np

from ..blocks import BlockKind, BlockSet

__all__ = ["KIND_RANK", "RANK_KIND", "BlockKeyCodec"]

#: Integer ranks reproducing DataBlockId's lexicographic kind order.
KIND_RANK = {BlockKind.KV: 0, BlockKind.O: 1, BlockKind.Q: 2}
RANK_KIND = {rank: kind for kind, rank in KIND_RANK.items()}


class BlockKeyCodec:
    """Pack/unpack data-block identities for one batch's shape."""

    def __init__(self, block_set: BlockSet) -> None:
        self.num_seqs = len(block_set.seq_bounds)
        self.max_blocks = (
            int(np.diff(block_set.seq_slice_offset).max())
            if self.num_seqs
            else 0
        )
        self.head_groups = block_set.attention.head_groups

    def encode(self, kind: str, seq, block, group) -> np.ndarray:
        """Scalar keys for (kind, seq, block, group) column arrays."""
        return (
            (KIND_RANK[kind] * self.num_seqs + seq) * self.max_blocks + block
        ) * self.head_groups + group

    def decode(self, keys: np.ndarray):
        """Inverse of :meth:`encode`: ``(rank, seq, block, group)`` arrays."""
        group = keys % self.head_groups
        rest = keys // self.head_groups
        block = rest % self.max_blocks if self.max_blocks else rest
        rest = rest // self.max_blocks if self.max_blocks else rest
        seq = rest % self.num_seqs if self.num_seqs else rest
        rank = rest // self.num_seqs if self.num_seqs else rest
        return rank, seq, block, group
