"""Benchmark harness: scales, result tables, shared runners."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from ..blocks import AttentionSpec, BatchSpec, generate_blocks
from ..core import DCPConfig, DCPPlanner
from ..data import batches_to_specs, pack_batches, sample_lengths, scale_lengths
from ..masks import MaskSpec, make_mask
from ..sim import ClusterSpec, simulate_plan

__all__ = ["BenchScale", "Table", "PAPER_MASKS", "make_batches", "attention_times"]

#: The four masks of the paper's evaluation, with its parameters (§7.1).
PAPER_MASKS: Dict[str, Callable[[], MaskSpec]] = {
    "causal": lambda: make_mask("causal"),
    "lambda": lambda: make_mask("lambda", sink=64, window=4096),
    "causal_blockwise": lambda: make_mask(
        "causal_blockwise", block=256, window_blocks=2, sink_blocks=1
    ),
    "shared_question": lambda: make_mask(
        "shared_question", num_answers=4, answer_fraction=0.2
    ),
}


@dataclass(frozen=True)
class BenchScale:
    """Problem size of a benchmark run.

    ``micro()`` and ``e2e()`` match the paper's setups (131072-token
    batches on 32 GPUs / 64 GPUs-as-16-CP-ranks); ``smoke()`` is a tiny
    configuration used by the test suite.
    """

    token_budget: int = 131072
    max_seqlen: int = 131072
    block_size: int = 2048
    num_batches: int = 2
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    attention: AttentionSpec = field(default_factory=AttentionSpec)
    restarts: int = 1
    seed: int = 0

    @staticmethod
    def micro(**overrides) -> "BenchScale":
        """Paper §7.1 micro-benchmark: 4 nodes x 8 GPUs."""
        scale = BenchScale(cluster=ClusterSpec(num_machines=4, devices_per_machine=8))
        return replace(scale, **overrides)

    @staticmethod
    def e2e(**overrides) -> "BenchScale":
        """Paper §7.2 end-to-end: 8 nodes, TP4 => 16 CP ranks."""
        from ..sim.cluster import E2E_CLUSTER

        scale = BenchScale(cluster=E2E_CLUSTER)
        return replace(scale, **overrides)

    @staticmethod
    def sweep(**overrides) -> "BenchScale":
        """Mid-size configuration for parameter sweeps (Figs. 17-20)."""
        scale = BenchScale(
            token_budget=32768,
            max_seqlen=32768,
            block_size=1024,
            cluster=ClusterSpec(num_machines=2, devices_per_machine=4),
        )
        return replace(scale, **overrides)

    @staticmethod
    def smoke(**overrides) -> "BenchScale":
        """Tiny configuration for tests."""
        scale = BenchScale(
            token_budget=2048,
            max_seqlen=2048,
            block_size=128,
            num_batches=1,
            cluster=ClusterSpec(num_machines=2, devices_per_machine=2),
            attention=AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=32),
        )
        return replace(scale, **overrides)

    def dcp_config(self, **overrides) -> DCPConfig:
        base = dict(
            block_size=self.block_size, restarts=self.restarts, seed=self.seed
        )
        base.update(overrides)
        return DCPConfig(**base)


class Table:
    """A printable/markdown-dumpable result table."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List] = []

    def add(self, *row) -> None:
        if len(row) != len(self.headers):
            raise ValueError("row width does not match headers")
        self.rows.append(list(row))

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(v) for v in row) + " |")
        return "\n".join(lines) + "\n"

    def show(self) -> None:
        print(self.to_markdown())

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_markdown())

    def column(self, name: str) -> List:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


def make_batches(
    dataset: str,
    scale: BenchScale,
    mask: MaskSpec,
    length_scale: float = 1.0,
    num_sequences: int = 600,
) -> List[BatchSpec]:
    """Sample a dataset, scale lengths, pack into batches (paper §7.1)."""
    lengths = sample_lengths(dataset, num_sequences, seed=scale.seed)
    lengths = scale_lengths(lengths, length_scale, cap=scale.max_seqlen)
    packed = pack_batches(
        lengths, token_budget=scale.token_budget, max_seqlen=scale.max_seqlen
    )
    return batches_to_specs(packed[: scale.num_batches], mask)


def attention_times(
    planner,
    batches: Iterable[BatchSpec],
    scale: BenchScale,
) -> Dict[str, float]:
    """Mean simulated forward/backward attention time over batches.

    Also reports total and max-device communication volume (bytes) of
    the plans, averaged over batches.
    """
    forward, backward, comm, inter = [], [], [], []
    for batch in batches:
        block_set = generate_blocks(
            batch, attention=scale.attention, block_size=scale.block_size
        )
        plan = (
            planner.plan(block_set, scale.cluster)
            if not isinstance(planner, DCPPlanner)
            else planner.plan(block_set)
        )
        fw = simulate_plan(plan, scale.cluster, backward=False)
        bw = simulate_plan(plan, scale.cluster, backward=True)
        forward.append(fw.iteration_time)
        backward.append(bw.iteration_time)
        comm.append(plan.total_comm_bytes())
        inter.append(_inter_machine_bytes(plan, scale.cluster))
    return {
        "fw_ms": 1e3 * float(np.mean(forward)),
        "bw_ms": 1e3 * float(np.mean(backward)),
        "comm_mb": float(np.mean(comm)) / 1e6,
        "inter_mb": float(np.mean(inter)) / 1e6,
    }


def _inter_machine_bytes(plan, cluster: ClusterSpec) -> int:
    total = 0
    for device, device_plan in plan.device_plans.items():
        for instruction in device_plan.instructions:
            if instruction.kind != "comm_launch":
                continue
            for send in instruction.sends:
                if not cluster.same_machine(device, send.peer):
                    total += send.nbytes
    return total
