"""Benchmark harness and per-figure experiment drivers."""

from .harness import BenchScale, PAPER_MASKS, Table, attention_times, make_batches
from .figures import (
    fig01_comm_overhead,
    fig02_distribution,
    fig13_micro_causal,
    fig14_micro_masks,
    fig15_e2e,
    fig17_comm_vs_blocksize,
    fig18_planning_time,
    fig19_comm_vs_sparsity,
    fig20_comm_vs_imbalance,
    fig21_loss_curves,
    fig22_decomposition,
)

__all__ = [
    "BenchScale",
    "PAPER_MASKS",
    "Table",
    "attention_times",
    "make_batches",
    "fig01_comm_overhead",
    "fig02_distribution",
    "fig13_micro_causal",
    "fig14_micro_masks",
    "fig15_e2e",
    "fig17_comm_vs_blocksize",
    "fig18_planning_time",
    "fig19_comm_vs_sparsity",
    "fig20_comm_vs_imbalance",
    "fig21_loss_curves",
    "fig22_decomposition",
]
