"""Command-line entry point: regenerate any paper figure.

Usage::

    python -m repro.bench fig13 [--scale micro|e2e|sweep|smoke]
    python -m repro.bench fig15 --dataset longdatacollections
    python -m repro.bench all --scale smoke

Results print to stdout and are written to ``benchmarks/results/`` when
``--save`` is given.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import figures
from .harness import BenchScale

_SCALES = {
    "micro": BenchScale.micro,
    "e2e": BenchScale.e2e,
    "sweep": BenchScale.sweep,
    "smoke": BenchScale.smoke,
}

_FIGURES = {
    "fig01": ("e2e", lambda s, a: figures.fig01_comm_overhead(s)),
    "fig02": (None, lambda s, a: figures.fig02_distribution()),
    "fig13": ("micro", lambda s, a: figures.fig13_micro_causal(s)),
    "fig14": ("micro", lambda s, a: figures.fig14_micro_masks(s)),
    "fig15": ("e2e", lambda s, a: figures.fig15_e2e(a.dataset, s)),
    "fig16": (
        "e2e",
        lambda s, a: figures.fig15_e2e("longdatacollections", s),
    ),
    "fig17": ("sweep", lambda s, a: figures.fig17_comm_vs_blocksize(a.dataset, s)),
    "fig18": ("sweep", lambda s, a: figures.fig18_planning_time(a.dataset, s)),
    "fig19": ("sweep", lambda s, a: figures.fig19_comm_vs_sparsity(a.dataset, s)),
    "fig20": ("sweep", lambda s, a: figures.fig20_comm_vs_imbalance(s)),
    "fig21": (None, lambda s, a: figures.fig21_loss_curves()[0]),
    "fig22": ("e2e", lambda s, a: figures.fig22_decomposition(s)),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate DCP paper figures on the simulated cluster.",
    )
    parser.add_argument("figure", choices=sorted(_FIGURES) + ["all"])
    parser.add_argument("--scale", choices=sorted(_SCALES), default=None,
                        help="override the figure's default problem size")
    parser.add_argument("--dataset", default="longalign",
                        choices=["longalign", "longdatacollections"])
    parser.add_argument("--batches", type=int, default=None,
                        help="number of batches to average over")
    parser.add_argument("--save", action="store_true",
                        help="also write markdown to benchmarks/results/")
    args = parser.parse_args(argv)

    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        default_scale, driver = _FIGURES[name]
        scale = None
        scale_name = args.scale or default_scale
        if scale_name is not None:
            overrides = {}
            if args.batches is not None:
                overrides["num_batches"] = args.batches
            scale = _SCALES[scale_name](**overrides)
        table = driver(scale, args)
        table.show()
        if args.save:
            path = os.path.join("benchmarks", "results", f"{name}.md")
            table.save(path)
            print(f"[saved {path}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
