"""Figure drivers: one function per table/figure of the paper.

Each driver builds the paper's workload, runs every system through the
shared planning + timing-simulation pipeline, and returns a
:class:`~repro.bench.harness.Table` whose rows mirror the figure's data
series.  The benchmark files under ``benchmarks/`` are thin wrappers
that execute these drivers and assert the paper's qualitative claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    LoongTrainPlanner,
    RingAttentionPlanner,
    TransformerEnginePlanner,
)
from ..blocks import BatchSpec, generate_blocks
from ..core import DCPConfig, DCPPlanner
from ..data import sample_lengths
from ..masks import make_mask
from ..model import (
    GPTConfig,
    TinyGPT,
    generate_corpus,
    make_distributed_forward,
    train,
)
from ..sim import e2e_iteration_time
from .harness import PAPER_MASKS, BenchScale, Table, attention_times, make_batches

__all__ = [
    "fig01_comm_overhead",
    "fig02_distribution",
    "fig13_micro_causal",
    "fig14_micro_masks",
    "fig15_e2e",
    "fig17_comm_vs_blocksize",
    "fig18_planning_time",
    "fig19_comm_vs_sparsity",
    "fig20_comm_vs_imbalance",
    "fig21_loss_curves",
    "fig22_decomposition",
]


def _dcp(scale: BenchScale, **config_overrides) -> DCPPlanner:
    return DCPPlanner(
        scale.cluster, scale.attention, scale.dcp_config(**config_overrides)
    )


def _micro_planners(scale: BenchScale) -> Dict[str, object]:
    return {
        "rfa_ring": RingAttentionPlanner(zigzag=False),
        "rfa_zigzag": RingAttentionPlanner(zigzag=True),
        "lt": LoongTrainPlanner(),
        "te": TransformerEnginePlanner(),
        "dcp": _dcp(scale),
    }


# ---------------------------------------------------------------------------
# Fig. 1 — CP communication overhead of static CP
# ---------------------------------------------------------------------------

def fig01_comm_overhead(scale: Optional[BenchScale] = None) -> Table:
    """Static CP (MLM/TE) communication overhead across setups (Fig. 1)."""
    from ..sim.cluster import ClusterSpec

    base = scale or BenchScale.e2e()
    setups = [
        ("4 nodes, max 65536", ClusterSpec(4, 2, peak_flops=4 * 312e12), 65536),
        ("8 nodes, max 65536", ClusterSpec(8, 2, peak_flops=4 * 312e12), 65536),
        ("8 nodes, max 131072", ClusterSpec(8, 2, peak_flops=4 * 312e12), 131072),
    ]
    table = Table(
        "Fig. 1: CP communication overhead (static CP / Megatron baseline)",
        ["setup", "iter_s", "others_s", "non_ovlp_attn_s", "overlap_s",
         "non_ovlp_comm_s", "comm_pct"],
    )
    for name, cluster, max_seqlen in setups:
        sub = BenchScale(
            token_budget=base.token_budget,
            max_seqlen=max_seqlen,
            block_size=base.block_size,
            num_batches=base.num_batches,
            cluster=cluster,
            attention=base.attention,
            seed=base.seed,
        )
        batches = make_batches("longalign", sub, PAPER_MASKS["causal"]())
        results = []
        for batch in batches:
            block_set = generate_blocks(batch, sub.attention, sub.block_size)
            plan = TransformerEnginePlanner().plan(block_set, cluster)
            results.append(e2e_iteration_time(plan, cluster=cluster).breakdown())
        mean = {k: float(np.mean([r[k] for r in results])) for k in results[0]}
        comm_pct = 100.0 * (mean["non_ovlp_comm"] + mean["overlap"]) / mean["total"]
        table.add(
            name, mean["total"], mean["others"], mean["non_ovlp_attn"],
            mean["overlap"], mean["non_ovlp_comm"], comm_pct,
        )
    return table


# ---------------------------------------------------------------------------
# Fig. 2 — sequence-length distributions
# ---------------------------------------------------------------------------

def fig02_distribution(num_samples: int = 20000, seed: int = 0) -> Table:
    """Summary statistics of the synthetic datasets (Fig. 2)."""
    table = Table(
        "Fig. 2: sequence-length distributions (synthetic)",
        ["dataset", "mean", "median", "p90", "p99", "max", "frac<4096"],
    )
    for dataset in ("longalign", "longdatacollections"):
        lengths = sample_lengths(dataset, num_samples, seed=seed)
        table.add(
            dataset,
            float(lengths.mean()),
            float(np.median(lengths)),
            float(np.percentile(lengths, 90)),
            float(np.percentile(lengths, 99)),
            int(lengths.max()),
            float((lengths < 4096).mean()),
        )
    return table


# ---------------------------------------------------------------------------
# Fig. 13 — attention micro-benchmark, causal mask
# ---------------------------------------------------------------------------

def fig13_micro_causal(
    scale: Optional[BenchScale] = None,
    length_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> Table:
    """FW/BW attention time of all five systems (Fig. 13)."""
    scale = scale or BenchScale.micro()
    table = Table(
        "Fig. 13: micro-benchmark attention time, causal mask",
        ["len_scale", "system", "fw_ms", "bw_ms", "comm_mb", "inter_mb"],
    )
    for length_scale in length_scales:
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"](), length_scale
        )
        for name, planner in _micro_planners(scale).items():
            stats = attention_times(planner, batches, scale)
            table.add(
                length_scale, name, stats["fw_ms"], stats["bw_ms"],
                stats["comm_mb"], stats["inter_mb"],
            )
    return table


# ---------------------------------------------------------------------------
# Fig. 14 — attention micro-benchmark under the four masks
# ---------------------------------------------------------------------------

def fig14_micro_masks(
    scale: Optional[BenchScale] = None,
    length_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    mask_names: Sequence[str] = ("causal", "causal_blockwise", "lambda",
                                 "shared_question"),
) -> Table:
    """TE vs DCP across masks and length scales (Fig. 14)."""
    scale = scale or BenchScale.micro()
    table = Table(
        "Fig. 14: micro-benchmark attention time under attention masks",
        ["len_scale", "mask", "system", "fw_ms", "bw_ms", "speedup_fwbw"],
    )
    for length_scale in length_scales:
        for mask_name in mask_names:
            batches = make_batches(
                "longdatacollections", scale, PAPER_MASKS[mask_name](),
                length_scale,
            )
            te = attention_times(TransformerEnginePlanner(), batches, scale)
            dcp = attention_times(_dcp(scale), batches, scale)
            te_total = te["fw_ms"] + te["bw_ms"]
            dcp_total = dcp["fw_ms"] + dcp["bw_ms"]
            table.add(length_scale, mask_name, "te", te["fw_ms"], te["bw_ms"], 1.0)
            table.add(
                length_scale, mask_name, "dcp", dcp["fw_ms"], dcp["bw_ms"],
                te_total / dcp_total,
            )
    return table


# ---------------------------------------------------------------------------
# Figs. 15 / 16 — end-to-end training time
# ---------------------------------------------------------------------------

def fig15_e2e(
    dataset: str,
    scale: Optional[BenchScale] = None,
    max_seqlens: Sequence[int] = (16384, 32768, 65536, 131072),
    mask_names: Sequence[str] = ("causal", "lambda", "causal_blockwise",
                                 "shared_question"),
) -> Table:
    """End-to-end iteration time, MLM vs DCP (Figs. 15 and 16)."""
    scale = scale or BenchScale.e2e()
    table = Table(
        f"Figs. 15/16: end-to-end iteration time on {dataset}",
        ["max_seqlen", "mask", "mlm_s", "dcp_s", "speedup"],
    )
    for max_seqlen in max_seqlens:
        for mask_name in mask_names:
            sub = BenchScale(
                token_budget=scale.token_budget,
                max_seqlen=max_seqlen,
                block_size=scale.block_size,
                num_batches=scale.num_batches,
                cluster=scale.cluster,
                attention=scale.attention,
                restarts=scale.restarts,
                seed=scale.seed,
            )
            batches = make_batches(dataset, sub, PAPER_MASKS[mask_name]())
            mlm_times, dcp_times = [], []
            dcp_planner = _dcp(sub)
            for batch in batches:
                block_set = generate_blocks(batch, sub.attention, sub.block_size)
                mlm_plan = TransformerEnginePlanner().plan(block_set, sub.cluster)
                mlm_times.append(
                    e2e_iteration_time(mlm_plan, cluster=sub.cluster).iteration_time
                )
                dcp_plan = dcp_planner.plan(block_set)
                dcp_times.append(
                    e2e_iteration_time(dcp_plan, cluster=sub.cluster).iteration_time
                )
            mlm_mean = float(np.mean(mlm_times))
            dcp_mean = float(np.mean(dcp_times))
            table.add(max_seqlen, mask_name, mlm_mean, dcp_mean, mlm_mean / dcp_mean)
    return table


# ---------------------------------------------------------------------------
# Fig. 17 — communication volume vs block size
# ---------------------------------------------------------------------------

def fig17_comm_vs_blocksize(
    dataset: str = "longalign",
    scale: Optional[BenchScale] = None,
    block_sizes: Sequence[int] = (512, 1024, 2048, 4096),
    mask_names: Sequence[str] = ("causal", "lambda", "shared_question",
                                 "causal_blockwise"),
) -> Table:
    """DCP inter-node communication volume vs block size (Fig. 17)."""
    scale = scale or BenchScale.sweep()
    table = Table(
        f"Fig. 17: inter-node communication volume vs block size ({dataset})",
        ["block_size", "mask", "dcp_inter_mb", "mlm_inter_mb"],
    )
    for mask_name in mask_names:
        batches = make_batches(dataset, scale, PAPER_MASKS[mask_name]())
        for block_size in block_sizes:
            dcp_vol, mlm_vol = [], []
            planner = DCPPlanner(
                scale.cluster, scale.attention,
                scale.dcp_config(block_size=block_size),
            )
            for batch in batches:
                block_set = generate_blocks(batch, scale.attention, block_size)
                planner.plan(block_set)
                report = planner.last_placement.comm_report()
                dcp_vol.append(report.inter_machine_bytes)
                mlm_plan = TransformerEnginePlanner().plan(block_set, scale.cluster)
                from .harness import _inter_machine_bytes

                mlm_vol.append(_inter_machine_bytes(mlm_plan, scale.cluster))
            table.add(
                block_size, mask_name,
                float(np.mean(dcp_vol)) / 1e6, float(np.mean(mlm_vol)) / 1e6,
            )
    return table


# ---------------------------------------------------------------------------
# Fig. 18 — planning time vs block size
# ---------------------------------------------------------------------------

def fig18_planning_time(
    dataset: str = "longalign",
    scale: Optional[BenchScale] = None,
    block_sizes: Sequence[int] = (512, 1024, 2048, 4096),
    mask_names: Sequence[str] = ("causal", "lambda", "shared_question",
                                 "causal_blockwise"),
) -> Table:
    """Real planner wall-clock vs block size (Fig. 18)."""
    scale = scale or BenchScale.sweep()
    table = Table(
        f"Fig. 18: planning time vs block size ({dataset})",
        ["block_size", "mask", "plan_s", "blockgen_s", "place_s", "sched_s",
         "vertices", "edges", "moves", "gain_evals"],
    )
    for mask_name in mask_names:
        batches = make_batches(dataset, scale, PAPER_MASKS[mask_name]())
        for block_size in block_sizes:
            planner = DCPPlanner(
                scale.cluster, scale.attention,
                scale.dcp_config(block_size=block_size),
            )
            totals, gens, places, scheds = [], [], [], []
            vertices, edges, moves, gain_evals = [], [], [], []
            for batch in batches:
                planner.plan_batch(batch)
                stats = planner.last_stats
                totals.append(stats.total)
                gens.append(stats.block_generation)
                places.append(stats.placement)
                scheds.append(stats.scheduling)
                vertices.append(stats.num_vertices)
                edges.append(stats.num_edges)
                moves.append(stats.refine_moves)
                gain_evals.append(stats.gain_evals)
            table.add(
                block_size, mask_name, float(np.mean(totals)),
                float(np.mean(gens)), float(np.mean(places)),
                float(np.mean(scheds)),
                int(np.mean(vertices)), int(np.mean(edges)),
                int(np.mean(moves)), int(np.mean(gain_evals)),
            )
    return table


# ---------------------------------------------------------------------------
# Fig. 19 — communication volume vs mask sparsity
# ---------------------------------------------------------------------------

def _batch_sparsity(batch: BatchSpec) -> float:
    """Mask FLOPs relative to causal over a whole batch (paper §7.3)."""
    pairs = sum(seq.mask.total_pairs(seq.seqlen) for seq in batch.sequences)
    causal = sum(n.seqlen * (n.seqlen + 1) // 2 for n in batch.sequences)
    return pairs / causal


def fig19_comm_vs_sparsity(
    dataset: str = "longalign",
    scale: Optional[BenchScale] = None,
    length_scale: float = 4.0,
) -> Table:
    """DCP communication volume vs mask sparsity (Fig. 19).

    Lengths are scaled up (default 4x) so that batches contain
    sequences long enough to *force* context-parallel splitting across
    machines — the regime of the paper's 131072-token setup.  With only
    short sequences DCP places whole sequences per machine and the
    volume is near zero for every mask, hiding the trend.
    """
    scale = scale or BenchScale.sweep()
    budget = scale.max_seqlen
    variants: List[Tuple[str, object]] = [("causal", make_mask("causal"))]
    for window in (budget // 64, budget // 16, budget // 8, budget // 4,
                   budget // 2):
        variants.append(
            (f"lambda_w{window}", make_mask("lambda", sink=64, window=window))
        )
    for fraction in (0.05, 0.1, 0.15, 0.2):
        variants.append(
            (
                f"sharedq_f{fraction}",
                make_mask("shared_question", num_answers=4,
                          answer_fraction=fraction),
            )
        )
    for window_blocks in (1, 2, 4, 8):
        variants.append(
            (
                f"blockwise_w{window_blocks}",
                make_mask("causal_blockwise", block=256,
                          window_blocks=window_blocks, sink_blocks=1),
            )
        )
    table = Table(
        f"Fig. 19: communication volume vs mask sparsity ({dataset})",
        ["variant", "sparsity", "inter_mb"],
    )
    planner = _dcp(scale)
    for name, mask in variants:
        batches = make_batches(dataset, scale, mask, length_scale)
        volumes, sparsities = [], []
        for batch in batches:
            block_set = generate_blocks(batch, scale.attention, scale.block_size)
            planner.plan(block_set)
            volumes.append(planner.last_placement.comm_report().inter_machine_bytes)
            sparsities.append(_batch_sparsity(batch))
        table.add(name, float(np.mean(sparsities)), float(np.mean(volumes)) / 1e6)
    return table


# ---------------------------------------------------------------------------
# Fig. 20 — communication volume vs computation-imbalance tolerance
# ---------------------------------------------------------------------------

def fig20_comm_vs_imbalance(
    scale: Optional[BenchScale] = None,
    eps_values: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6),
    datasets: Sequence[str] = ("longalign", "longdatacollections"),
) -> Table:
    """DCP communication vs imbalance tolerance epsilon (Fig. 20)."""
    scale = scale or BenchScale.sweep()
    table = Table(
        "Fig. 20: communication volume vs computation imbalance tolerance",
        ["dataset", "imbalance(1+eps)", "inter_mb"],
    )
    for dataset in datasets:
        batches = make_batches(dataset, scale, PAPER_MASKS["causal"]())
        for eps in eps_values:
            planner = DCPPlanner(
                scale.cluster, scale.attention,
                scale.dcp_config(eps_inter=eps, eps_intra=eps),
            )
            volumes = []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                planner.plan(block_set)
                volumes.append(
                    planner.last_placement.comm_report().inter_machine_bytes
                )
            table.add(dataset, 1.0 + eps, float(np.mean(volumes)) / 1e6)
    return table


# ---------------------------------------------------------------------------
# Fig. 21 — training-loss curves
# ---------------------------------------------------------------------------

def fig21_loss_curves(
    iterations: int = 200,
    seqlen: int = 96,
    mask_names: Sequence[str] = ("causal", "lambda", "causal_blockwise",
                                 "shared_question"),
) -> Tuple[Table, Dict[str, Dict[str, List[float]]]]:
    """Train the numpy GPT with MLM vs DCP attention (Fig. 21).

    Returns the summary table and the raw loss curves per mask.
    """
    from ..blocks import AttentionSpec
    from ..sim import ClusterSpec

    mask_params = {
        "causal": make_mask("causal"),
        "lambda": make_mask("lambda", sink=8, window=24),
        "causal_blockwise": make_mask(
            "causal_blockwise", block=16, window_blocks=2, sink_blocks=1
        ),
        "shared_question": make_mask("shared_question"),
    }
    config = GPTConfig(
        vocab=64, d_model=32, num_layers=2, num_heads=4, num_kv_groups=2,
        head_dim=8, d_ff=64, max_len=max(seqlen, 128),
    )
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=8)
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    corpus = generate_corpus(config.vocab, seqlen, 16, seed=7)

    table = Table(
        "Fig. 21: training loss, MLM vs DCP",
        ["mask", "mlm_final", "dcp_final", "max_abs_diff"],
    )
    curves: Dict[str, Dict[str, List[float]]] = {}
    for mask_name in mask_names:
        mask = mask_params[mask_name]
        mlm_model = TinyGPT(config, seed=11)
        dcp_model = TinyGPT(config, seed=11)
        mlm_losses = train(mlm_model, corpus, iterations, mask=mask)
        planner = DCPPlanner(
            cluster, attention, DCPConfig(block_size=16, restarts=1)
        )
        forward = make_distributed_forward(planner, attention, block_size=16)
        dcp_losses = train(
            dcp_model, corpus, iterations, mask=mask, attention_forward=forward
        )
        deviation = max(abs(a - b) for a, b in zip(mlm_losses, dcp_losses))
        curves[mask_name] = {"mlm": mlm_losses, "dcp": dcp_losses}
        table.add(mask_name, mlm_losses[-1], dcp_losses[-1], deviation)
    return table, curves


# ---------------------------------------------------------------------------
# Fig. 22 — iteration-time decomposition
# ---------------------------------------------------------------------------

def fig22_decomposition(
    scale: Optional[BenchScale] = None,
    mask_names: Sequence[str] = ("causal", "lambda", "causal_blockwise",
                                 "shared_question"),
) -> Table:
    """End-to-end decomposition, DCP vs MLM (Fig. 22)."""
    scale = scale or BenchScale.e2e()
    table = Table(
        "Fig. 22: decomposition of end-to-end iteration time (LongAlign)",
        ["mask", "system", "others_s", "non_ovlp_attn_s", "overlap_s",
         "non_ovlp_comm_s", "total_s", "plan_s", "plan_moves"],
    )
    for mask_name in mask_names:
        batches = make_batches("longalign", scale, PAPER_MASKS[mask_name]())
        for system in ("dcp", "mlm"):
            results = []
            plan_times, plan_moves = [], []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                if system == "dcp":
                    plan = _dcp(scale).plan(block_set)
                else:
                    plan = TransformerEnginePlanner().plan(block_set, scale.cluster)
                plan_stats = plan.meta.get("planning_stats")
                if plan_stats is not None:
                    plan_times.append(plan_stats.total)
                    plan_moves.append(plan_stats.refine_moves)
                results.append(
                    e2e_iteration_time(plan, cluster=scale.cluster).breakdown()
                )
            mean = {k: float(np.mean([r[k] for r in results])) for k in results[0]}
            table.add(
                mask_name, system, mean["others"], mean["non_ovlp_attn"],
                mean["overlap"], mean["non_ovlp_comm"], mean["total"],
                float(np.mean(plan_times)) if plan_times else 0.0,
                int(np.mean(plan_moves)) if plan_moves else 0,
            )
    return table
