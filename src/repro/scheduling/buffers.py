"""Buffer-slot management for plan serialization (paper §5).

Each device holds one logical buffer per block type; blocks are
identified by (type, slot index).  The manager allocates slots, reuses
freed ones, and records the high-water mark that sizes the executor's
allocation — mirroring the paper's "maximally reuse buffer indices that
contain no longer needed blocks".
"""

from __future__ import annotations

from typing import Dict, List, Set

__all__ = ["BufferManager"]


class BufferManager:
    """Slot allocator with free-list reuse, one namespace per buffer."""

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}
        self._free: Dict[str, List[int]] = {}
        self._live: Dict[str, Set[int]] = {}

    def alloc(self, buffer: str) -> int:
        free = self._free.setdefault(buffer, [])
        if free:
            slot = free.pop()
        else:
            slot = self._next.get(buffer, 0)
            self._next[buffer] = slot + 1
        self._live.setdefault(buffer, set()).add(slot)
        return slot

    def free(self, buffer: str, slot: int) -> None:
        live = self._live.get(buffer, set())
        if slot not in live:
            raise ValueError(f"double free of {buffer}[{slot}]")
        live.remove(slot)
        self._free[buffer].append(slot)

    def high_water(self, buffer: str) -> int:
        return self._next.get(buffer, 0)

    def sizes(self) -> Dict[str, int]:
        return dict(self._next)

    def live_count(self, buffer: str) -> int:
        return len(self._live.get(buffer, ()))
