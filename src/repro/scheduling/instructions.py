"""The five DCP instructions and the execution plan (paper §5).

An execution plan is a per-device list of instructions:

* :class:`BlockwiseAttention` — fused masked attention over a list of
  tiles, accumulating into (acc, lse) partials (FlashAttention-style
  online softmax).
* :class:`BlockwiseReduction` — fused merge of partial outputs, with
  optional finalization (normalize and write the output block).
* :class:`BlockwiseCopy` — fused buffer-to-buffer copies on one device.
* :class:`CommLaunch` — asynchronously post sends/receives of blocks.
* :class:`CommWait` — block until a previously launched operation is
  complete.

Instructions reference buffer *slots* (integers per buffer kind); the
executor owns the actual storage.  Byte counts carried by communication
entries reflect the logical bf16 wire size (used for traffic accounting
and timing), independent of the simulator's float32 storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "Tile",
    "BlockwiseAttention",
    "BackwardTile",
    "BlockwiseAttentionBackward",
    "GradAdd",
    "BlockwiseGradReduce",
    "MergeArg",
    "FinalizeArg",
    "BlockwiseReduction",
    "CopyArg",
    "BlockwiseCopy",
    "SendArg",
    "RecvArg",
    "CommLaunch",
    "CommWait",
    "DevicePlan",
    "ExecutionPlan",
]


@dataclass(frozen=True)
class Tile:
    """One Q-tile x KV-tile attention computation.

    The mask is not materialized here: the executor reconstructs it from
    the sequence's :class:`~repro.masks.AttendRanges` using the global
    token coordinates carried by the tile.
    """

    q_slot: int
    kv_slot: int
    acc_slot: int
    seq_index: int
    head_group: int
    q_block: int
    kv_block: int


@dataclass(frozen=True)
class BlockwiseAttention:
    tiles: Tuple[Tile, ...]

    @property
    def kind(self) -> str:
        return "attention"


@dataclass(frozen=True)
class BackwardTile:
    """One tile of the attention backward pass.

    Reads the Q and KV blocks plus the output-gradient package
    (``dO``, ``lse``, ``delta``) of the Q rows; accumulates into the
    running dQ partial of the Q block and the running dKV partial of
    the KV block (plain sums — gradients are linear).
    """

    q_slot: int
    kv_slot: int
    do_slot: int
    dq_slot: int
    dkv_slot: int
    seq_index: int
    head_group: int
    q_block: int
    kv_block: int


@dataclass(frozen=True)
class BlockwiseAttentionBackward:
    tiles: Tuple[BackwardTile, ...]

    @property
    def kind(self) -> str:
        return "attention_backward"


@dataclass(frozen=True)
class GradAdd:
    """Accumulate gradient partial ``src`` into ``dst`` (same buffer)."""

    buffer: str
    src_slot: int
    dst_slot: int


@dataclass(frozen=True)
class BlockwiseGradReduce:
    adds: Tuple[GradAdd, ...]

    @property
    def kind(self) -> str:
        return "grad_reduce"


@dataclass(frozen=True)
class MergeArg:
    """Merge partial ``src`` into partial ``dst`` (both acc slots)."""

    src_acc_slot: int
    dst_acc_slot: int


@dataclass(frozen=True)
class FinalizeArg:
    """Normalize partial ``acc`` and write output slot ``o``."""

    acc_slot: int
    o_slot: int


@dataclass(frozen=True)
class BlockwiseReduction:
    merges: Tuple[MergeArg, ...] = ()
    finalizes: Tuple[FinalizeArg, ...] = ()

    @property
    def kind(self) -> str:
        return "reduction"


@dataclass(frozen=True)
class CopyArg:
    buffer: str
    src_slot: int
    dst_slot: int


@dataclass(frozen=True)
class BlockwiseCopy:
    copies: Tuple[CopyArg, ...]

    @property
    def kind(self) -> str:
        return "copy"


@dataclass(frozen=True)
class SendArg:
    """Post one block to ``peer``.  ``tag`` matches the remote recv."""

    peer: int
    buffer: str
    slot: int
    tag: Tuple
    nbytes: int


@dataclass(frozen=True)
class RecvArg:
    """Expect one block from ``peer`` into ``slot``."""

    peer: int
    buffer: str
    slot: int
    tag: Tuple
    nbytes: int


@dataclass(frozen=True)
class CommLaunch:
    op_id: int
    sends: Tuple[SendArg, ...] = ()
    recvs: Tuple[RecvArg, ...] = ()

    @property
    def kind(self) -> str:
        return "comm_launch"

    @property
    def send_bytes(self) -> int:
        return sum(s.nbytes for s in self.sends)

    @property
    def recv_bytes(self) -> int:
        return sum(r.nbytes for r in self.recvs)


@dataclass(frozen=True)
class CommWait:
    op_id: int

    @property
    def kind(self) -> str:
        return "comm_wait"


@dataclass
class DevicePlan:
    """Everything one device needs for one iteration."""

    device: int
    instructions: List
    buffer_sizes: Dict[str, int]
    # Token slices whose model input lives on this device, in order.
    local_slices: List
    # (seq_index, block_index, head_group) -> o slot, for output collection.
    o_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    # (seq_index, block_index, head_group) -> local q / kv slots.
    q_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    kv_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    # Accumulator slots of output blocks homed here (forward plans).
    acc_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    # Gradient-package and gradient-accumulator slots (backward plans).
    do_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    dq_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    dkv_slots: Dict[Tuple[int, int, int], int] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        return sum(1 for ins in self.instructions if ins.kind == kind)


@dataclass
class ExecutionPlan:
    """Plans for all devices plus shared batch context."""

    block_set: object  # BlockSet; kept loose to avoid import cycles
    cluster: object  # ClusterSpec
    device_plans: Dict[int, DevicePlan]
    meta: Dict = field(default_factory=dict)

    def plan_for(self, device: int) -> DevicePlan:
        return self.device_plans[device]

    @property
    def num_devices(self) -> int:
        return len(self.device_plans)

    def total_comm_bytes(self) -> int:
        return sum(
            ins.send_bytes
            for plan in self.device_plans.values()
            for ins in plan.instructions
            if ins.kind == "comm_launch"
        )
