"""Serialize a division schedule into DCP instruction streams (§4.3/§5).

Per-device stream layout, for divisions ``0 .. T-1``:

* before computing division ``t``: launch receives for division ``t+1``'s
  fetches and the matching sends of blocks this device owns (so the
  transfer overlaps with division ``t``'s computation), then wait for the
  communication launched for division ``t`` itself;
* compute division ``t`` (one fused BlockwiseAttention);
* after the last division: ship partial outputs to their home devices,
  merge all partials (local and remote) and finalize output blocks.

Buffer slots: local Q/KV/O blocks get stable slots; remote fetches get
transient slots that are freed once the last division using them has
executed (the paper's buffer-reuse design).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from ..blocks import BlockKind, BlockSet, DataBlockId
from .buffers import BufferManager
from .divisions import Schedule
from .instructions import (
    BlockwiseAttention,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
    FinalizeArg,
    MergeArg,
    RecvArg,
    SendArg,
    Tile,
)

__all__ = [
    "serialize_schedule",
    "empty_device_plan",
    "plan_compatible",
    "rebind_plan",
]

_INPUT_BUFFER = {BlockKind.Q: "q", BlockKind.KV: "kv"}


def _block_key(block: DataBlockId) -> Tuple[int, int, int]:
    return (block.seq_index, block.block_index, block.head_group)


class _DeviceSerializer:
    """Builds one device's instruction stream."""

    def __init__(self, device: int, schedule: Schedule) -> None:
        self.device = device
        self.schedule = schedule
        self.block_set: BlockSet = schedule.block_set
        self.buffers = BufferManager()
        self.instructions: List = []
        self.q_slots: Dict[Tuple[int, int, int], int] = {}
        self.kv_slots: Dict[Tuple[int, int, int], int] = {}
        self.o_slots: Dict[Tuple[int, int, int], int] = {}
        self.acc_slots: Dict[Tuple[int, int, int], int] = {}
        self.remote_slots: Dict[DataBlockId, int] = {}
        self.local_slices: List = []
        self._next_op = device * 1_000_000  # device-unique op ids

    def new_op(self) -> int:
        self._next_op += 1
        return self._next_op

    # -- local layout -----------------------------------------------------

    def allocate_locals(self, slice_device) -> None:
        attention = self.block_set.attention
        for index, token_slice in enumerate(self.block_set.token_slices):
            if int(slice_device[index]) != self.device:
                continue
            self.local_slices.append(token_slice)
            for head_group in range(attention.head_groups):
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                self.q_slots[key] = self.buffers.alloc("q")
                self.kv_slots[key] = self.buffers.alloc("kv")
                self.o_slots[key] = self.buffers.alloc("o")

    def input_slot(self, block: DataBlockId) -> int:
        key = _block_key(block)
        if block.kind == BlockKind.Q and key in self.q_slots:
            return self.q_slots[key]
        if block.kind == BlockKind.KV and key in self.kv_slots:
            return self.kv_slots[key]
        return self.remote_slots[block]

    def acc_slot_for(self, output: DataBlockId) -> int:
        key = _block_key(output)
        if key not in self.acc_slots:
            self.acc_slots[key] = self.buffers.alloc("acc")
        return self.acc_slots[key]

    # -- fetch lifetime ----------------------------------------------------

    def fetch_lifetimes(self, device_schedule) -> Dict[DataBlockId, int]:
        """Last division index in which each remote fetched block is used."""
        last_use: Dict[DataBlockId, int] = {}
        for division_index, division in enumerate(device_schedule.divisions):
            for comp in division:
                for block in comp.inputs:
                    if block in self.remote_needs:
                        last_use[block] = division_index
        return last_use


def serialize_schedule(schedule: Schedule) -> ExecutionPlan:
    """Produce the executable plan for every device."""
    block_set = schedule.block_set
    placement = schedule.placement
    cluster = placement.cluster
    num_divisions = schedule.num_divisions

    slice_index = {
        (ts.seq_index, ts.block_index): i
        for i, ts in enumerate(block_set.token_slices)
    }

    def home_of(block: DataBlockId) -> int:
        return int(
            placement.slice_device[
                slice_index[(block.seq_index, block.block_index)]
            ]
        )

    serializers = {
        device: _DeviceSerializer(device, schedule)
        for device in range(cluster.num_devices)
    }
    for serializer in serializers.values():
        serializer.allocate_locals(placement.slice_device)
        serializer.remote_needs = set()

    # Record which remote blocks each device fetches (for lifetimes).
    for device, device_schedule in schedule.device_schedules.items():
        serializer = serializers[device]
        for fetch_list in device_schedule.fetches:
            serializer.remote_needs.update(fetch_list)

    # Pre-compute per-division incoming fetches and matching outgoing
    # sends for every device, so streams can be emitted in one pass.
    recv_of: Dict[int, List[List[DataBlockId]]] = {
        device: [list(fl) for fl in schedule.device_schedules[device].fetches]
        if device in schedule.device_schedules
        else [[] for _ in range(num_divisions)]
        for device in range(cluster.num_devices)
    }
    send_of: Dict[int, List[List[Tuple[DataBlockId, int]]]] = {
        device: [[] for _ in range(num_divisions)]
        for device in range(cluster.num_devices)
    }
    for device, fetch_lists in recv_of.items():
        for division_index, fetch_list in enumerate(fetch_lists):
            for block in fetch_list:
                send_of[home_of(block)][division_index].append((block, device))

    last_use: Dict[int, Dict[DataBlockId, int]] = {}
    for device, device_schedule in schedule.device_schedules.items():
        last_use[device] = serializers[device].fetch_lifetimes(device_schedule)

    pending_wait: Dict[int, List[int]] = {
        device: [] for device in range(cluster.num_devices)
    }
    frees: Dict[int, List[List[DataBlockId]]] = {
        device: [[] for _ in range(num_divisions)]
        for device in range(cluster.num_devices)
    }
    for device, uses in last_use.items():
        for block, division_index in uses.items():
            frees[device][division_index].append(block)

    def emit_comm(device: int, division_index: int) -> None:
        """Launch comm whose data is consumed in ``division_index``."""
        serializer = serializers[device]
        recvs = []
        for block in recv_of[device][division_index]:
            slot = serializer.buffers.alloc(_INPUT_BUFFER[block.kind])
            serializer.remote_slots[block] = slot
            recvs.append(
                RecvArg(
                    peer=home_of(block),
                    buffer=_INPUT_BUFFER[block.kind],
                    slot=slot,
                    tag=("in", block),
                    nbytes=block_set.block_bytes(block),
                )
            )
        sends = []
        for block, receiver in send_of[device][division_index]:
            sends.append(
                SendArg(
                    peer=receiver,
                    buffer=_INPUT_BUFFER[block.kind],
                    slot=serializer.input_slot(block),
                    tag=("in", block),
                    nbytes=block_set.block_bytes(block),
                )
            )
        if recvs or sends:
            op = serializer.new_op()
            serializer.instructions.append(
                CommLaunch(op_id=op, sends=tuple(sends), recvs=tuple(recvs))
            )
            if recvs:
                pending_wait[device].append(op)

    # -- main division loop: launch(d+1) / compute(d) / wait(d+1) ------------
    for device in range(cluster.num_devices):
        serializer = serializers[device]
        device_schedule = schedule.device_schedules.get(device)
        divisions = (
            device_schedule.divisions
            if device_schedule
            else [[] for _ in range(num_divisions)]
        )

        # Prologue: communication needed by division 0 (empty for DCP's
        # own scheduler, used by baseline planners).
        emit_comm(device, 0)
        if pending_wait[device]:
            for op in pending_wait[device]:
                serializer.instructions.append(CommWait(op_id=op))
            pending_wait[device].clear()

        for division_index in range(num_divisions):
            # Launch next division's communication first so it overlaps
            # with this division's computation.
            if division_index + 1 < num_divisions:
                emit_comm(device, division_index + 1)

            tiles = []
            for comp in divisions[division_index]:
                tiles.append(
                    Tile(
                        q_slot=serializer.input_slot(comp.q_input),
                        kv_slot=serializer.input_slot(comp.kv_input),
                        acc_slot=serializer.acc_slot_for(comp.output),
                        seq_index=comp.seq_index,
                        head_group=comp.head_group,
                        q_block=comp.q_block,
                        kv_block=comp.kv_block,
                    )
                )
            if tiles:
                serializer.instructions.append(BlockwiseAttention(tuple(tiles)))

            # Release remote input slots whose last use has passed.
            for block in frees[device][division_index]:
                slot = serializer.remote_slots[block]
                serializer.buffers.free(_INPUT_BUFFER[block.kind], slot)

            # Wait for the next division's data before computing it.
            if pending_wait[device]:
                for op in pending_wait[device]:
                    serializer.instructions.append(CommWait(op_id=op))
                pending_wait[device].clear()

    # -- output reduction and transfers --------------------------------------
    # Partial outputs computed away from home travel as (acc, lse) blocks.
    partial_receivers: Dict[int, List[Tuple[DataBlockId, int]]] = {
        device: [] for device in range(cluster.num_devices)
    }
    for device, device_schedule in schedule.device_schedules.items():
        for block in device_schedule.output_sends:
            partial_receivers[home_of(block)].append((block, device))

    for device in range(cluster.num_devices):
        serializer = serializers[device]
        device_schedule = schedule.device_schedules.get(device)

        sends = []
        if device_schedule:
            for block in device_schedule.output_sends:
                sends.append(
                    SendArg(
                        peer=home_of(block),
                        buffer="acc",
                        slot=serializer.acc_slots[_block_key(block)],
                        tag=("out", block, device),
                        nbytes=block_set.block_bytes(block),
                    )
                )
        recvs = []
        staging: List[Tuple[DataBlockId, int]] = []
        for block, producer in partial_receivers[device]:
            slot = serializer.buffers.alloc("acc")
            staging.append((block, slot))
            recvs.append(
                RecvArg(
                    peer=producer,
                    buffer="acc",
                    slot=slot,
                    tag=("out", block, producer),
                    nbytes=block_set.block_bytes(block),
                )
            )
        if sends or recvs:
            op = serializer.new_op()
            serializer.instructions.append(
                CommLaunch(op_id=op, sends=tuple(sends), recvs=tuple(recvs))
            )
            serializer.instructions.append(CommWait(op_id=op))

        merges = []
        for block, slot in staging:
            dst = serializer.acc_slot_for(block)
            merges.append(MergeArg(src_acc_slot=slot, dst_acc_slot=dst))

        finalizes = []
        for key, o_slot in serializer.o_slots.items():
            acc_slot = serializer.acc_slots.get(key)
            if acc_slot is None:
                # Output rows may be fully masked out (no computation at
                # all); allocate an empty accumulator so finalize writes
                # zeros.
                acc_slot = serializer.acc_slot_for(
                    DataBlockId(BlockKind.O, key[0], key[1], key[2])
                )
            finalizes.append(FinalizeArg(acc_slot=acc_slot, o_slot=o_slot))
        if merges or finalizes:
            serializer.instructions.append(
                BlockwiseReduction(
                    merges=tuple(merges), finalizes=tuple(finalizes)
                )
            )

    device_plans = {
        device: DevicePlan(
            device=device,
            instructions=serializer.instructions,
            buffer_sizes=serializer.buffers.sizes(),
            local_slices=serializer.local_slices,
            o_slots=dict(serializer.o_slots),
            q_slots=dict(serializer.q_slots),
            kv_slots=dict(serializer.kv_slots),
            acc_slots=dict(serializer.acc_slots),
        )
        for device, serializer in serializers.items()
    }
    return ExecutionPlan(
        block_set=block_set,
        cluster=cluster,
        device_plans=device_plans,
        meta={"num_divisions": num_divisions, "planner": "dcp"},
    )


def empty_device_plan(device: int) -> DevicePlan:
    """The plan an idle device gets: exactly what serialization emits
    for a device that holds no slices and computes no blocks.

    ``rebind_plan`` uses this to extend a plan onto devices added after
    it was planned; constructing it here (next to the serializer) keeps
    the two byte-identical — the delta-re-planning property tests
    compare a rebind against a genuine re-serialization by fingerprint.
    """
    return DevicePlan(
        device=device,
        instructions=[],
        buffer_sizes=BufferManager().sizes(),
        local_slices=[],
    )


def _device_plan_idle(device_plan: DevicePlan) -> bool:
    return not device_plan.instructions and not device_plan.local_slices


def plan_compatible(plan: ExecutionPlan, cluster) -> bool:
    """True if ``plan`` executes unchanged on ``cluster``.

    A plan survives a cluster-shape change when

    * the new shape differs from the plan's target only in trailing
      machines (same ``devices_per_machine``, same link/compute
      parameters — anything else shifts the device -> machine map or
      the cost model the schedule was optimized under), and
    * the plan is idle — no instructions, no local token slices — on
      every device the change affects
      (``ClusterSpec.affected_devices``: the removed or added trailing
      devices).  Serialization pairs every send with a receive, so an
      idle device is also never named as a peer by a surviving one;
      added devices are not in the plan at all, so growth is always
      compatible.
    """
    old = plan.cluster
    if replace(old, num_machines=cluster.num_machines) != cluster:
        return False
    return all(
        _device_plan_idle(plan.device_plans[device])
        for device in old.affected_devices(cluster)
        if device in plan.device_plans
    )


def rebind_plan(plan: ExecutionPlan, cluster) -> ExecutionPlan:
    """Retarget a compatible plan at ``cluster`` without re-planning.

    O(devices) dictionary work: surviving devices keep their streams
    (shared, not copied — plans are immutable once yielded), devices
    beyond the new shape are dropped (they must be idle — checked), and
    devices the new shape adds get :func:`empty_device_plan`.  The
    result is fingerprint-identical to re-planning the batch with the
    old placement adopted warm — the delta re-planner's reuse path.
    """
    if not plan_compatible(plan, cluster):
        raise ValueError("plan is not compatible with the target cluster")
    device_plans = {
        device: plan.device_plans.get(device) or empty_device_plan(device)
        for device in range(cluster.num_devices)
    }
    return ExecutionPlan(
        block_set=plan.block_set,
        cluster=cluster,
        device_plans=device_plans,
        meta=dict(plan.meta),
    )
