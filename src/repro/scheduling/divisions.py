"""Computation/communication division scheduling (paper §4.3, Listing 3).

Each device's computation blocks are grouped into ``T`` divisions so
that the communication needed by division ``t+1`` can overlap with the
computation of division ``t``:

* division 0 holds blocks whose inputs are all local (no communication);
* divisions ``1 .. T-2`` are filled greedily — always extending the
  device with the least computation scheduled so far — subject to a
  per-division communication budget of ``1/T`` of the device's total;
* the last division takes everything left, regardless of volume;
* partial outputs destined for other devices are transferred after the
  final division.

Communication is accounted *marginally*: a remote input block is paid
for once, in the division where the first computation block using it is
scheduled; later users on the same device reuse the fetched copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set


from ..blocks import BlockSet, CompBlock, DataBlockId

__all__ = ["DeviceSchedule", "Schedule", "build_schedule"]


@dataclass
class DeviceSchedule:
    """Division assignment for one device."""

    device: int
    divisions: List[List[CompBlock]]
    # New remote input blocks first needed in each division.
    fetches: List[List[DataBlockId]]
    # Partial outputs this device must ship to their home afterwards.
    output_sends: List[DataBlockId]

    @property
    def num_divisions(self) -> int:
        return len(self.divisions)

    def all_blocks(self) -> List[CompBlock]:
        return [comp for division in self.divisions for comp in division]

    def comp_pairs(self) -> int:
        return sum(c.pairs for c in self.all_blocks())


@dataclass
class Schedule:
    """Division schedules for every device of one iteration."""

    block_set: BlockSet
    placement: object  # repro.placement.Placement (kept loose: no cycle)
    device_schedules: Dict[int, DeviceSchedule]
    num_divisions: int

    def schedule_for(self, device: int) -> DeviceSchedule:
        return self.device_schedules[device]


class _BlockPool:
    """Insertion-ordered block set with O(1) removal.

    Replaces the ``list.remove`` scans the scheduler used to run per
    scheduled block (O(n²) across a device's stream): membership is an
    ``id()``-keyed index map, removal flips a liveness flag, and
    iteration walks the original order skipping dead entries — so a
    full greedy fill is O(blocks) per scan instead of O(blocks²).
    """

    def __init__(self, blocks: List[CompBlock]) -> None:
        self._blocks = list(blocks)
        self._slot = {id(block): i for i, block in enumerate(self._blocks)}
        self._live = [True] * len(self._blocks)
        self._count = len(self._blocks)

    def _compact(self) -> None:
        """Drop dead slots once they outnumber live ones.

        Amortized O(1) per removal; keeps every scan O(live blocks)
        rather than O(original blocks).  Callers snapshot the pool
        (``list(pool)``) before removing during iteration, so
        compacting inside :meth:`remove` is safe.
        """
        self._blocks = [
            block for block, live in zip(self._blocks, self._live) if live
        ]
        self._slot = {id(block): i for i, block in enumerate(self._blocks)}
        self._live = [True] * len(self._blocks)

    def remove(self, block: CompBlock) -> None:
        slot = self._slot.get(id(block))
        if slot is None or not self._live[slot]:
            raise ValueError("block already scheduled")
        self._live[slot] = False
        self._count -= 1
        if self._count * 2 < len(self._blocks):
            self._compact()

    def __iter__(self):
        return (
            block
            for block, live in zip(self._blocks, self._live)
            if live
        )

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


class _DeviceState:
    """Mutable bookkeeping while Listing 3 runs for one device."""

    def __init__(
        self,
        device: int,
        blocks: List[CompBlock],
        home_of: Dict[DataBlockId, int],
        block_bytes,
        num_divisions: int,
    ) -> None:
        self.device = device
        self.remaining = _BlockPool(blocks)
        self.home_of = home_of
        self.block_bytes = block_bytes
        self.fetched: Set[DataBlockId] = set()
        self.divisions: List[List[CompBlock]] = [[] for _ in range(num_divisions)]
        self.fetches: List[List[DataBlockId]] = [[] for _ in range(num_divisions)]
        self.comp_scheduled = 0  # total pairs scheduled so far
        self.div_comm = 0  # bytes charged to the division being built

        remote_inputs: Set[DataBlockId] = set()
        output_sends: Set[DataBlockId] = set()
        for comp in blocks:
            for block in comp.inputs:
                if home_of[block] != device:
                    remote_inputs.add(block)
            if home_of[comp.output] != device:
                output_sends.add(comp.output)
        self.output_sends = sorted(output_sends)
        input_bytes = sum(block_bytes(b) for b in remote_inputs)
        output_bytes = sum(block_bytes(b) for b in self.output_sends)
        self.total_comm = input_bytes + output_bytes
        self.per_div_limit = self.total_comm / num_divisions if num_divisions else 0.0

    def marginal_blocks(self, comp: CompBlock) -> List[DataBlockId]:
        """Remote inputs of ``comp`` not yet fetched on this device."""
        return [
            block
            for block in comp.inputs
            if self.home_of[block] != self.device and block not in self.fetched
        ]

    def marginal_bytes(self, comp: CompBlock) -> int:
        return sum(self.block_bytes(b) for b in self.marginal_blocks(comp))

    def schedule(self, comp: CompBlock, division: int) -> None:
        for block in self.marginal_blocks(comp):
            self.fetched.add(block)
            self.fetches[division].append(block)
            self.div_comm += self.block_bytes(block)
        self.divisions[division].append(comp)
        self.comp_scheduled += comp.pairs
        self.remaining.remove(comp)


def build_schedule(
    block_set: BlockSet,
    placement,
    num_divisions: int = 4,
    strategy: str = "paper",
) -> Schedule:
    """Group computation blocks into divisions for one batch.

    ``strategy`` selects the heuristic:

    * ``"paper"`` — Listing 3 verbatim: all communication-free blocks
      into division 0, then greedy filling under a per-division
      communication budget, remainder into the last division.
    * ``"balanced"`` — an extension addressing the paper's §7.5
      observation that its scheduler can lose computation/communication
      overlap: communication-free blocks are *spread* across divisions
      so every division retains compute to hide the next division's
      transfers behind, while the same per-division communication
      budget is respected.
    """
    if num_divisions < 1:
        raise ValueError("need at least one division")
    if strategy not in ("paper", "balanced"):
        raise ValueError(f"unknown scheduling strategy {strategy!r}")

    slice_index = {
        (ts.seq_index, ts.block_index): i
        for i, ts in enumerate(block_set.token_slices)
    }

    def home_lookup() -> Dict[DataBlockId, int]:
        home: Dict[DataBlockId, int] = {}
        for comp in block_set.comp_blocks:
            for block in comp.inputs + (comp.output,):
                if block not in home:
                    key = (block.seq_index, block.block_index)
                    home[block] = int(placement.slice_device[slice_index[key]])
        return home

    home_of = home_lookup()
    blocks_of_device: Dict[int, List[CompBlock]] = {
        d: [] for d in range(placement.cluster.num_devices)
    }
    for comp, device in zip(block_set.comp_blocks, placement.comp_device):
        blocks_of_device[int(device)].append(comp)

    states = {
        device: _DeviceState(
            device, blocks, home_of, block_set.block_bytes, num_divisions
        )
        for device, blocks in blocks_of_device.items()
    }

    if strategy == "balanced":
        for state in states.values():
            _schedule_balanced(state, home_of, num_divisions)
        return _collect(block_set, placement, states, num_divisions)

    # Division 0: communication-free blocks (Listing 3 lines 16-20).
    for state in states.values():
        for comp in list(state.remaining):
            if state.marginal_bytes(comp) == 0 and all(
                home_of[block] == state.device for block in comp.inputs
            ):
                state.schedule(comp, 0)

    # Middle divisions (lines 28-35): greedily extend the device with the
    # least scheduled computation, respecting the per-division budget.
    for division in range(1, max(num_divisions - 1, 1)):
        for state in states.values():
            state.div_comm = 0
        open_devices = {d for d, s in states.items() if s.remaining}
        while open_devices:
            device = min(open_devices, key=lambda d: states[d].comp_scheduled)
            state = states[device]
            progressed = False
            for comp in list(state.remaining):
                if (
                    state.div_comm + state.marginal_bytes(comp)
                    <= state.per_div_limit
                ):
                    state.schedule(comp, division)
                    progressed = True
                    break
            if not progressed or not state.remaining:
                open_devices.discard(device)

    # Final division: everything left (lines 21-26).
    last = num_divisions - 1
    for state in states.values():
        for comp in list(state.remaining):
            state.schedule(comp, last)

    return _collect(block_set, placement, states, num_divisions)


def _schedule_balanced(
    state: _DeviceState,
    home_of: Dict[DataBlockId, int],
    num_divisions: int,
) -> None:
    """Per-device compute-balanced division filling.

    Every division targets ``1/T`` of the device's computation as well
    as ``1/T`` of its communication.  Division 0 stays communication-
    free (its fetches would be exposed at stream start), but takes only
    its compute share of the free blocks; the rest pad later divisions
    so transfers always have compute to hide behind.
    """
    free = [
        comp
        for comp in state.remaining
        if state.marginal_bytes(comp) == 0
        and all(home_of[block] == state.device for block in comp.inputs)
    ]
    free.sort(key=lambda comp: comp.pairs, reverse=True)
    free_set = set(id(comp) for comp in free)
    total_pairs = sum(comp.pairs for comp in state.remaining)
    comp_budget = total_pairs / num_divisions if num_divisions else 0.0

    def fill_free(division: int, budget: float) -> None:
        scheduled = sum(c.pairs for c in state.divisions[division])
        while free and scheduled < budget:
            comp = free.pop(0)
            free_set.discard(id(comp))
            state.schedule(comp, division)
            scheduled += comp.pairs

    # Division 0: compute share only, all of it communication-free.
    fill_free(0, comp_budget)

    # Middle divisions: communication under the budget first, then pad
    # with free blocks up to the compute share.
    for division in range(1, max(num_divisions - 1, 1)):
        state.div_comm = 0
        progressed = True
        while progressed:
            progressed = False
            for comp in list(state.remaining):
                if id(comp) in free_set:
                    continue
                marginal = state.marginal_bytes(comp)
                if state.div_comm + marginal <= state.per_div_limit:
                    state.schedule(comp, division)
                    progressed = True
                    break
        fill_free(division, comp_budget)

    # Last division: everything left.
    last = num_divisions - 1
    for comp in list(state.remaining):
        state.schedule(comp, last)


def _collect(block_set, placement, states, num_divisions: int) -> Schedule:
    device_schedules = {
        device: DeviceSchedule(
            device=device,
            divisions=state.divisions,
            fetches=state.fetches,
            output_sends=state.output_sends,
        )
        for device, state in states.items()
    }
    return Schedule(
        block_set=block_set,
        placement=placement,
        device_schedules=device_schedules,
        num_divisions=num_divisions,
    )
