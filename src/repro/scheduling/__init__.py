"""Division scheduling, DCP instructions and plan serialization."""

from .buffers import BufferManager
from .divisions import DeviceSchedule, Schedule, build_schedule
from .instructions import (
    BlockwiseAttention,
    BlockwiseCopy,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    CopyArg,
    DevicePlan,
    ExecutionPlan,
    FinalizeArg,
    MergeArg,
    RecvArg,
    SendArg,
    Tile,
)
from .backward import serialize_backward_schedule
from .serialize import (
    empty_device_plan,
    plan_compatible,
    rebind_plan,
    serialize_schedule,
)
from .validate import PlanValidationError, validate_plan

__all__ = [
    "BufferManager",
    "DeviceSchedule",
    "Schedule",
    "build_schedule",
    "BlockwiseAttention",
    "BlockwiseCopy",
    "BlockwiseReduction",
    "CommLaunch",
    "CommWait",
    "CopyArg",
    "DevicePlan",
    "ExecutionPlan",
    "FinalizeArg",
    "MergeArg",
    "RecvArg",
    "SendArg",
    "Tile",
    "serialize_schedule",
    "empty_device_plan",
    "plan_compatible",
    "rebind_plan",
    "serialize_backward_schedule",
    "PlanValidationError",
    "validate_plan",
]
