"""Serialize the attention *backward* pass from a division schedule.

The backward pass reuses the forward placement and divisions: every
forward tile has a backward twin that recomputes the tile's
probabilities (FlashAttention style) and produces gradient
contributions.  Data flow relative to forward:

* **in**: Q and KV blocks travel exactly as in forward; additionally,
  the output-gradient package (dO, lse, delta) of a Q block travels to
  every device that computes tiles for it (same routes as Q);
* **out**: dQ partials return to the Q block's home (like O did) and —
  new in backward — dKV partials return to the KV block's home.

All gradient reductions are plain sums (:class:`BlockwiseGradReduce`).

Buffers: ``q``/``kv`` as forward, ``do`` (gradient packages), ``dq``
and ``dkv`` accumulators, with the same transient-slot reuse scheme.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..blocks import BlockKind, BlockSet, DataBlockId
from .buffers import BufferManager
from .divisions import Schedule
from .instructions import (
    BackwardTile,
    BlockwiseAttentionBackward,
    BlockwiseGradReduce,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
    GradAdd,
    RecvArg,
    SendArg,
)

__all__ = ["serialize_backward_schedule"]

_INPUT_BUFFER = {BlockKind.Q: "q", BlockKind.KV: "kv"}


def _block_key(block: DataBlockId) -> Tuple[int, int, int]:
    return (block.seq_index, block.block_index, block.head_group)


def serialize_backward_schedule(schedule: Schedule) -> ExecutionPlan:
    """Produce the backward execution plan for every device."""
    block_set: BlockSet = schedule.block_set
    placement = schedule.placement
    cluster = placement.cluster
    num_divisions = schedule.num_divisions
    attention = block_set.attention

    slice_index = {
        (ts.seq_index, ts.block_index): i
        for i, ts in enumerate(block_set.token_slices)
    }

    def home_of(block: DataBlockId) -> int:
        return int(
            placement.slice_device[
                slice_index[(block.seq_index, block.block_index)]
            ]
        )

    # -- per-device bookkeeping -------------------------------------------
    class DeviceState:
        def __init__(self, device: int) -> None:
            self.device = device
            self.buffers = BufferManager()
            self.instructions: List = []
            self.q_slots: Dict[Tuple[int, int, int], int] = {}
            self.kv_slots: Dict[Tuple[int, int, int], int] = {}
            self.do_slots: Dict[Tuple[int, int, int], int] = {}
            self.dq_slots: Dict[Tuple[int, int, int], int] = {}
            self.dkv_slots: Dict[Tuple[int, int, int], int] = {}
            self.remote_slots: Dict[Tuple[str, DataBlockId], int] = {}
            self.local_slices: List = []
            self._op = device * 1_000_000

        def new_op(self) -> int:
            self._op += 1
            return self._op

        def dq_for(self, key) -> int:
            if key not in self.dq_slots:
                self.dq_slots[key] = self.buffers.alloc("dq")
            return self.dq_slots[key]

        def dkv_for(self, key) -> int:
            if key not in self.dkv_slots:
                self.dkv_slots[key] = self.buffers.alloc("dkv")
            return self.dkv_slots[key]

    states = {d: DeviceState(d) for d in range(cluster.num_devices)}

    for index, token_slice in enumerate(block_set.token_slices):
        state = states[int(placement.slice_device[index])]
        state.local_slices.append(token_slice)
        for head_group in range(attention.head_groups):
            key = (token_slice.seq_index, token_slice.block_index, head_group)
            state.q_slots[key] = state.buffers.alloc("q")
            state.kv_slots[key] = state.buffers.alloc("kv")
            state.do_slots[key] = state.buffers.alloc("do")

    # -- what travels where, per division -----------------------------------
    # Input fetches: forward fetches, plus the dO package wherever a
    # remote Q block was fetched (dO routes with Q).
    recv_of: Dict[int, List[List[Tuple[str, DataBlockId]]]] = {
        d: [[] for _ in range(num_divisions)] for d in states
    }
    send_of: Dict[int, List[List[Tuple[str, DataBlockId, int]]]] = {
        d: [[] for _ in range(num_divisions)] for d in states
    }
    for device, device_schedule in schedule.device_schedules.items():
        for division, fetch_list in enumerate(device_schedule.fetches):
            for block in fetch_list:
                buffer = _INPUT_BUFFER[block.kind]
                recv_of[device][division].append((buffer, block))
                send_of[home_of(block)][division].append(
                    (buffer, block, device)
                )
                if block.kind == BlockKind.Q:
                    recv_of[device][division].append(("do", block))
                    send_of[home_of(block)][division].append(
                        ("do", block, device)
                    )

    def block_bytes(buffer: str, block: DataBlockId) -> int:
        if buffer == "do":
            # dO + (lse, delta) statistics; approximately one O block.
            return block_set.block_bytes(
                DataBlockId(BlockKind.O, block.seq_index, block.block_index,
                            block.head_group)
            )
        return block_set.block_bytes(block)

    # Fetch lifetimes for slot reuse.
    frees: Dict[int, List[List[Tuple[str, DataBlockId]]]] = {
        d: [[] for _ in range(num_divisions)] for d in states
    }
    for device, device_schedule in schedule.device_schedules.items():
        last_use: Dict[Tuple[str, DataBlockId], int] = {}
        fetched = {
            (buf, blk)
            for division in recv_of[device]
            for buf, blk in division
        }
        for division, comps in enumerate(device_schedule.divisions):
            for comp in comps:
                for buffer, block in (
                    ("q", comp.q_input),
                    ("kv", comp.kv_input),
                    ("do", comp.q_input),
                ):
                    if (buffer, block) in fetched:
                        last_use[(buffer, block)] = division
        for key, division in last_use.items():
            frees[device][division].append(key)

    pending: Dict[int, List[int]] = {d: [] for d in states}

    def emit_comm(state: DeviceState, division: int) -> None:
        recvs = []
        for buffer, block in recv_of[state.device][division]:
            slot = state.buffers.alloc(buffer)
            state.remote_slots[(buffer, block)] = slot
            recvs.append(
                RecvArg(
                    peer=home_of(block),
                    buffer=buffer,
                    slot=slot,
                    tag=("bw", buffer, block),
                    nbytes=block_bytes(buffer, block),
                )
            )
        sends = []
        for buffer, block, receiver in send_of[state.device][division]:
            key = _block_key(block)
            local = {
                "q": state.q_slots, "kv": state.kv_slots, "do": state.do_slots
            }[buffer]
            sends.append(
                SendArg(
                    peer=receiver,
                    buffer=buffer,
                    slot=local[key],
                    tag=("bw", buffer, block),
                    nbytes=block_bytes(buffer, block),
                )
            )
        if recvs or sends:
            op = state.new_op()
            state.instructions.append(
                CommLaunch(op_id=op, sends=tuple(sends), recvs=tuple(recvs))
            )
            if recvs:
                pending[state.device].append(op)

    # -- main loop: launch(d+1) / compute(d) / wait(d+1) ---------------------
    for device, state in states.items():
        device_schedule = schedule.device_schedules.get(device)
        divisions = (
            device_schedule.divisions
            if device_schedule
            else [[] for _ in range(num_divisions)]
        )

        emit_comm(state, 0)
        for op in pending[device]:
            state.instructions.append(CommWait(op_id=op))
        pending[device].clear()

        for division in range(num_divisions):
            if division + 1 < num_divisions:
                emit_comm(state, division + 1)

            tiles = []
            for comp in divisions[division]:
                q_key = (comp.seq_index, comp.q_block, comp.head_group)
                kv_key = (comp.seq_index, comp.kv_block, comp.head_group)

                def slot(buffer, block, local):
                    key = _block_key(block)
                    if key in local:
                        return local[key]
                    return state.remote_slots[(buffer, block)]

                tiles.append(
                    BackwardTile(
                        q_slot=slot("q", comp.q_input, state.q_slots),
                        kv_slot=slot("kv", comp.kv_input, state.kv_slots),
                        do_slot=slot("do", comp.q_input, state.do_slots),
                        dq_slot=state.dq_for(q_key),
                        dkv_slot=state.dkv_for(kv_key),
                        seq_index=comp.seq_index,
                        head_group=comp.head_group,
                        q_block=comp.q_block,
                        kv_block=comp.kv_block,
                    )
                )
            if tiles:
                state.instructions.append(
                    BlockwiseAttentionBackward(tuple(tiles))
                )

            for buffer, block in frees[device][division]:
                state.buffers.free(
                    buffer, state.remote_slots[(buffer, block)]
                )

            for op in pending[device]:
                state.instructions.append(CommWait(op_id=op))
            pending[device].clear()

    # -- epilogue: ship gradient partials home and sum ------------------------
    grad_receivers: Dict[int, List[Tuple[str, Tuple, int]]] = {
        d: [] for d in states
    }
    for device, state in states.items():
        for buffer, slots in (("dq", state.dq_slots), ("dkv", state.dkv_slots)):
            for key in slots:
                block = DataBlockId(
                    BlockKind.Q if buffer == "dq" else BlockKind.KV,
                    key[0], key[1], key[2],
                )
                home = home_of(block)
                if home != device:
                    grad_receivers[home].append((buffer, key, device))

    for device, state in states.items():
        sends = []
        for buffer, slots in (("dq", state.dq_slots), ("dkv", state.dkv_slots)):
            for key, slot in slots.items():
                block = DataBlockId(
                    BlockKind.Q if buffer == "dq" else BlockKind.KV,
                    key[0], key[1], key[2],
                )
                home = home_of(block)
                if home != device:
                    sends.append(
                        SendArg(
                            peer=home,
                            buffer=buffer,
                            slot=slot,
                            tag=("bwout", buffer, key, device),
                            nbytes=block_bytes(
                                "do" if buffer == "dq" else "kv", block
                            ),
                        )
                    )
        recvs = []
        staging: List[Tuple[str, Tuple, int]] = []
        for buffer, key, producer in grad_receivers[device]:
            slot = state.buffers.alloc(buffer)
            staging.append((buffer, key, slot))
            block = DataBlockId(
                BlockKind.Q if buffer == "dq" else BlockKind.KV,
                key[0], key[1], key[2],
            )
            recvs.append(
                RecvArg(
                    peer=producer,
                    buffer=buffer,
                    slot=slot,
                    tag=("bwout", buffer, key, producer),
                    nbytes=block_bytes(
                        "do" if buffer == "dq" else "kv", block
                    ),
                )
            )
        if sends or recvs:
            op = state.new_op()
            state.instructions.append(
                CommLaunch(op_id=op, sends=tuple(sends), recvs=tuple(recvs))
            )
            state.instructions.append(CommWait(op_id=op))

        adds = []
        for buffer, key, src_slot in staging:
            dst = (
                state.dq_for(key) if buffer == "dq" else state.dkv_for(key)
            )
            adds.append(GradAdd(buffer=buffer, src_slot=src_slot,
                                dst_slot=dst))
        if adds:
            state.instructions.append(BlockwiseGradReduce(adds=tuple(adds)))

    device_plans = {
        device: DevicePlan(
            device=device,
            instructions=state.instructions,
            buffer_sizes=state.buffers.sizes(),
            local_slices=state.local_slices,
            o_slots={},  # backward produces gradients, not outputs
            q_slots=dict(state.q_slots),
            kv_slots=dict(state.kv_slots),
        )
        for device, state in states.items()
    }
    plan = ExecutionPlan(
        block_set=block_set,
        cluster=cluster,
        device_plans=device_plans,
        meta={
            "num_divisions": num_divisions,
            "planner": "dcp",
            "phase": "backward",
        },
    )
    # Expose gradient slot maps for the executor.
    for device, state in states.items():
        device_plans[device].do_slots = dict(state.do_slots)
        device_plans[device].dq_slots = dict(state.dq_slots)
        device_plans[device].dkv_slots = dict(state.dkv_slots)
    return plan
