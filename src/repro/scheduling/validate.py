"""Structural validation of execution plans.

Catches planner/serializer bugs before execution: slot references
outside buffer bounds, waits without launches, unmatched sends/receives
across devices, and attention tiles whose blocks do not exist in the
batch.  Used by the test suite and available to planner authors.
"""

from __future__ import annotations

from typing import Set, Tuple

from .instructions import (
    BlockwiseAttention,
    BlockwiseAttentionBackward,
    BlockwiseCopy,
    BlockwiseGradReduce,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    ExecutionPlan,
)

__all__ = ["PlanValidationError", "validate_plan"]


class PlanValidationError(AssertionError):
    """An execution plan violates a structural invariant."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise PlanValidationError(message)


def validate_plan(plan: ExecutionPlan) -> None:
    """Raise :class:`PlanValidationError` on any structural violation."""
    block_set = plan.block_set
    sends: Set[Tuple[int, int, Tuple]] = set()
    recvs: Set[Tuple[int, int, Tuple]] = set()

    for device, device_plan in plan.device_plans.items():
        _check(device_plan.device == device, f"device id mismatch on {device}")
        sizes = device_plan.buffer_sizes
        launched: Set[int] = set()
        needs_wait: Set[int] = set()
        waited: Set[int] = set()

        def slot_ok(buffer: str, slot: int) -> bool:
            return 0 <= slot < sizes.get(buffer, 0)

        for instruction in device_plan.instructions:
            if isinstance(instruction, CommLaunch):
                _check(
                    instruction.op_id not in launched,
                    f"op {instruction.op_id} launched twice on {device}",
                )
                launched.add(instruction.op_id)
                for send in instruction.sends:
                    _check(
                        send.peer != device,
                        f"device {device} sends to itself",
                    )
                    _check(
                        slot_ok(send.buffer, send.slot),
                        f"send slot {send.buffer}[{send.slot}] out of range "
                        f"on device {device}",
                    )
                    key = (device, send.peer, send.tag)
                    _check(key not in sends, f"duplicate send {key}")
                    sends.add(key)
                if instruction.recvs:
                    needs_wait.add(instruction.op_id)
                for recv in instruction.recvs:
                    _check(
                        slot_ok(recv.buffer, recv.slot),
                        f"recv slot {recv.buffer}[{recv.slot}] out of range "
                        f"on device {device}",
                    )
                    key = (recv.peer, device, recv.tag)
                    _check(key not in recvs, f"duplicate recv {key}")
                    recvs.add(key)
            elif isinstance(instruction, CommWait):
                _check(
                    instruction.op_id in launched,
                    f"wait for unlaunched op {instruction.op_id} "
                    f"on device {device}",
                )
                waited.add(instruction.op_id)
            elif isinstance(instruction, BlockwiseAttention):
                for tile in instruction.tiles:
                    _check(
                        slot_ok("q", tile.q_slot)
                        and slot_ok("kv", tile.kv_slot)
                        and slot_ok("acc", tile.acc_slot),
                        f"tile references invalid slot on device {device}",
                    )
                    _check(
                        0 <= tile.seq_index < len(block_set.batch.sequences),
                        "tile references unknown sequence",
                    )
                    bounds = block_set.seq_bounds[tile.seq_index]
                    _check(
                        0 <= tile.q_block < len(bounds) - 1
                        and 0 <= tile.kv_block < len(bounds) - 1,
                        "tile references block outside sequence",
                    )
            elif isinstance(instruction, BlockwiseAttentionBackward):
                for tile in instruction.tiles:
                    _check(
                        slot_ok("q", tile.q_slot)
                        and slot_ok("kv", tile.kv_slot)
                        and slot_ok("do", tile.do_slot)
                        and slot_ok("dq", tile.dq_slot)
                        and slot_ok("dkv", tile.dkv_slot),
                        f"backward tile references invalid slot "
                        f"on device {device}",
                    )
            elif isinstance(instruction, BlockwiseGradReduce):
                for add in instruction.adds:
                    _check(
                        slot_ok(add.buffer, add.src_slot)
                        and slot_ok(add.buffer, add.dst_slot),
                        f"grad-reduce slot out of range on device {device}",
                    )
            elif isinstance(instruction, BlockwiseReduction):
                for merge in instruction.merges:
                    _check(
                        slot_ok("acc", merge.src_acc_slot)
                        and slot_ok("acc", merge.dst_acc_slot),
                        f"reduction slot out of range on device {device}",
                    )
                for fin in instruction.finalizes:
                    _check(
                        slot_ok("acc", fin.acc_slot)
                        and slot_ok("o", fin.o_slot),
                        f"finalize slot out of range on device {device}",
                    )
            elif isinstance(instruction, BlockwiseCopy):
                for copy in instruction.copies:
                    _check(
                        slot_ok(copy.buffer, copy.src_slot)
                        and slot_ok(copy.buffer, copy.dst_slot),
                        f"copy slot out of range on device {device}",
                    )
            else:
                raise PlanValidationError(
                    f"unknown instruction {instruction!r} on device {device}"
                )

        missing = needs_wait - waited
        _check(
            not missing,
            f"device {device} never waits for receives of ops "
            f"{sorted(missing)} (buffers would be read before arrival)",
        )

    _check(
        sends == recvs,
        f"unmatched messages: {len(sends - recvs)} sends without recv, "
        f"{len(recvs - sends)} recvs without send",
    )
