"""Concrete attention masks evaluated in the DCP paper (Fig. 6).

All masks are expressed as at-most-two attendable key ranges per query
row (see :mod:`repro.masks.spec`).  Parameters default to the values the
paper uses in its evaluation (§7.1 "Attention Masks").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import AttendRanges, MaskSpec

__all__ = [
    "FullMask",
    "CausalMask",
    "LambdaMask",
    "CausalBlockwiseMask",
    "SharedQuestionMask",
    "PackedDocumentMask",
    "PrefixLMMask",
    "MASK_LIBRARY",
    "make_mask",
]


def _empty(seqlen: int) -> np.ndarray:
    return np.zeros(seqlen, dtype=np.int64)


@dataclass(frozen=True)
class FullMask(MaskSpec):
    """Bidirectional attention: every token attends to every token."""

    name = "full"

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        return AttendRanges(
            a_start=_empty(seqlen),
            a_end=np.full(seqlen, seqlen, dtype=np.int64),
            b_start=_empty(seqlen),
            b_end=_empty(seqlen),
        )


@dataclass(frozen=True)
class CausalMask(MaskSpec):
    """Standard autoregressive mask: token ``i`` attends to ``[0, i]``."""

    name = "causal"

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        rows = np.arange(seqlen, dtype=np.int64)
        return AttendRanges(
            a_start=_empty(seqlen),
            a_end=rows + 1,
            b_start=_empty(seqlen),
            b_end=_empty(seqlen),
        )


@dataclass(frozen=True)
class LambdaMask(MaskSpec):
    """Attention sink + sliding window ("lambda-shaped", Fig. 6b).

    Token ``i`` attends to the first ``sink`` tokens and to the previous
    ``window`` tokens (inclusive of itself).  Paper defaults: 64 sink
    tokens, window 4096.
    """

    sink: int = 64
    window: int = 4096
    name = "lambda"

    def __post_init__(self) -> None:
        """Validate parameters at construction."""
        if self.sink < 0 or self.window < 1:
            raise ValueError("sink must be >= 0 and window >= 1")

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        rows = np.arange(seqlen, dtype=np.int64)
        causal_end = rows + 1
        a_end = np.minimum(self.sink, causal_end)
        b_start = np.maximum(self.sink, rows - self.window + 1)
        b_end = np.maximum(causal_end, b_start)
        # Where the window is fully covered by the sink, the b range is
        # empty; normalise empty ranges to [0, 0) so bounds stay in
        # [0, L] even for sequences shorter than the sink.
        empty = b_end <= b_start
        b_start = np.where(empty, 0, b_start)
        b_end = np.where(empty, 0, b_end)
        return AttendRanges(
            a_start=_empty(seqlen),
            a_end=a_end,
            b_start=b_start,
            b_end=b_end,
        )

    def describe(self) -> str:
        """Human-readable mask name with parameters."""
        return f"lambda(sink={self.sink}, window={self.window})"


@dataclass(frozen=True)
class CausalBlockwiseMask(MaskSpec):
    """Causal blockwise mask for in-context learning (Fig. 6c).

    The sequence is split into fixed blocks of ``block`` tokens; each
    token attends to the first ``sink_blocks`` blocks and to a sliding
    window of ``window_blocks`` blocks (its own plus preceding ones),
    causally.  Tokens in the final block (the "test example") attend to
    all previous tokens.  Paper defaults: block 256, 2-block window,
    1 block for the sink.
    """

    block: int = 256
    window_blocks: int = 2
    sink_blocks: int = 1
    name = "causal_blockwise"

    def __post_init__(self) -> None:
        """Validate parameters at construction."""
        if self.block < 1 or self.window_blocks < 1 or self.sink_blocks < 0:
            raise ValueError("invalid causal blockwise parameters")

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        rows = np.arange(seqlen, dtype=np.int64)
        causal_end = rows + 1
        block_index = rows // self.block
        num_blocks = (seqlen + self.block - 1) // self.block
        last_block = max(num_blocks - 1, 0)

        sink_end = np.minimum(self.sink_blocks * self.block, causal_end)
        window_start = np.maximum(
            (block_index - self.window_blocks + 1) * self.block,
            self.sink_blocks * self.block,
        )
        is_test = block_index == last_block

        a_end = np.where(is_test, causal_end, sink_end)
        b_start = np.where(is_test, 0, window_start)
        b_end = np.where(is_test, 0, causal_end)
        # Clamp: if the window reaches back into the sink the two ranges
        # merge into a single causal prefix.
        merged = b_start <= a_end
        a_end = np.where(merged & ~is_test, b_end, a_end)
        b_start = np.where(merged, 0, b_start)
        b_end = np.where(merged, 0, b_end)
        # Normalise empty ranges to [0, 0) so bounds stay within [0, L]
        # (a large sink can push window_start past a short sequence).
        empty = b_end <= b_start
        b_start = np.where(empty, 0, b_start)
        b_end = np.where(empty, 0, b_end)
        return AttendRanges(
            a_start=_empty(seqlen),
            a_end=a_end,
            b_start=b_start,
            b_end=b_end,
        )

    def describe(self) -> str:
        """Human-readable mask name with parameters."""
        return (
            f"causal_blockwise(block={self.block}, "
            f"window={self.window_blocks}, sink={self.sink_blocks})"
        )


@dataclass(frozen=True)
class SharedQuestionMask(MaskSpec):
    """Shared-question mask for RLHF/DPO-style training (Fig. 6d).

    The sequence is one question followed by ``num_answers`` candidate
    answers.  Question tokens attend causally within the question;
    answer tokens attend to the full question plus causally within
    their own answer — answers do not see each other.

    ``answer_fraction`` is each answer's share of the total sequence
    length (the paper uses 4 answers of 20% each, the question taking
    the remaining 20%).
    """

    num_answers: int = 4
    answer_fraction: float = 0.2
    name = "shared_question"

    def __post_init__(self) -> None:
        """Validate parameters at construction."""
        if self.num_answers < 1:
            raise ValueError("need at least one answer")
        if not 0.0 < self.answer_fraction * self.num_answers < 1.0:
            raise ValueError("answers must leave room for the question")

    def segment_bounds(self, seqlen: int) -> list:
        """Token boundaries: [question, answer_1, ..., answer_k] spans."""
        answer_len = int(seqlen * self.answer_fraction)
        question_len = seqlen - answer_len * self.num_answers
        if question_len < 1:
            question_len = 1
        bounds = [(0, question_len)]
        cursor = question_len
        for i in range(self.num_answers):
            stop = seqlen if i == self.num_answers - 1 else cursor + answer_len
            bounds.append((cursor, stop))
            cursor = stop
        return bounds

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        rows = np.arange(seqlen, dtype=np.int64)
        causal_end = rows + 1
        bounds = self.segment_bounds(seqlen)
        question_len = bounds[0][1]

        a_end = np.minimum(causal_end, question_len)
        b_start = _empty(seqlen)
        b_end = _empty(seqlen)
        for start, stop in bounds[1:]:
            inside = (rows >= start) & (rows < stop)
            b_start = np.where(inside, start, b_start)
            b_end = np.where(inside, causal_end, b_end)
        return AttendRanges(
            a_start=_empty(seqlen),
            a_end=a_end,
            b_start=b_start,
            b_end=b_end,
        )

    def describe(self) -> str:
        """Human-readable mask name with parameters."""
        return (
            f"shared_question(answers={self.num_answers}, "
            f"fraction={self.answer_fraction})"
        )


@dataclass(frozen=True)
class PackedDocumentMask(MaskSpec):
    """Block-diagonal causal mask for packed documents.

    Multiple documents are packed into one sequence (common in
    pre-training; see the paper's WLB-LLM discussion in §8): each token
    attends causally *within its own document only*.  ``doc_lens`` are
    the document lengths; tokens beyond their sum form one additional
    trailing document.
    """

    doc_lens: tuple
    name = "packed_documents"

    def __post_init__(self) -> None:
        """Validate parameters at construction."""
        if not self.doc_lens or any(n < 1 for n in self.doc_lens):
            raise ValueError("document lengths must be positive")

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        rows = np.arange(seqlen, dtype=np.int64)
        starts = np.zeros(seqlen, dtype=np.int64)
        cursor = 0
        for length in self.doc_lens:
            stop = min(cursor + length, seqlen)
            starts[cursor:stop] = cursor
            if stop >= seqlen:
                break
            cursor = stop
        else:
            starts[cursor:] = cursor  # overflow joins the last document
        return AttendRanges(
            a_start=starts,
            a_end=rows + 1,
            b_start=_empty(seqlen),
            b_end=_empty(seqlen),
        )

    def describe(self) -> str:
        """Human-readable mask name with parameters."""
        return f"packed_documents(docs={len(self.doc_lens)})"


@dataclass(frozen=True)
class PrefixLMMask(MaskSpec):
    """Prefix-LM mask: bidirectional prefix, causal continuation.

    The first ``prefix`` tokens attend to the whole prefix (encoder
    style); later tokens attend causally to everything before them.
    """

    prefix: int
    name = "prefix_lm"

    def __post_init__(self) -> None:
        """Validate parameters at construction."""
        if self.prefix < 0:
            raise ValueError("prefix must be non-negative")

    def ranges(self, seqlen: int) -> AttendRanges:
        """Attendable key ranges per query row (see base class)."""
        rows = np.arange(seqlen, dtype=np.int64)
        causal_end = rows + 1
        prefix = min(self.prefix, seqlen)
        a_end = np.where(rows < prefix, prefix, causal_end)
        return AttendRanges(
            a_start=_empty(seqlen),
            a_end=a_end,
            b_start=_empty(seqlen),
            b_end=_empty(seqlen),
        )

    def describe(self) -> str:
        """Human-readable mask name with parameters."""
        return f"prefix_lm(prefix={self.prefix})"


MASK_LIBRARY = {
    "full": FullMask,
    "causal": CausalMask,
    "lambda": LambdaMask,
    "causal_blockwise": CausalBlockwiseMask,
    "shared_question": SharedQuestionMask,
    "packed_documents": PackedDocumentMask,
    "prefix_lm": PrefixLMMask,
}


def make_mask(name: str, **kwargs) -> MaskSpec:
    """Instantiate a mask from the library by name.

    >>> make_mask("lambda", sink=16, window=128).describe()
    'lambda(sink=16, window=128)'
    """
    try:
        cls = MASK_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(MASK_LIBRARY))
        raise ValueError(f"unknown mask {name!r}; known masks: {known}") from None
    return cls(**kwargs)
