"""Attention-mask specifications.

DCP never materializes a dense ``[L, L]`` boolean mask during planning.
Instead, every mask is described by *at most two contiguous ranges of
attendable key positions per query row* — the same restriction the
paper's executor imposes ("arrays specifying the index ranges each token
should attend to, with the limitation of at most two ranges for each
token", §5).  All four masks evaluated in the paper (causal, lambda,
causal blockwise, shared question) fit this representation.

A :class:`MaskSpec` yields, for a sequence of length ``L``, four integer
arrays ``(a_start, a_end, b_start, b_end)`` of shape ``[L]``: query row
``i`` may attend to keys in ``[a_start[i], a_end[i]) ∪ [b_start[i],
b_end[i])``.  Ranges are half-open, non-overlapping, ordered (``a``
before ``b``), and an empty range has ``start == end``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AttendRanges", "MaskSpec"]


@dataclass(frozen=True)
class AttendRanges:
    """Per-row attendable key ranges for one sequence.

    Attributes
    ----------
    a_start, a_end:
        First (earlier) range per query row, shape ``[L]``, half-open.
    b_start, b_end:
        Second (later) range per query row; empty where ``start == end``.
    """

    a_start: np.ndarray
    a_end: np.ndarray
    b_start: np.ndarray
    b_end: np.ndarray

    def __post_init__(self) -> None:
        length = len(self.a_start)
        for arr in (self.a_end, self.b_start, self.b_end):
            if len(arr) != length:
                raise ValueError("all range arrays must share one length")

    @property
    def seqlen(self) -> int:
        return len(self.a_start)

    def row_count(self) -> np.ndarray:
        """Number of attendable keys per query row (shape ``[L]``)."""
        first = np.maximum(self.a_end - self.a_start, 0)
        second = np.maximum(self.b_end - self.b_start, 0)
        return first + second

    def total_pairs(self) -> int:
        """Total number of unmasked (query, key) pairs."""
        return int(self.row_count().sum())

    def overlap_with(self, kv_start: int, kv_stop: int) -> np.ndarray:
        """Per-row count of attendable keys inside ``[kv_start, kv_stop)``.

        Vectorized over all query rows; this is the primitive used to
        compute tile workloads for block generation.
        """
        first = np.clip(
            np.minimum(self.a_end, kv_stop) - np.maximum(self.a_start, kv_start),
            0,
            None,
        )
        second = np.clip(
            np.minimum(self.b_end, kv_stop) - np.maximum(self.b_start, kv_start),
            0,
            None,
        )
        return first + second

    def dense(self) -> np.ndarray:
        """Materialize the boolean mask (tests / tiny sequences only)."""
        return self.tile_mask(0, self.seqlen, 0, self.seqlen)

    def tile_mask(
        self, q_start: int, q_stop: int, k_start: int, k_stop: int
    ) -> np.ndarray:
        """Boolean mask of one tile: rows ``[q_start, q_stop)`` against
        keys ``[k_start, k_stop)``.  This is the method the executor uses
        to reconstruct per-tile masks from global token coordinates."""
        cols = np.arange(k_start, k_stop)[None, :]
        rows = slice(q_start, q_stop)
        in_a = (cols >= self.a_start[rows, None]) & (
            cols < self.a_end[rows, None]
        )
        in_b = (cols >= self.b_start[rows, None]) & (
            cols < self.b_end[rows, None]
        )
        return in_a | in_b

    def validate(self) -> None:
        """Check representation invariants; raise ``ValueError`` on breach."""
        if np.any(self.a_start > self.a_end) or np.any(self.b_start > self.b_end):
            raise ValueError("range start exceeds end")
        both = (self.a_end > self.a_start) & (self.b_end > self.b_start)
        if np.any(both & (self.b_start < self.a_end)):
            raise ValueError("ranges overlap or are out of order")
        length = self.seqlen
        for arr in (self.a_start, self.a_end, self.b_start, self.b_end):
            if np.any(arr < 0) or np.any(arr > length):
                raise ValueError("range bound outside [0, L]")


class MaskSpec:
    """Base class for attention-mask specifications.

    Subclasses implement :meth:`ranges`; everything else (dense
    materialization, workload computation, sparsity) derives from it.
    """

    name = "abstract"

    def ranges(self, seqlen: int) -> AttendRanges:
        raise NotImplementedError

    def dense(self, seqlen: int) -> np.ndarray:
        """Dense boolean mask of shape ``[L, L]`` (small ``L`` only)."""
        return self.ranges(seqlen).dense()

    def total_pairs(self, seqlen: int) -> int:
        """Number of unmasked (query, key) pairs for a sequence."""
        return self.ranges(seqlen).total_pairs()

    def sparsity_vs_causal(self, seqlen: int) -> float:
        """FLOP ratio of this mask relative to the causal mask (paper §7.3)."""
        causal_pairs = seqlen * (seqlen + 1) // 2
        return self.total_pairs(seqlen) / causal_pairs

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
