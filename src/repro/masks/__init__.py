"""Attention-mask specifications and tile-workload computation."""

from .spec import AttendRanges, MaskSpec
from .library import (
    CausalBlockwiseMask,
    CausalMask,
    FullMask,
    LambdaMask,
    MASK_LIBRARY,
    PackedDocumentMask,
    PrefixLMMask,
    SharedQuestionMask,
    make_mask,
)
from .multirange import (
    DenseMask,
    DilatedBlockMask,
    GlobalTokenMask,
    MultiRangeMask,
    MultiRanges,
)
from .workload import block_bounds, mask_workload_matrix, tile_workload_matrix

__all__ = [
    "AttendRanges",
    "MaskSpec",
    "MultiRanges",
    "MultiRangeMask",
    "DilatedBlockMask",
    "GlobalTokenMask",
    "DenseMask",
    "FullMask",
    "CausalMask",
    "LambdaMask",
    "CausalBlockwiseMask",
    "SharedQuestionMask",
    "PackedDocumentMask",
    "PrefixLMMask",
    "MASK_LIBRARY",
    "make_mask",
    "block_bounds",
    "tile_workload_matrix",
    "mask_workload_matrix",
]
