"""Masks with arbitrarily many attendable ranges per query row.

The paper's executor supports "at most two ranges for each token (for
simplicity of implementation)" and points at FlexAttention/FlashMask
for richer masks (§5).  This module lifts that limitation on the
reproduction's side: :class:`MultiRanges` stores a CSR-style list of
``[start, end)`` ranges per query row and implements the same protocol
as :class:`~repro.masks.AttendRanges` (``overlap_with``, ``tile_mask``,
``dense``, ``row_count``, ``total_pairs``, ``validate``), so block
generation, planning, execution and the timing simulator all work
unchanged with many-range masks.

Shipped mask families that genuinely need more than two ranges:

* :class:`DilatedBlockMask` — LongNet-style dilated block attention
  (a causal sliding window plus every ``stride``-th block of history);
* :class:`GlobalTokenMask` — Longformer-style global tokens (periodic
  anchor tokens everyone attends to, plus a causal local window);
* :class:`DenseMask` — any explicit boolean matrix, converted to
  row-ranges (the fully general escape hatch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import MaskSpec

__all__ = [
    "MultiRanges",
    "MultiRangeMask",
    "DilatedBlockMask",
    "GlobalTokenMask",
    "DenseMask",
]


@dataclass(frozen=True)
class MultiRanges:
    """CSR-style per-row attendable key ranges.

    Row ``i`` may attend to keys in the union of half-open ranges
    ``[starts[j], ends[j])`` for ``j in [indptr[i], indptr[i+1])``.
    Ranges of a row must be sorted and non-overlapping.
    """

    indptr: np.ndarray  # int64 [L + 1]
    starts: np.ndarray  # int64 [num_ranges]
    ends: np.ndarray  # int64 [num_ranges]

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.ends):
            raise ValueError("starts and ends must have equal length")
        if len(self.indptr) < 1 or self.indptr[-1] != len(self.starts):
            raise ValueError("indptr must close over all ranges")

    @property
    def seqlen(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_ranges(self) -> int:
        return len(self.starts)

    def ranges_of_row(self, row: int):
        """``(starts, ends)`` arrays of one query row."""
        lo, hi = int(self.indptr[row]), int(self.indptr[row + 1])
        return self.starts[lo:hi], self.ends[lo:hi]

    def max_ranges_per_row(self) -> int:
        return int(np.diff(self.indptr).max()) if self.seqlen else 0

    # -- the AttendRanges protocol ----------------------------------------

    def row_count(self) -> np.ndarray:
        """Number of attendable keys per query row (shape ``[L]``)."""
        lengths = np.maximum(self.ends - self.starts, 0)
        return self._row_sums(lengths)

    def total_pairs(self) -> int:
        return int(self.row_count().sum())

    def overlap_with(self, kv_start: int, kv_stop: int) -> np.ndarray:
        """Per-row count of attendable keys inside ``[kv_start, kv_stop)``."""
        clipped = np.clip(
            np.minimum(self.ends, kv_stop) - np.maximum(self.starts, kv_start),
            0,
            None,
        )
        return self._row_sums(clipped)

    def tile_mask(
        self, q_start: int, q_stop: int, k_start: int, k_stop: int
    ) -> np.ndarray:
        """Boolean tile mask via a difference-array sweep.

        Cost is ``O(ranges in the row span + tile area)`` — independent
        of how many ranges each row carries.
        """
        q_rows = q_stop - q_start
        width = k_stop - k_start
        lo, hi = int(self.indptr[q_start]), int(self.indptr[q_stop])
        row_of = np.repeat(
            np.arange(q_start, q_stop),
            np.diff(self.indptr[q_start : q_stop + 1]),
        )
        starts = np.clip(self.starts[lo:hi], k_start, k_stop) - k_start
        ends = np.clip(self.ends[lo:hi], k_start, k_stop) - k_start
        keep = ends > starts
        acc = np.zeros((q_rows, width + 1), dtype=np.int32)
        rows_local = row_of[keep] - q_start
        np.add.at(acc, (rows_local, starts[keep]), 1)
        np.add.at(acc, (rows_local, ends[keep]), -1)
        return acc[:, :-1].cumsum(axis=1) > 0

    def dense(self) -> np.ndarray:
        """Materialize the boolean mask (tests / small sequences only)."""
        return self.tile_mask(0, self.seqlen, 0, self.seqlen)

    def validate(self) -> None:
        """Check CSR invariants; raise ``ValueError`` on breach."""
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if np.any(self.starts > self.ends):
            raise ValueError("range start exceeds end")
        length = self.seqlen
        if self.num_ranges and (
            np.any(self.starts < 0) or np.any(self.ends > length)
        ):
            raise ValueError("range bound outside [0, L]")
        if self.num_ranges > 1:
            row_of = np.repeat(np.arange(length), np.diff(self.indptr))
            same_row = row_of[1:] == row_of[:-1]
            ordered = self.starts[1:] >= self.ends[:-1]
            if np.any(same_row & ~ordered):
                raise ValueError("ranges of a row overlap or are unsorted")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_rows(rows) -> "MultiRanges":
        """Build from ``rows[i] = [(start, end), ...]`` per query row."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        starts, ends = [], []
        for i, row in enumerate(rows):
            indptr[i + 1] = indptr[i] + len(row)
            for start, end in row:
                starts.append(start)
                ends.append(end)
        return MultiRanges(
            indptr=indptr,
            starts=np.asarray(starts, dtype=np.int64),
            ends=np.asarray(ends, dtype=np.int64),
        )

    @staticmethod
    def from_dense(mask: np.ndarray) -> "MultiRanges":
        """Convert a boolean ``[L, L]`` matrix to row ranges."""
        if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
            raise ValueError("mask must be a square boolean matrix")
        length = mask.shape[0]
        edges = np.diff(
            mask.astype(np.int8), axis=1, prepend=0, append=0
        )
        rise_rows, rise_cols = np.nonzero(edges == 1)
        fall_rows, fall_cols = np.nonzero(edges == -1)
        # Rises and falls alternate within each row, so the nonzero scans
        # (row-major) pair them up positionally.
        assert np.array_equal(rise_rows, fall_rows)
        indptr = np.zeros(length + 1, dtype=np.int64)
        np.cumsum(np.bincount(rise_rows, minlength=length), out=indptr[1:])
        return MultiRanges(
            indptr=indptr,
            starts=rise_cols.astype(np.int64),
            ends=fall_cols.astype(np.int64),
        )

    def _row_sums(self, values: np.ndarray) -> np.ndarray:
        prefix = np.concatenate(
            [[0], np.cumsum(values, dtype=np.int64)]
        )
        return prefix[self.indptr[1:]] - prefix[self.indptr[:-1]]


class MultiRangeMask(MaskSpec):
    """Base class for masks whose ``ranges`` returns :class:`MultiRanges`."""

    name = "multirange"

    def ranges(self, seqlen: int) -> MultiRanges:
        raise NotImplementedError

    def max_ranges_per_row(self, seqlen: int) -> int:
        return self.ranges(seqlen).max_ranges_per_row()


class DilatedBlockMask(MultiRangeMask):
    """LongNet-style dilated block attention.

    Each token attends causally to a local window of ``window`` tokens,
    plus (beyond the window) every ``stride``-th block of ``block``
    tokens of earlier history.  Range count per row grows as
    ``history / (block * stride)``, typically far beyond two.
    """

    name = "dilated_block"

    def __init__(self, block: int = 64, stride: int = 4,
                 window: int = 256) -> None:
        if block < 1 or stride < 1 or window < 1:
            raise ValueError("block, stride and window must be positive")
        self.block = block
        self.stride = stride
        self.window = window

    def ranges(self, seqlen: int) -> MultiRanges:
        rows = []
        period = self.block * self.stride
        for i in range(seqlen):
            window_start = max(0, i - self.window + 1)
            row = []
            for anchor in range(0, window_start, period):
                end = min(anchor + self.block, window_start)
                if end > anchor:
                    row.append((anchor, end))
            row.append((window_start, i + 1))
            rows.append(row)
        return MultiRanges.from_rows(rows)

    def describe(self) -> str:
        return (
            f"dilated_block(block={self.block}, stride={self.stride}, "
            f"window={self.window})"
        )


class GlobalTokenMask(MultiRangeMask):
    """Longformer-style periodic global tokens with a causal local window.

    Tokens at positions divisible by ``every`` are *global*: every later
    token attends to them, and they themselves attend to all earlier
    tokens.  All tokens also attend to a causal window of ``window``
    tokens.  Each scattered global token contributes its own range.
    """

    name = "global_token"

    def __init__(self, every: int = 128, window: int = 256) -> None:
        if every < 1 or window < 1:
            raise ValueError("every and window must be positive")
        self.every = every
        self.window = window

    def ranges(self, seqlen: int) -> MultiRanges:
        rows = []
        for i in range(seqlen):
            if i % self.every == 0:
                rows.append([(0, i + 1)])
                continue
            window_start = max(0, i - self.window + 1)
            row = [
                (g, g + 1)
                for g in range(0, window_start, self.every)
            ]
            row.append((window_start, i + 1))
            rows.append(row)
        return MultiRanges.from_rows(rows)

    def describe(self) -> str:
        return f"global_token(every={self.every}, window={self.window})"


class DenseMask(MultiRangeMask):
    """An arbitrary explicit boolean mask (the general escape hatch).

    The matrix fixes the sequence length; requesting ranges for any
    other length is an error rather than a silent crop.
    """

    name = "dense"

    def __init__(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
            raise ValueError("mask must be a square boolean matrix")
        self.mask = mask
        self._ranges = MultiRanges.from_dense(mask)

    def ranges(self, seqlen: int) -> MultiRanges:
        if seqlen != self.mask.shape[0]:
            raise ValueError(
                f"mask is {self.mask.shape[0]} tokens, requested {seqlen}"
            )
        return self._ranges

    def describe(self) -> str:
        return f"dense(L={self.mask.shape[0]})"
