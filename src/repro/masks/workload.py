"""Vectorized tile-workload computation.

Block generation (§4.1) needs, for every (Q-tile, KV-tile) pair of a
sequence, the number of unmasked (query, key) pairs inside the tile —
zero means the computation block is never constructed, and non-zero
values become computation-block FLOP weights for the hypergraph.

The computation is vectorized per KV tile: one pass over the per-row
range arrays gives the overlap of every query row with that KV tile,
and ``np.add.reduceat`` folds rows into Q tiles.  Total cost is
``O(num_kv_tiles * L)`` numpy work rather than ``O(L^2)``.
"""

from __future__ import annotations

import numpy as np

from .spec import AttendRanges, MaskSpec

__all__ = ["block_bounds", "tile_workload_matrix", "mask_workload_matrix"]


def block_bounds(seqlen: int, block_size: int) -> np.ndarray:
    """Token boundaries splitting ``[0, seqlen)`` into blocks.

    Returns an int array ``[num_blocks + 1]`` with the final (possibly
    short) block included.

    >>> block_bounds(10, 4).tolist()
    [0, 4, 8, 10]
    """
    if seqlen < 1:
        raise ValueError("seqlen must be positive")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    bounds = list(range(0, seqlen, block_size))
    bounds.append(seqlen)
    return np.asarray(bounds, dtype=np.int64)


def tile_workload_matrix(ranges: AttendRanges, bounds: np.ndarray) -> np.ndarray:
    """Unmasked (q, k) pair counts per tile.

    Parameters
    ----------
    ranges:
        Per-row attendable ranges of one sequence.
    bounds:
        Shared Q/KV tile boundaries from :func:`block_bounds`.

    Returns
    -------
    np.ndarray
        Integer matrix of shape ``[num_tiles, num_tiles]`` where entry
        ``(qi, ki)`` counts unmasked pairs between Q tile ``qi`` and KV
        tile ``ki``.
    """
    num_tiles = len(bounds) - 1
    starts = bounds[:-1]
    workload = np.zeros((num_tiles, num_tiles), dtype=np.int64)
    for ki in range(num_tiles):
        row_overlap = ranges.overlap_with(int(bounds[ki]), int(bounds[ki + 1]))
        workload[:, ki] = np.add.reduceat(row_overlap, starts)
    return workload


def mask_workload_matrix(
    mask: MaskSpec, seqlen: int, block_size: int
) -> np.ndarray:
    """Convenience wrapper: workload matrix straight from a mask spec."""
    bounds = block_bounds(seqlen, block_size)
    return tile_workload_matrix(mask.ranges(seqlen), bounds)
