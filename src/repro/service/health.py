"""Failure detection for plan serving: heartbeats + circuit breakers.

A dead shard that every request still probes turns one failure into a
fleet-wide latency cliff: each fetch pays the full timeout before
falling back.  The standard fix is a per-target *circuit breaker* —
after ``failure_threshold`` consecutive failures the breaker opens and
callers fail over instantly; after ``reset_after_s`` it half-opens and
admits exactly one probe, whose outcome closes or re-opens it.

:class:`ShardHealth` aggregates breakers per target (shards, planner
workers) and adds heartbeat bookkeeping: long-running components call
:meth:`ShardHealth.heartbeat` on every loop iteration, and anything
silent longer than ``heartbeat_timeout_s`` is reported dead even if it
never returned an error — the hung-worker case, which produces no
failures at all, only silence.

Both classes take an injectable ``clock`` (default
``time.monotonic``) so tests and the chaos harness can drive breaker
state transitions deterministically instead of sleeping through them.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..obs.metrics import MetricsRegistry

__all__ = ["CircuitBreaker", "ShardHealth"]

#: Breaker states (exposed for tests/introspection).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Classic three-state breaker over consecutive failures.

    * ``closed`` — traffic flows; ``failure_threshold`` consecutive
      failures open it.
    * ``open`` — :meth:`allow` is False until ``reset_after_s`` has
      elapsed since opening.
    * ``half_open`` — exactly one caller is admitted as a probe; its
      :meth:`record_success` closes the breaker, its
      :meth:`record_failure` re-opens it (and restarts the timer).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opened_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Open -> half-open once the reset timer elapses (lock held)."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_after_s):
            self._state = HALF_OPEN
            self._probing = False

    def allow(self) -> bool:
        """May the caller attempt the operation right now?

        In ``half_open`` only the first caller is admitted (the probe);
        concurrent callers keep failing fast until the probe reports.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = CLOSED
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                # Failed probe: straight back to open, timer restarted.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                self.opened_count += 1
                return
            self._failures += 1
            if self._state == CLOSED and \
                    self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self.opened_count += 1

    def trip(self) -> None:
        """Force-open (failure detection outside the call path,
        e.g. a missed heartbeat or an explicit kill notification)."""
        with self._lock:
            if self._state != OPEN:
                self._state = OPEN
                self.opened_count += 1
            self._opened_at = self._clock()
            self._probing = False


class ShardHealth:
    """Per-target breakers + heartbeat liveness for the service.

    Targets are plain strings (``"shard0"``, ``"worker:1"``).  The
    service consults :meth:`allow` before routing an operation at a
    target and reports outcomes back; loop-structured components
    additionally :meth:`heartbeat`, letting :meth:`is_alive` detect
    silent hangs.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 0.25,
        heartbeat_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._heartbeats: Dict[str, float] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._opened = self.metrics.counter("health.breaker_opened")
        self._fast_fails = self.metrics.counter("health.fast_fails")

    def breaker(self, target: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(target)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_after_s=self.reset_after_s,
                    clock=self._clock,
                )
                self._breakers[target] = breaker
            return breaker

    # -- call-path API ---------------------------------------------------

    def allow(self, target: str) -> bool:
        allowed = self.breaker(target).allow()
        if not allowed:
            self._fast_fails.inc()
        return allowed

    def record_success(self, target: str) -> None:
        self.breaker(target).record_success()
        self.heartbeat(target)

    def record_failure(self, target: str) -> None:
        breaker = self.breaker(target)
        before = breaker.opened_count
        breaker.record_failure()
        if breaker.opened_count > before:
            self._opened.inc()

    def trip(self, target: str) -> None:
        breaker = self.breaker(target)
        before = breaker.opened_count
        breaker.trip()
        if breaker.opened_count > before:
            self._opened.inc()

    # -- heartbeat API ---------------------------------------------------

    def heartbeat(self, target: str) -> None:
        with self._lock:
            self._heartbeats[target] = self._clock()

    def last_heartbeat(self, target: str) -> Optional[float]:
        with self._lock:
            return self._heartbeats.get(target)

    def is_alive(self, target: str) -> bool:
        """Heartbeat recency: has ``target`` checked in lately?

        A target that never heartbeat is presumed alive (it may simply
        not be loop-structured); one that did and then went silent past
        ``heartbeat_timeout_s`` is dead — the hung-worker signature.
        """
        with self._lock:
            stamp = self._heartbeats.get(target)
        if stamp is None:
            return True
        return self._clock() - stamp < self.heartbeat_timeout_s

    def alive(self, targets: List[str]) -> List[str]:
        return [t for t in targets if self.is_alive(t)]

    def snapshot(self) -> Dict[str, str]:
        """Target -> breaker state (for stats()/debugging)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {target: b.state for target, b in sorted(breakers.items())}
