"""Planner-as-a-service: multi-tenant plan serving (§6.1 scaled out).

The paper's §6.1 deployment has one training job pulling plans from
one planner pool.  This package serves the same plans to *many*
tenants — training jobs, eval sweeps, autoscalers probing hypothetical
cluster shapes — from shared infrastructure:

* :class:`~repro.service.sharding.ShardedPlanStore` — a
  consistent-hash ring of per-shard KV stores (per-shard locks,
  per-shard residency budgets) holding encoded plans beyond the hot
  cache's LRU horizon, with live rebalance on node add.
* :class:`~repro.service.admission.FairScheduler` +
  :class:`~repro.service.admission.AdmissionController` — weighted
  deficit round-robin over per-tenant queues plus typed load shedding
  (:class:`~repro.service.admission.PlanRejected`).
* :class:`~repro.service.forecast.WorkloadForecast` — BRAD-style
  per-epoch arrival counts per signature, predicting the next epoch's
  hot set for pre-warming.
* :class:`~repro.service.service.PlanService` — the facade: demand
  requests and pre-warms both flow through
  :class:`~repro.core.cache.PlanCache` reservations, so every
  signature is planned at most once, served from hot cache, warm
  store, or a fair-queued planner worker.
"""

from .admission import AdmissionController, FairScheduler, PlanRejected
from .forecast import WorkloadForecast
from .service import PREWARM_TENANT, PlanService, signature_key
from .sharding import HashRing, ShardedPlanStore

__all__ = [
    "PlanService",
    "PlanRejected",
    "AdmissionController",
    "FairScheduler",
    "WorkloadForecast",
    "HashRing",
    "ShardedPlanStore",
    "PREWARM_TENANT",
    "signature_key",
]
