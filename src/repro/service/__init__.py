"""Planner-as-a-service: multi-tenant plan serving (§6.1 scaled out).

The paper's §6.1 deployment has one training job pulling plans from
one planner pool.  This package serves the same plans to *many*
tenants — training jobs, eval sweeps, autoscalers probing hypothetical
cluster shapes — from shared infrastructure:

* :class:`~repro.service.sharding.ShardedPlanStore` — a
  consistent-hash ring of per-shard KV stores (per-shard locks,
  per-shard residency budgets) holding encoded plans beyond the hot
  cache's LRU horizon, with live rebalance on node add.
* :class:`~repro.service.admission.FairScheduler` +
  :class:`~repro.service.admission.AdmissionController` — weighted
  deficit round-robin over per-tenant queues plus typed load shedding
  (:class:`~repro.service.admission.PlanRejected`).
* :class:`~repro.service.forecast.WorkloadForecast` — BRAD-style
  per-epoch arrival counts per signature, predicting the next epoch's
  hot set for pre-warming.
* :class:`~repro.service.service.PlanService` — the facade: demand
  requests and pre-warms both flow through
  :class:`~repro.core.cache.PlanCache` reservations, so every
  signature is planned at most once, served from hot cache, warm
  store, or a fair-queued planner worker.

Robustness (PR 9) adds the failure-handling layer:

* :mod:`~repro.service.errors` — one typed failure hierarchy with a
  retryable/non-retryable split (duck-typed so lower layers can
  classify without importing this package).
* :mod:`~repro.service.health` — circuit breakers + heartbeat
  liveness (:class:`~repro.service.health.ShardHealth`), so requests
  route around dead shards instead of timing out into them.
* R-way replication in the sharded store (writes to R successors,
  replica-fallback reads, write-repair + anti-entropy healing) and
  hedged fetches with a p99-derived hedge delay.
* :mod:`~repro.service.degraded` — deterministic zigzag fallback
  plans (tagged ``meta["degraded"]``) served on deadline miss, with
  background upgrade to the optimal plan.
"""

from .admission import AdmissionController, FairScheduler
from .degraded import degraded_plan, is_degraded
from .errors import (
    KVOpDropped,
    PlannerUnavailable,
    PlanRejected,
    PlanTimeout,
    ServiceError,
    ShardUnavailable,
    TransientServiceError,
    is_retryable,
)
from .forecast import WorkloadForecast
from .health import CircuitBreaker, ShardHealth
from .service import PREWARM_TENANT, UPGRADE_TENANT, PlanService, \
    signature_key
from .sharding import HashRing, ShardedPlanStore

__all__ = [
    "PlanService",
    "PlanRejected",
    "AdmissionController",
    "FairScheduler",
    "WorkloadForecast",
    "HashRing",
    "ShardedPlanStore",
    "PREWARM_TENANT",
    "UPGRADE_TENANT",
    "signature_key",
    "ServiceError",
    "TransientServiceError",
    "ShardUnavailable",
    "KVOpDropped",
    "PlanTimeout",
    "PlannerUnavailable",
    "is_retryable",
    "CircuitBreaker",
    "ShardHealth",
    "degraded_plan",
    "is_degraded",
]
