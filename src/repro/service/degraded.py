"""Degraded-mode plans: a deterministic cheap fallback placement.

When the optimal planner cannot answer inside a fetch deadline (hung
worker, shed dispatch, dead shard on the warm path), the service must
still return *something executable*: a training step running a
baseline-quality plan beats a training step stalled on a perfect one.

The fallback reuses the repo's own cheap machinery end to end — block
generation, the static-CP zigzag placement every baseline framework
uses (:func:`repro.placement.zigzag_labels`, paper Fig. 4), and the
normal division scheduler/serializer — so the result is a fully valid
:class:`~repro.scheduling.instructions.ExecutionPlan` that executes on
the same runtime, just with baseline communication volume.  No
hypergraph partitioning, no refinement, no restarts: cost is dominated
by block generation, typically an order of magnitude under a full
plan.

Every degraded plan is tagged ``meta["degraded"] = True`` (and
``meta["degraded_source"] = "zigzag"``); the service serves it
immediately and schedules a background upgrade that atomically swaps
in the optimal plan through the cache's publication/epoch cursors.
"""

from __future__ import annotations

from typing import Optional

from ..blocks import BatchSpec, generate_blocks
from ..obs.trace import span as _span
from ..placement import Placement, build_block_hypergraph, zigzag_labels
from ..scheduling import build_schedule, serialize_schedule

__all__ = ["degraded_plan", "is_degraded"]


def degraded_plan(planner, batch: BatchSpec, cluster=None):
    """Deterministic zigzag-placement fallback plan for ``batch``.

    ``planner`` supplies the geometry (cluster, attention, block size,
    divisions) so a degraded plan targets exactly the shape the optimal
    plan would have; only the placement quality differs.  Works with
    any planner exposing ``cluster``/``attention``/``config`` (the
    :class:`~repro.core.planner.DCPPlanner` surface); wrapped planners
    without them fall back to defaults via ``getattr``.
    """
    cluster = cluster if cluster is not None else planner.cluster
    config = planner.config
    with _span("degraded_plan", "planner"):
        block_set = generate_blocks(
            batch,
            attention=getattr(planner, "attention", None),
            block_size=config.block_size,
        )
        bhg = build_block_hypergraph(block_set)
        labels = zigzag_labels(bhg, cluster.num_devices)
        slice_device, comp_device = bhg.labels_to_devices(labels)
        placement = Placement(
            block_set=block_set,
            cluster=cluster,
            slice_device=slice_device.copy(),
            comp_device=comp_device.copy(),
            num_vertices=bhg.graph.num_vertices,
            num_edges=bhg.graph.num_edges,
        )
        schedule = build_schedule(
            block_set,
            placement,
            num_divisions=config.num_divisions,
            strategy=config.scheduler,
        )
        plan = serialize_schedule(schedule)
    plan.meta["degraded"] = True
    plan.meta["degraded_source"] = "zigzag"
    return plan


def is_degraded(plan) -> bool:
    """Whether ``plan`` is a tagged degraded-mode fallback."""
    meta: Optional[dict] = getattr(plan, "meta", None)
    return bool(meta and meta.get("degraded"))
