"""Consistent-hash sharded plan store.

One coarse :class:`~repro.core.kvstore.KVStore` lock serializes every
tenant of a multi-tenant plan service; sharding the keyspace over a
ring of independent stores gives each shard its own lock (and its own
``max_bytes``/TTL budget), so unrelated signatures never contend.

:class:`HashRing` is the textbook construction: each node projects
``replicas`` virtual points onto a 64-bit circle (blake2b of
``"node#i"``), and a key belongs to the first node point at or after
the key's own hash.  Adding a node moves only the keys that land on
the new node's points — O(moved/total) ≈ 1/nodes — which
:meth:`ShardedPlanStore.add_node` exploits to rebalance live: the same
scan-and-re-key motion the delta re-planner uses on cluster events,
applied to shard residency instead of plan shape.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from hashlib import blake2b
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.kvstore import KVStore
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span as _span

__all__ = ["HashRing", "ShardedPlanStore"]


def _point(label: str) -> int:
    return int.from_bytes(blake2b(label.encode(), digest_size=8).digest(),
                          "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)
        if not self._nodes:
            raise ValueError("need at least one node")

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            self._points.append((_point(f"{node}#{replica}"), node))
        self._points.sort()

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def node_for(self, key: str) -> str:
        point = _point(key)
        index = bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0  # wrap: first point on the circle
        return self._points[index][1]


class ShardedPlanStore:
    """A ring of per-shard :class:`KVStore` nodes keyed by signature.

    Every shard is a full store — versioned writes, blocking gets,
    bounded residency (``max_bytes``/``ttl_s`` apply *per shard*) — but
    each holds its own lock, so the coarse serialization of one shared
    store disappears for keys that hash apart.  All shards feed the
    same metrics registry: ``kv.*`` counters aggregate across shards,
    ``service.store_shards``/``service.rebalanced_keys`` track the ring
    itself.

    :meth:`add_node` rebalances live: keys whose ring owner changed are
    re-keyed onto the new shard payload-intact (raw stored bytes move,
    no re-encode), under a store-wide rebalance lock so concurrent
    readers either find the old location or the new one, never neither.
    """

    def __init__(
        self,
        shards: int = 4,
        replicas: int = 64,
        max_bytes_per_shard: Optional[int] = None,
        ttl_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_bytes_per_shard = max_bytes_per_shard
        self.ttl_s = ttl_s
        self._rebalance_lock = threading.Lock()
        self._stores: Dict[str, KVStore] = {}
        names = [f"shard{i}" for i in range(shards)]
        self.ring = HashRing(names, replicas=replicas)
        for name in names:
            self._stores[name] = self._make_store()
        self._shards_gauge = self.metrics.gauge("service.store_shards")
        self._shards_gauge.set(shards)
        self._rebalanced = self.metrics.counter("service.rebalanced_keys")

    def _make_store(self) -> KVStore:
        return KVStore(
            metrics=self.metrics,
            max_bytes=self.max_bytes_per_shard,
            ttl_s=self.ttl_s,
        )

    @property
    def num_shards(self) -> int:
        return len(self._stores)

    @property
    def rebalanced_keys(self) -> int:
        return self._rebalanced.value

    def shard_for(self, key: str) -> str:
        return self.ring.node_for(key)

    def store(self, name: str) -> KVStore:
        return self._stores[name]

    # -- keyed operations ------------------------------------------------
    #
    # The rebalance lock is shared-read in spirit but plain in
    # implementation: operations take it only long enough to resolve
    # key -> shard, so the coarse section is the ring lookup, never the
    # shard's own put/get (which holds only that shard's lock).

    def _resolve(self, key: str) -> KVStore:
        with self._rebalance_lock:
            return self._stores[self.ring.node_for(key)]

    def put(self, key: str, value: Any) -> int:
        return self._resolve(key).put(key, value)

    def try_get(self, key: str) -> Optional[Any]:
        return self._resolve(key).try_get(key)

    def get(self, key: str, timeout: Optional[float] = None) -> Any:
        return self._resolve(key).get(key, timeout=timeout)

    def contains(self, key: str) -> bool:
        return self._resolve(key).contains(key)

    def delete(self, key: str) -> bool:
        return self._resolve(key).delete(key)

    def keys(self) -> List[str]:
        with self._rebalance_lock:
            stores = list(self._stores.values())
        out: List[str] = []
        for store in stores:
            out.extend(store.keys())
        return sorted(out)

    def size_bytes(self) -> int:
        with self._rebalance_lock:
            stores = list(self._stores.values())
        return sum(store.size_bytes() for store in stores)

    def shard_sizes(self) -> Dict[str, int]:
        """Resident bytes per shard — the balance the ring is for."""
        with self._rebalance_lock:
            return {
                name: store.size_bytes()
                for name, store in self._stores.items()
            }

    # -- topology --------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> Tuple[str, int]:
        """Grow the ring by one shard, migrating displaced keys.

        Returns ``(shard_name, moved_keys)``.  Only keys whose ring
        owner became the new node move (≈ ``1/shards`` of residency);
        each moves as its stored payload — raw bytes stay raw, pickled
        entries move decoded-then-re-encoded to the same bytes — so a
        reader after the move fetches exactly what it would have before.
        """
        with self._rebalance_lock:
            if name is None:
                index = len(self._stores)
                while f"shard{index}" in self._stores:
                    index += 1
                name = f"shard{index}"
            if name in self._stores:
                raise ValueError(f"shard {name!r} already exists")
            with _span("service.rebalance", "service", shard=name):
                self.ring.add(name)
                fresh = self._make_store()
                moved = 0
                for store in self._stores.values():
                    displaced = [
                        key for key in store.keys()
                        if self.ring.node_for(key) == name
                    ]
                    for key in displaced:
                        value = store.try_get(key)
                        if value is None:  # raced with eviction/TTL
                            continue
                        fresh.put(key, value)
                        store.delete(key)
                        moved += 1
                self._stores[name] = fresh
                self._shards_gauge.set(len(self._stores))
                self._rebalanced.inc(moved)
        return name, moved
