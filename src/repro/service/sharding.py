"""Consistent-hash sharded plan store with R-way replication.

One coarse :class:`~repro.core.kvstore.KVStore` lock serializes every
tenant of a multi-tenant plan service; sharding the keyspace over a
ring of independent stores gives each shard its own lock (and its own
``max_bytes``/TTL budget), so unrelated signatures never contend.

:class:`HashRing` is the textbook construction: each node projects
``replicas`` virtual points onto a 64-bit circle (blake2b of
``"node#i"``), and a key belongs to the first node point at or after
the key's own hash.  Adding a node moves only the keys that land on
the new node's points — O(moved/total) ≈ 1/nodes.

Replication (Dynamo-style) makes the store survive shard loss:

* a key's **owners** are the first ``replication`` *distinct* nodes
  clockwise from its hash (:meth:`HashRing.nodes_for`); writes go to
  every owner, and one reachable owner is enough for the write to
  succeed (missed replicas are healed later);
* reads fall back **replica by replica** in owner order, skipping
  shards whose circuit breaker is open (no timeout paid per dead
  shard), and **write-repair** any reachable owner found missing the
  key;
* a restarted (or newly added) shard is healed by that read repair
  plus **anti-entropy** (:meth:`ShardedPlanStore.sync`): scan every
  reachable shard, re-copy each key to any owner missing it;
* **hedged reads**: with replication > 1 a read may arm a hedge — if
  the primary has not answered within a p99-derived delay (from the
  live ``kv.get_s`` histogram), the next replica is queried in
  parallel and the first non-miss wins (the loser's result is
  discarded).

Failure *detection* is health-based, not timeout-based: every shard
operation reports success/failure into a
:class:`~repro.service.health.ShardHealth` breaker; a shard that
fails repeatedly is skipped instantly until its reset window elapses
(half-open probe).  Fault *injection* — the chaos harness — plugs in
as an optional :class:`~repro.faults.injector.FaultInjector`: killed
shards raise :class:`~repro.service.errors.ShardUnavailable`, slow
shards stall, lossy shards drop ops, and a kill→restart cycle wipes
the shard's contents (a real process restart loses host memory),
which is exactly what replication must survive.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_right
from hashlib import blake2b
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.kvstore import KVStore
from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.trace import span as _span
from .errors import KVOpDropped, ShardUnavailable, TransientServiceError
from .health import ShardHealth

__all__ = ["HashRing", "ShardedPlanStore"]


def _point(label: str) -> int:
    return int.from_bytes(blake2b(label.encode(), digest_size=8).digest(),
                          "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)
        if not self._nodes:
            raise ValueError("need at least one node")

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            self._points.append((_point(f"{node}#{replica}"), node))
        self._points.sort()

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def nodes_for(self, key: str, count: int = 1) -> List[str]:
        """First ``count`` *distinct* nodes clockwise from ``key``.

        The replication owner list: ``nodes_for(key, R)[0]`` is the
        primary, the rest are successor replicas.  ``count`` beyond
        the node population is clamped (you cannot hold more copies
        than there are shards).
        """
        count = min(max(count, 1), len(self._nodes))
        point = _point(key)
        index = bisect_right(self._points, (point, "￿"))
        total = len(self._points)
        out: List[str] = []
        seen: set = set()
        for probe in range(total):
            node = self._points[(index + probe) % total][1]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) == count:
                    break
        return out

    def node_for(self, key: str) -> str:
        return self.nodes_for(key, 1)[0]


class ShardedPlanStore:
    """A replicated ring of per-shard :class:`KVStore` nodes.

    Every shard is a full store — versioned writes, blocking gets,
    bounded residency (``max_bytes``/``ttl_s`` apply *per shard*) — but
    each holds its own lock, so the coarse serialization of one shared
    store disappears for keys that hash apart.  All shards feed the
    same metrics registry: ``kv.*`` counters aggregate across shards,
    ``service.*`` gauges/counters track the ring, replication, and
    repair machinery.

    With ``replication`` R > 1 the store tolerates R-1 simultaneous
    shard losses with no lost keys (see the module docstring for the
    write/read/repair protocol).  ``fault_injector`` wires the chaos
    harness in; ``anti_entropy_interval_s`` starts a background healer
    thread (otherwise call :meth:`sync` explicitly after topology or
    failure events).

    :meth:`add_node` rebalances live: every key's owner set is
    recomputed against the grown ring, copies land on new owners
    payload-intact (raw stored bytes move, no re-encode) and leave
    non-owners, under a store-wide rebalance lock so concurrent
    readers either find the old location or the new one, never
    neither.
    """

    def __init__(
        self,
        shards: int = 4,
        replicas: int = 64,
        replication: int = 1,
        max_bytes_per_shard: Optional[int] = None,
        ttl_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_injector=None,
        health: Optional[ShardHealth] = None,
        breaker_failures: int = 3,
        breaker_reset_s: float = 0.25,
        hedge_after_s: Optional[float] = None,
        anti_entropy_interval_s: Optional[float] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if replication < 1:
            raise ValueError("replication must be positive")
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ValueError("hedge_after_s must be non-negative")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_bytes_per_shard = max_bytes_per_shard
        self.ttl_s = ttl_s
        self.replication = min(replication, shards)
        self.hedge_after_s = hedge_after_s
        self._injector = fault_injector
        self.health = health if health is not None else ShardHealth(
            failure_threshold=breaker_failures,
            reset_after_s=breaker_reset_s,
            metrics=self.metrics,
        )
        self._rebalance_lock = threading.RLock()
        self._stores: Dict[str, KVStore] = {}
        self._seen_restarts: Dict[str, int] = {}
        names = [f"shard{i}" for i in range(shards)]
        self.ring = HashRing(names, replicas=replicas)
        for name in names:
            self._stores[name] = self._make_store()
        self._shards_gauge = self.metrics.gauge("service.store_shards")
        self._shards_gauge.set(shards)
        self._rebalanced = self.metrics.counter("service.rebalanced_keys")
        self._write_failures = self.metrics.counter(
            "service.replica_write_failures"
        )
        self._read_repairs = self.metrics.counter("service.read_repairs")
        self._ae_repairs = self.metrics.counter(
            "service.antientropy_repairs"
        )
        self._restarts_seen = self.metrics.counter(
            "service.shard_restarts_seen"
        )
        self._hedged = self.metrics.counter("service.hedged_fetches")
        self._hedge_wins = self.metrics.counter("service.hedge_wins")
        self._closed = threading.Event()
        self._ae_thread: Optional[threading.Thread] = None
        if anti_entropy_interval_s is not None:
            if anti_entropy_interval_s <= 0:
                raise ValueError("anti_entropy_interval_s must be positive")
            self._ae_thread = threading.Thread(
                target=self._anti_entropy_loop,
                args=(anti_entropy_interval_s,),
                name="plan-store-anti-entropy",
                daemon=True,
            )
            self._ae_thread.start()

    def _make_store(self) -> KVStore:
        return KVStore(
            metrics=self.metrics,
            max_bytes=self.max_bytes_per_shard,
            ttl_s=self.ttl_s,
        )

    @property
    def num_shards(self) -> int:
        with self._rebalance_lock:
            return len(self._stores)

    @property
    def rebalanced_keys(self) -> int:
        return self._rebalanced.value

    def shard_for(self, key: str) -> str:
        with self._rebalance_lock:
            return self.ring.node_for(key)

    def owners_for(self, key: str) -> List[str]:
        """Owner shard names in preference order (primary first)."""
        with self._rebalance_lock:
            return self.ring.nodes_for(key, self.replication)

    def store(self, name: str) -> KVStore:
        with self._rebalance_lock:
            return self._stores[name]

    # -- guarded shard access -------------------------------------------
    #
    # Every keyed operation flows through _shard_op: circuit-breaker
    # fail-fast first (no timeout paid on a known-dead shard), then
    # fault injection (delay, kill, drop), then the real store call,
    # with the outcome reported back into the breaker.

    def _check_restart(self, name: str) -> None:
        """Realize the data loss of a kill→restart cycle, lazily.

        The injector only flips availability; host memory is ours to
        model.  On the first operation after a restart the shard's
        backing store is replaced with a fresh empty one — exactly
        what a real process restart leaves behind — and the breaker is
        given a clean slate so the healed shard takes traffic again.
        """
        if self._injector is None:
            return
        count = self._injector.restart_count(f"shard:{name}")
        with self._rebalance_lock:
            if self._seen_restarts.get(name, 0) == count:
                return
            self._seen_restarts[name] = count
            self._stores[name] = self._make_store()
        self._restarts_seen.inc()
        self.health.record_success(name)

    def _shard_op(self, name: str, op: str, fn):
        if not self.health.allow(name):
            raise ShardUnavailable(name, reason="circuit_open")
        self._check_restart(name)
        if self._injector is not None:
            target = f"shard:{name}"
            delay = self._injector.delay_s(target)
            if delay > 0:
                time.sleep(delay)
            if self._injector.is_killed(target):
                self.health.record_failure(name)
                raise ShardUnavailable(name, reason="killed")
            if self._injector.should_drop(target, op):
                self.health.record_failure(name)
                raise KVOpDropped(target, op)
        with self._rebalance_lock:
            store = self._stores[name]
        try:
            result = fn(store)
        except TransientServiceError:
            self.health.record_failure(name)
            raise
        self.health.record_success(name)
        return result

    # -- keyed operations ------------------------------------------------

    def _resolve(self, key: str) -> KVStore:
        with self._rebalance_lock:
            return self._stores[self.ring.node_for(key)]

    def put(self, key: str, value: Any) -> int:
        """Write ``key`` to every reachable owner replica.

        Succeeds when at least one replica accepted the write (the
        rest heal by read repair / anti-entropy); raises
        :class:`ShardUnavailable` only when *no* owner is reachable.
        Returns the highest version any replica assigned.
        """
        owners = self.owners_for(key)
        version: Optional[int] = None
        for name in owners:
            try:
                wrote = self._shard_op(
                    name, "put", lambda s: s.put(key, value)
                )
            except TransientServiceError:
                self._write_failures.inc()
                continue
            version = wrote if version is None else max(version, wrote)
        if version is None:
            raise ShardUnavailable(
                "+".join(owners), reason="all_replicas_down"
            )
        return version

    def _read_owner(self, key: str, name: str) -> Optional[Any]:
        return self._shard_op(name, "get", lambda s: s.try_get(key))

    def _repair(self, key: str, value: Any, absent: List[str]) -> None:
        """Write-repair: re-copy ``key`` onto reachable owners that
        missed it (an earlier failed write, a wiped restart)."""
        for name in absent:
            try:
                self._shard_op(name, "put", lambda s: s.put(key, value))
                self._read_repairs.inc()
            except TransientServiceError:
                pass

    def try_get(self, key: str, hedge: bool = False,
                timeout_s: Optional[float] = None) -> Optional[Any]:
        """Replica-by-replica fetch; ``None`` only if no owner holds it.

        ``hedge=True`` (and replication > 1) arms the hedged path: the
        primary read races a delayed replica read, first hit wins (see
        :meth:`hedge_delay_s`).  ``timeout_s`` bounds the hedged wait.
        """
        owners = self.owners_for(key)
        if hedge and len(owners) > 1:
            return self._try_get_hedged(key, owners, timeout_s)
        absent: List[str] = []
        for name in owners:
            try:
                value = self._read_owner(key, name)
            except TransientServiceError:
                continue
            if value is not None:
                if absent:
                    self._repair(key, value, absent)
                return value
            absent.append(name)
        return None

    def hedge_delay_s(self) -> float:
        """How long to give the primary before hedging to a replica.

        ``hedge_after_s`` when configured; otherwise derived from the
        live ``kv.get_s`` latency histogram (p99, clamped to
        [0.5 ms, 100 ms]) once enough samples exist, with a 10 ms
        cold-start default.
        """
        if self.hedge_after_s is not None:
            return self.hedge_after_s
        hist = self.metrics.get("kv.get_s")
        if isinstance(hist, Histogram) and hist.count >= 50:
            p99 = hist.quantile(0.99)
            if math.isfinite(p99):
                return min(max(p99, 5e-4), 0.1)
        return 0.01

    def _try_get_hedged(self, key: str, owners: List[str],
                        timeout_s: Optional[float]) -> Optional[Any]:
        """Race the primary against a delayed replica read.

        The primary read runs in a helper thread; if it has not
        produced a hit within :meth:`hedge_delay_s`, the next replica
        is queried concurrently.  The first non-miss wins and the
        loser's (eventual) result is discarded — a slow or hung
        primary costs one hedge delay instead of a full stall.
        """
        done = threading.Condition()
        results: List[Optional[Any]] = []
        finished = [0]

        def fetch(name: str, is_hedge: bool) -> None:
            try:
                value = self._read_owner(key, name)
            except TransientServiceError:
                value = None
            with done:
                finished[0] += 1
                if value is not None:
                    results.append((value, is_hedge))
                done.notify_all()

        primary = threading.Thread(
            target=fetch, args=(owners[0], False), daemon=True
        )
        primary.start()
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        with done:
            done.wait_for(
                lambda: bool(results) or finished[0] >= 1,
                timeout=self.hedge_delay_s(),
            )
            if results:
                return results[0][0]
            primary_done = finished[0] >= 1
        if primary_done:
            # The primary answered quickly — it just doesn't hold the
            # key.  That is the ordinary replica-fallback case (with
            # write-repair of the reachable-but-absent primary), not a
            # hedge: the hedge counters stay untouched.
            for name in owners[1:]:
                try:
                    value = self._read_owner(key, name)
                except TransientServiceError:
                    continue
                if value is not None:
                    self._repair(key, value, [owners[0]])
                    return value
            return None
        # Primary is genuinely slow: hedge to the fallback replicas
        # while it keeps running; first non-miss wins.
        self._hedged.inc()
        hedge = threading.Thread(
            target=lambda: [fetch(name, True) for name in owners[1:]],
            daemon=True,
        )
        hedge.start()
        with done:
            done.wait_for(
                lambda: bool(results) or finished[0] >= len(owners),
                timeout=(
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                ),
            )
            if results:
                value, from_hedge = results[0]
                if from_hedge:
                    self._hedge_wins.inc()
                return value
        return None

    def get(self, key: str, timeout: Optional[float] = None) -> Any:
        """Blocking fetch across replicas.

        Replication 1 without injection delegates to the shard's own
        blocking get (condition-variable wait); otherwise replicas are
        polled so a killed primary cannot absorb the whole timeout.
        """
        if self.replication == 1 and self._injector is None:
            return self._resolve(key).get(key, timeout=timeout)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        interval = 0.001
        while True:
            value = self.try_get(key)
            if value is not None:
                return value
            if deadline is not None and time.monotonic() >= deadline:
                raise KeyError(key)
            time.sleep(interval)
            interval = min(interval * 2, 0.02)

    def contains(self, key: str) -> bool:
        for name in self.owners_for(key):
            try:
                if self._shard_op(name, "contains",
                                  lambda s: s.contains(key)):
                    return True
            except TransientServiceError:
                continue
        return False

    def delete(self, key: str) -> bool:
        existed = False
        for name in self.owners_for(key):
            try:
                existed |= self._shard_op(
                    name, "delete", lambda s: s.delete(key)
                )
            except TransientServiceError:
                continue
        return existed

    def keys(self) -> List[str]:
        """Union of keys over reachable shards (replicas deduplicated)."""
        with self._rebalance_lock:
            names = list(self._stores)
        out: set = set()
        for name in names:
            try:
                out.update(
                    self._shard_op(name, "keys", lambda s: s.keys())
                )
            except TransientServiceError:
                continue
        return sorted(out)

    def size_bytes(self) -> int:
        with self._rebalance_lock:
            stores = list(self._stores.values())
        return sum(store.size_bytes() for store in stores)

    def shard_sizes(self) -> Dict[str, int]:
        """Resident bytes per shard — the balance the ring is for."""
        with self._rebalance_lock:
            return {
                name: store.size_bytes()
                for name, store in self._stores.items()
            }

    # -- healing ---------------------------------------------------------

    def sync(self) -> int:
        """Anti-entropy pass: every key onto every reachable owner.

        Scans reachable shards for the full key population, then
        re-copies each key (payload-intact) to any owner replica
        missing it — how a restarted/wiped or freshly added shard
        converges back to full replication.  Returns the number of
        copies created.
        """
        with self._rebalance_lock:
            names = list(self._stores)
        holders: Dict[str, str] = {}
        for name in names:
            try:
                for key in self._shard_op(name, "keys",
                                          lambda s: s.keys()):
                    holders.setdefault(key, name)
            except TransientServiceError:
                continue
        repaired = 0
        with _span("service.anti_entropy", "service",
                   keys=len(holders)):
            for key, holder in holders.items():
                owners = self.owners_for(key)
                value = None
                for source in [holder] + [
                    n for n in owners if n != holder
                ]:
                    try:
                        value = self._read_owner(key, source)
                    except TransientServiceError:
                        value = None
                    if value is not None:
                        break
                if value is None:
                    continue
                for name in owners:
                    try:
                        present = self._shard_op(
                            name, "contains", lambda s: s.contains(key)
                        )
                        if not present:
                            self._shard_op(
                                name, "put",
                                lambda s: s.put(key, value),
                            )
                            repaired += 1
                    except TransientServiceError:
                        continue
        if repaired:
            self._ae_repairs.inc(repaired)
        return repaired

    def _anti_entropy_loop(self, interval_s: float) -> None:
        while not self._closed.wait(timeout=interval_s):
            try:
                self.sync()
            except Exception:  # pragma: no cover - healer must survive
                pass

    def missing_replicas(self) -> int:
        """Owner slots currently missing their copy (0 = fully healed)."""
        missing = 0
        for key in self.keys():
            for name in self.owners_for(key):
                try:
                    if not self._shard_op(name, "contains",
                                          lambda s: s.contains(key)):
                        missing += 1
                except TransientServiceError:
                    missing += 1
        return missing

    def close(self) -> None:
        self._closed.set()
        if self._ae_thread is not None:
            self._ae_thread.join(timeout=5.0)
            self._ae_thread = None

    # -- topology --------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> Tuple[str, int]:
        """Grow the ring by one shard, migrating displaced copies.

        Returns ``(shard_name, moved_keys)`` where ``moved_keys``
        counts copies created on the new shard.  Every key's owner set
        is recomputed against the grown ring: copies land on new
        owners payload-intact (raw stored bytes move, no re-encode)
        and leave shards that stopped owning them, so a reader after
        the move fetches exactly what it would have before.
        """
        with self._rebalance_lock:
            if name is None:
                index = len(self._stores)
                while f"shard{index}" in self._stores:
                    index += 1
                name = f"shard{index}"
            if name in self._stores:
                raise ValueError(f"shard {name!r} already exists")
            with _span("service.rebalance", "service", shard=name):
                self.ring.add(name)
                fresh = self._make_store()
                self._stores[name] = fresh
                moved = 0
                holders: Dict[str, List[str]] = {}
                for shard, store in self._stores.items():
                    for key in store.keys():
                        holders.setdefault(key, []).append(shard)
                for key, holding in holders.items():
                    owners = self.ring.nodes_for(key, self.replication)
                    value = None
                    for source in holding:
                        value = self._stores[source].try_get(key)
                        if value is not None:
                            break
                    if value is None:  # raced with eviction/TTL
                        continue
                    for owner in owners:
                        if owner not in holding:
                            self._stores[owner].put(key, value)
                            if owner == name:
                                moved += 1
                    for shard in holding:
                        if shard not in owners:
                            self._stores[shard].delete(key)
                self._shards_gauge.set(len(self._stores))
                self._rebalanced.inc(moved)
        return name, moved
