"""Workload forecasting for pre-warm planning (BRAD-style).

The forecaster keeps what BRAD calls the *workload* abstraction: per
epoch, how many times each batch signature arrived.  Histories of a
few epochs are enough to predict the next epoch's hot set — recurring
signatures dominate training traffic (bucketed batching repeats
shapes), so an exponentially-weighted count over recent epochs ranks
them well — and the service pre-plans those signatures before demand
asks, through the same cache-reservation path demand uses, so a
pre-warm and a demand request can never plan the same signature twice.

Deliberately minimal: no model fitting, no timestamps — epochs are
request-count windows rolled by the service, and the only state is a
bounded deque of per-epoch count dicts.
"""

from __future__ import annotations

import threading
from collections import Counter as TallyCounter
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = ["WorkloadForecast"]


class WorkloadForecast:
    """Per-epoch arrival counts per signature, with hot-set prediction.

    ``history`` bounds how many completed epochs are retained;
    ``decay`` is the per-epoch weight multiplier when scoring (most
    recent epoch weighs 1, the one before ``decay``, then ``decay**2``
    ...).  Thread-safe: the service records arrivals from every client
    thread.
    """

    def __init__(
        self,
        history: int = 4,
        decay: float = 0.5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if history < 1:
            raise ValueError("history must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.history = history
        self.decay = decay
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._epochs: deque = deque(maxlen=history)
        self._current: TallyCounter = TallyCounter()
        self._epoch = 0
        self._epoch_gauge = self.metrics.gauge("service.forecast_epoch")
        self._arrivals = self.metrics.counter("service.forecast_arrivals")

    @property
    def epoch(self) -> int:
        """Completed epochs so far."""
        with self._lock:
            return self._epoch

    def record(self, signature: Hashable, count: int = 1) -> None:
        """One (or ``count``) demand arrivals of ``signature``."""
        with self._lock:
            self._current[signature] += count
        self._arrivals.inc(count)

    def roll_epoch(self) -> Dict[Hashable, int]:
        """Close the current epoch; returns its arrival counts."""
        with self._lock:
            closed = dict(self._current)
            self._epochs.append(closed)
            self._current = TallyCounter()
            self._epoch += 1
            self._epoch_gauge.set(self._epoch)
        return closed

    def scores(self) -> Dict[Hashable, float]:
        """Decayed arrival score per signature over retained epochs."""
        with self._lock:
            epochs = list(self._epochs)
        scored: Dict[Hashable, float] = {}
        weight = 1.0
        for counts in reversed(epochs):  # newest first
            for signature, count in counts.items():
                scored[signature] = scored.get(signature, 0.0) + weight * count
            weight *= self.decay
        return scored

    def predict(self, top_k: int = 16) -> List[Hashable]:
        """The predicted hot set for the next epoch, hottest first.

        Ties break deterministically on the signature's repr so the
        pre-warm set is stable run to run.
        """
        if top_k < 1:
            raise ValueError("top_k must be positive")
        ranked: List[Tuple[float, str, Hashable]] = sorted(
            ((score, repr(signature), signature)
             for signature, score in self.scores().items()),
            key=lambda item: (-item[0], item[1]),
        )
        return [signature for _score, _tie, signature in ranked[:top_k]]
