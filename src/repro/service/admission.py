"""Admission control + weighted fair queueing for plan serving.

A multi-tenant planner is a classic shared-bottleneck: planning a
batch costs tens of milliseconds of CPU, and one chatty tenant can
starve everyone else if jobs run FIFO.  Two cooperating pieces fix
that:

* :class:`AdmissionController` — load shedding at the door.  Per-tenant
  queue-depth and in-flight caps plus a global queue bound; a request
  over any limit is rejected *typed* (:class:`PlanRejected`, carrying
  the reason and a retry-after hint) instead of silently queueing into
  a latency cliff.
* :class:`FairScheduler` — weighted deficit round-robin over per-tenant
  queues.  Each tenant accumulates credit (``quantum * weight``) when
  its turn comes around; a job is served when the tenant's deficit
  covers its cost.  Heavier weights drain proportionally faster, light
  tenants are never starved, and a tenant's burst can only consume its
  own queue depth — the isolation the per-tenant caps promise.

The scheduler is the only queue in the service: planner workers
``pop()`` from it, so fairness is enforced at dequeue time — exactly
where a shared worker pool decides whose job runs next.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .errors import PlanRejected

__all__ = ["PlanRejected", "AdmissionController", "FairScheduler"]


class AdmissionController:
    """Load-shedding policy: per-tenant and global bounds.

    Pure policy, no state of its own — :class:`FairScheduler` presents
    the occupancy snapshot under its lock and this object decides.
    """

    def __init__(
        self,
        max_queued_per_tenant: int = 8,
        max_inflight_per_tenant: int = 4,
        max_queued_total: Optional[int] = None,
        retry_after_s: float = 0.02,
    ) -> None:
        if max_queued_per_tenant < 1 or max_inflight_per_tenant < 1:
            raise ValueError("per-tenant bounds must be positive")
        if max_queued_total is not None and max_queued_total < 1:
            raise ValueError("max_queued_total must be positive")
        self.max_queued_per_tenant = max_queued_per_tenant
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.max_queued_total = max_queued_total
        self.retry_after_s = retry_after_s

    def reject_reason(self, queued: int, inflight: int,
                      total_queued: int) -> Optional[str]:
        """Why this request must be shed, or ``None`` to admit.

        ``queued``/``inflight`` are the requesting tenant's occupancy,
        ``total_queued`` the whole scheduler's.  In-flight counts jobs
        a worker has dequeued but not finished: a tenant at its
        concurrency cap with an empty queue is still saturating its
        share of the workers.
        """
        if (self.max_queued_total is not None
                and total_queued >= self.max_queued_total):
            return "service_saturated"
        if queued >= self.max_queued_per_tenant:
            return "tenant_queue_full"
        if queued + inflight >= (self.max_queued_per_tenant
                                 + self.max_inflight_per_tenant):
            return "tenant_inflight"
        return None


class FairScheduler:
    """Weighted deficit round-robin over per-tenant job queues.

    ``submit`` enqueues (or sheds, via the admission policy) a
    ``(job, cost)`` for a tenant; ``pop`` serves the next job in WDRR
    order.  Deficit counters follow the classic scheme: when a tenant
    reaches the head of the active list its deficit grows by
    ``quantum * weight``; its head job is served once the deficit
    covers the job's cost, and the deficit resets when the tenant's
    queue empties (credit must not accumulate while idle — that would
    let a sleeping tenant burst past everyone on wake-up).
    """

    def __init__(
        self,
        admission: Optional[AdmissionController] = None,
        quantum: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.quantum = quantum
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._queues: Dict[str, deque] = {}
        self._weights: Dict[str, float] = {}
        self._deficit: Dict[str, float] = {}
        #: Tenants already granted their once-per-visit quantum.
        self._topped: set = set()
        self._inflight: Dict[str, int] = {}
        self._active: deque = deque()  # tenants with queued jobs
        self._total_queued = 0
        self._closed = False
        self._admitted = self.metrics.counter("service.admitted")
        self._rejected = self.metrics.counter("service.rejected")
        self._rejected_by: Dict[str, object] = {
            reason: self.metrics.counter(f"service.rejected_{reason}")
            for reason in ("tenant_queue_full", "tenant_inflight",
                           "service_saturated")
        }
        self._depth_gauge = self.metrics.gauge("service.queue_depth")
        self._served = self.metrics.counter("service.served")

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        with self._lock:
            self._weights[tenant] = float(weight)

    def tenants(self) -> Dict[str, Tuple[int, int]]:
        """Occupancy snapshot: tenant -> (queued, inflight)."""
        with self._lock:
            names = set(self._queues) | set(self._inflight)
            return {
                name: (len(self._queues.get(name, ())),
                       self._inflight.get(name, 0))
                for name in names
            }

    @property
    def total_queued(self) -> int:
        with self._lock:
            return self._total_queued

    def submit(self, tenant: str, job, cost: float = 1.0) -> None:
        """Enqueue ``job`` for ``tenant`` or raise :class:`PlanRejected`."""
        if cost <= 0:
            raise ValueError("job cost must be positive")
        with self._ready:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            queue = self._queues.get(tenant)
            queued = len(queue) if queue is not None else 0
            reason = self.admission.reject_reason(
                queued, self._inflight.get(tenant, 0), self._total_queued
            )
            if reason is not None:
                self._rejected.inc()
                self._rejected_by[reason].inc()
                raise PlanRejected(
                    tenant, reason,
                    retry_after_s=self.admission.retry_after_s,
                )
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue:
                self._active.append(tenant)
                self._deficit.setdefault(tenant, 0.0)
            queue.append((job, float(cost)))
            self._total_queued += 1
            self._admitted.inc()
            self._depth_gauge.set(self._total_queued)
            self._ready.notify()

    def pop(self, timeout: Optional[float] = None):
        """Next ``(tenant, job)`` in WDRR order; ``None`` on close/timeout.

        The caller (a planner worker) owns the job until it calls
        :meth:`task_done` — the interval the in-flight cap counts.
        """
        with self._ready:
            while True:
                if self._total_queued:
                    break
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None
            # WDRR round: the head tenant's deficit is topped up by
            # quantum * weight exactly once per visit; it keeps serving
            # (staying at the head across pops) while the credit covers
            # its head job, then yields the head to the next tenant.
            # Heavier weights drain proportionally more jobs per round;
            # progress is guaranteed because every full rotation grants
            # each queued tenant quantum * weight > 0.
            while True:
                tenant = self._active[0]
                queue = self._queues[tenant]
                job, cost = queue[0]
                if tenant not in self._topped:
                    self._topped.add(tenant)
                    self._deficit[tenant] += (
                        self.quantum * self._weights.get(tenant, 1.0)
                    )
                if self._deficit[tenant] >= cost:
                    queue.popleft()
                    self._deficit[tenant] -= cost
                    self._total_queued -= 1
                    self._depth_gauge.set(self._total_queued)
                    if not queue:
                        self._active.popleft()
                        del self._queues[tenant]
                        # Idle tenants hold no credit into their next
                        # burst, and a fresh burst earns a fresh visit.
                        self._deficit.pop(tenant, None)
                        self._topped.discard(tenant)
                    self._inflight[tenant] = (
                        self._inflight.get(tenant, 0) + 1
                    )
                    self._served.inc()
                    return tenant, job
                # Visit over: spend-down exhausted the quantum.
                self._topped.discard(tenant)
                self._active.rotate(-1)

    def task_done(self, tenant: str) -> None:
        with self._lock:
            count = self._inflight.get(tenant, 0) - 1
            if count > 0:
                self._inflight[tenant] = count
            else:
                self._inflight.pop(tenant, None)

    def close(self) -> None:
        """Wake every blocked :meth:`pop` with ``None``; no new submits."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()
