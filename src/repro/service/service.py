"""Planner-as-a-service: multi-tenant plan serving.

:class:`PlanService` composes the repo's existing planning stack into
one long-running server:

* the :class:`~repro.core.cache.PlanCache` stays the single
  exactly-once gate — every demand request and every pre-warm goes
  through :meth:`~repro.core.cache.PlanCache.reserve`, so one
  signature is planned by at most one worker no matter how many
  tenants (or the forecaster) race on it;
* a :class:`~repro.service.sharding.ShardedPlanStore` persists encoded
  plans (columnar wire bytes) beyond the cache's LRU horizon, so a
  signature evicted from the hot cache is *decoded*, not re-planned,
  on its next request;
* an :class:`~repro.service.admission.FairScheduler` (weighted deficit
  round-robin + typed load shedding) decides which tenant's planning
  job a worker runs next;
* a :class:`~repro.service.forecast.WorkloadForecast` tallies demand
  arrivals per epoch and pre-warms the predicted hot set through the
  same reservation path, so pre-warm and demand never double-plan.

Plans served through the service are fingerprint-identical to the
synchronous ``planner.plan_batch`` article: the cache holds the
planner's own object, and the store round-trips through the canonical
columnar encoding (:mod:`repro.core.planwire`).
"""

from __future__ import annotations

import threading
import time
from hashlib import blake2b
from typing import Dict, List, Optional

from ..blocks import BatchSpec
from ..core.cache import PlanCache, batch_signature
from ..core.planwire import decode_plan, encode_plan
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span as _span
from .admission import AdmissionController, FairScheduler, PlanRejected
from .forecast import WorkloadForecast
from .sharding import ShardedPlanStore

__all__ = ["PlanService"]

#: Tenant name pre-warm jobs run under: a real scheduler tenant (its
#: jobs are admission-controlled and fair-queued like anyone's) with a
#: light default weight, so speculation never crowds out demand.
PREWARM_TENANT = "__prewarm__"


def signature_key(signature) -> str:
    """Stable store key for a batch signature (shard-hash friendly)."""
    digest = blake2b(repr(signature).encode(), digest_size=16).hexdigest()
    return f"sig/{digest}"


class PlanService:
    """Multi-tenant plan serving over cache + sharded store + planner pool.

    Parameters
    ----------
    planner:
        Any ``plan_batch`` object; the single source of plan truth.
    workers:
        Planner worker threads draining the fair scheduler.
    cache_capacity:
        Hot-cache entries (decoded plans, LRU).
    shards / max_bytes_per_shard / ttl_s:
        Warm-store geometry; see :class:`ShardedPlanStore`.
    admission:
        Load-shedding policy; defaults mirror
        :class:`AdmissionController`.
    prewarm_top_k / epoch_requests:
        Forecast geometry: every ``epoch_requests`` demand requests the
        arrival epoch rolls and the top-``prewarm_top_k`` predicted
        signatures are pre-warmed.  ``epoch_requests=None`` disables
        auto-rolling (call :meth:`roll_epoch` yourself).
    """

    def __init__(
        self,
        planner,
        workers: int = 2,
        cache_capacity: int = 64,
        shards: int = 4,
        max_bytes_per_shard: Optional[int] = None,
        ttl_s: Optional[float] = None,
        admission: Optional[AdmissionController] = None,
        quantum: float = 1.0,
        prewarm_top_k: int = 8,
        epoch_requests: Optional[int] = None,
        prewarm_weight: float = 0.5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one planner worker")
        if prewarm_top_k < 1:
            raise ValueError("prewarm_top_k must be positive")
        if epoch_requests is not None and epoch_requests < 1:
            raise ValueError("epoch_requests must be positive")
        self.planner = planner
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = PlanCache(
            planner, capacity=cache_capacity, metrics=self.metrics
        )
        self.store = ShardedPlanStore(
            shards=shards,
            max_bytes_per_shard=max_bytes_per_shard,
            ttl_s=ttl_s,
            metrics=self.metrics,
        )
        self.scheduler = FairScheduler(
            admission=admission, quantum=quantum, metrics=self.metrics
        )
        self.scheduler.set_weight(PREWARM_TENANT, prewarm_weight)
        self.forecast = WorkloadForecast(metrics=self.metrics)
        self.prewarm_top_k = prewarm_top_k
        self.epoch_requests = epoch_requests
        self._requests = self.metrics.counter("service.requests")
        self._cache_hits = self.metrics.counter("service.cache_hits")
        self._store_hits = self.metrics.counter("service.store_hits")
        self._planned = self.metrics.counter("service.planned")
        self._prewarm_submitted = self.metrics.counter(
            "service.prewarm_submitted"
        )
        self._prewarm_hits = self.metrics.counter("service.prewarm_hits")
        self._fetch_s = self.metrics.histogram("service.fetch_s")
        self._plan_s = self.metrics.histogram("service.plan_s")
        self._busy_s = self.metrics.counter("service.worker_busy_s")
        self._lock = threading.Lock()
        #: Last-seen batch per signature — what pre-warm re-plans from
        #: (a signature alone cannot rebuild its BatchSpec).  Bounded:
        #: entries are only reachable through the forecast's hot set,
        #: and stale ones are pruned on epoch roll.
        self._exemplars: Dict[object, BatchSpec] = {}
        #: Signatures whose *cached* entry was produced by pre-warm and
        #: not (yet) re-planned by demand: a demand hit on one counts
        #: as a pre-warm hit.
        self._prewarmed: set = set()
        self._demand_since_roll = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"plan-service-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- worker side -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self.scheduler.pop(timeout=1.0)
            if item is None:
                if self._closed:
                    return
                continue
            tenant, job = item
            start = time.perf_counter()
            try:
                job()
            finally:
                self._busy_s.inc(time.perf_counter() - start)
                self.scheduler.task_done(tenant)

    def _plan_job(self, signature, batch: BatchSpec, epoch: int,
                  prewarm: bool):
        """The unit of work a planner worker runs for one signature."""

        def job() -> None:
            try:
                with _span("service.plan", "service",
                           prewarm=int(prewarm)):
                    start = time.perf_counter()
                    plan = self.planner.plan_batch(batch)
                    self._plan_s.observe(time.perf_counter() - start)
                self.store.put(
                    signature_key(signature), encode_plan(plan).to_bytes()
                )
                self._publish(signature, plan, epoch, prewarm=prewarm)
                self._planned.inc()
            except BaseException as exc:
                self.cache.abandon(signature, exc, epoch=epoch)
                raise

        return job

    def _publish(self, signature, plan, epoch: int, prewarm: bool) -> None:
        """Insert into the hot cache + mark the entry's provenance."""
        with self._lock:
            if prewarm:
                self._prewarmed.add(signature)
            else:
                self._prewarmed.discard(signature)
        self.cache.publish(signature, plan, epoch)

    # -- demand path -----------------------------------------------------

    def fetch_plan(self, tenant: str, batch: BatchSpec,
                   timeout: Optional[float] = None):
        """Serve ``tenant`` the plan for ``batch``.

        Raises :class:`PlanRejected` when admission sheds the request
        (including requests that joined a reservation whose owning
        dispatch was shed — waiters share their owner's fate, so a
        shed signature fails fast for everyone instead of stranding
        the joiners).
        """
        start = time.perf_counter()
        signature = batch_signature(batch)
        with _span("service.fetch", "service", tenant=tenant):
            self._requests.inc()
            self.forecast.record(signature)
            with self._lock:
                self._exemplars[signature] = batch
            status, payload, epoch = self.cache.reserve(signature)
            if status == "hit":
                self._cache_hits.inc()
                with self._lock:
                    if signature in self._prewarmed:
                        self._prewarm_hits.inc()
                plan = payload
            elif status == "wait":
                plan = payload.result(timeout=timeout)
            else:
                plan = self._serve_miss(tenant, signature, batch, payload,
                                        epoch, timeout)
            self._fetch_s.observe(time.perf_counter() - start)
        self._maybe_roll_epoch()
        return plan

    def _serve_miss(self, tenant: str, signature, batch, reservation,
                    epoch: int, timeout: Optional[float]):
        """Owner path: store lookup first, else a fair-queued dispatch."""
        blob = self.store.try_get(signature_key(signature))
        if blob is not None:
            plan = decode_plan(blob)
            self._store_hits.inc()
            self._publish(signature, plan, epoch, prewarm=False)
            return plan
        try:
            self.scheduler.submit(
                tenant, self._plan_job(signature, batch, epoch,
                                       prewarm=False),
            )
        except PlanRejected as exc:
            # Release anyone who joined this reservation with the same
            # typed error, then surface it to the owner.
            self.cache.abandon(signature, exc, epoch=epoch)
            raise
        return reservation.result(timeout=timeout)

    # -- forecast / pre-warm path ---------------------------------------

    def _maybe_roll_epoch(self) -> None:
        if self.epoch_requests is None:
            return
        with self._lock:
            self._demand_since_roll += 1
            if self._demand_since_roll < self.epoch_requests:
                return
            self._demand_since_roll = 0
        self.roll_epoch()

    def roll_epoch(self) -> int:
        """Close the arrival epoch and pre-warm the predicted hot set.

        Returns the number of pre-warm dispatches submitted.
        """
        self.forecast.roll_epoch()
        hot = self.forecast.predict(top_k=self.prewarm_top_k)
        with self._lock:
            # Exemplars only need to cover what pre-warm might plan.
            keep = set(hot)
            self._exemplars = {
                signature: batch
                for signature, batch in self._exemplars.items()
                if signature in keep
            }
        return self.prewarm(hot)

    def prewarm(self, signatures: List) -> int:
        """Pre-plan ``signatures`` through the reservation path.

        Signatures already cached, already in flight (someone is
        planning them right now), or without a recorded exemplar batch
        are skipped; the rest dispatch under the pre-warm tenant.
        Pre-warm reservations do not count into cache hit/miss stats
        (they are speculation, not demand).
        """
        submitted = 0
        with _span("service.prewarm", "service", count=len(signatures)):
            for signature in signatures:
                with self._lock:
                    batch = self._exemplars.get(signature)
                if batch is None or self.cache.peek(signature) is not None:
                    continue
                status, _payload, epoch = self.cache.reserve(
                    signature, count=False
                )
                if status != "own":
                    continue  # cached or someone is already planning it
                blob = self.store.try_get(signature_key(signature))
                if blob is not None:
                    # Warm store still holds it: promote without
                    # planning (still a pre-warmed cache entry).
                    self._publish(signature, decode_plan(blob), epoch,
                                  prewarm=True)
                    continue
                try:
                    self.scheduler.submit(
                        PREWARM_TENANT,
                        self._plan_job(signature, batch, epoch,
                                       prewarm=True),
                    )
                    submitted += 1
                    self._prewarm_submitted.inc()
                except PlanRejected as exc:
                    # Speculation never fights demand for capacity.
                    self.cache.abandon(signature, exc, epoch=epoch)
        return submitted

    # -- reporting / lifecycle ------------------------------------------

    def stats(self) -> dict:
        """Service effectiveness counters (see also ``metrics``)."""
        requests = self._requests.value
        cache_hits = self._cache_hits.value
        return {
            "requests": requests,
            "cache_hits": cache_hits,
            "store_hits": self._store_hits.value,
            "planned": self._planned.value,
            "cache_hit_rate": cache_hits / requests if requests else 0.0,
            "prewarm_submitted": self._prewarm_submitted.value,
            "prewarm_hits": self._prewarm_hits.value,
            "prewarm_hit_fraction": (
                self._prewarm_hits.value / requests if requests else 0.0
            ),
            "rejected": self.scheduler.metrics.counter(
                "service.rejected"
            ).value,
            "worker_busy_s": self._busy_s.value,
            "workers": len(self._workers),
            "forecast_epoch": self.forecast.epoch,
            "store_shards": self.store.num_shards,
        }

    def close(self) -> None:
        self._closed = True
        self.scheduler.close()
        for thread in self._workers:
            thread.join(timeout=5.0)

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
