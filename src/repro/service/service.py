"""Planner-as-a-service: multi-tenant plan serving.

:class:`PlanService` composes the repo's existing planning stack into
one long-running server:

* the :class:`~repro.core.cache.PlanCache` stays the single
  exactly-once gate — every demand request and every pre-warm goes
  through :meth:`~repro.core.cache.PlanCache.reserve`, so one
  signature is planned by at most one worker no matter how many
  tenants (or the forecaster) race on it;
* a :class:`~repro.service.sharding.ShardedPlanStore` persists encoded
  plans (columnar wire bytes) beyond the cache's LRU horizon, so a
  signature evicted from the hot cache is *decoded*, not re-planned,
  on its next request;
* an :class:`~repro.service.admission.FairScheduler` (weighted deficit
  round-robin + typed load shedding) decides which tenant's planning
  job a worker runs next;
* a :class:`~repro.service.forecast.WorkloadForecast` tallies demand
  arrivals per epoch and pre-warms the predicted hot set through the
  same reservation path, so pre-warm and demand never double-plan.

Plans served through the service are fingerprint-identical to the
synchronous ``planner.plan_batch`` article: the cache holds the
planner's own object, and the store round-trips through the canonical
columnar encoding (:mod:`repro.core.planwire`).

Fault tolerance (the exception to that identity) is explicit and
tagged.  A fetch may carry a **deadline**; when the optimal plan
cannot be produced in time — planner pool saturated (admission shed
the dispatch), a worker hung, the warm store's primary dead — the
service synthesizes a deterministic *degraded* plan (cheap zigzag
placement, :mod:`repro.service.degraded`), tags it
``meta["degraded"] = True``, serves it immediately, and schedules a
**background upgrade**: the optimal plan is still computed and then
atomically swapped into the hot cache through the publication epoch
cursors, so the *next* fetch of the signature is optimal again.
Deadline-bearing store reads are **hedged** (see
:meth:`~repro.service.sharding.ShardedPlanStore.try_get`), and planner
workers survive failing jobs and heartbeat into the shard-health
tracker, so a hung worker is visible, not silent.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from hashlib import blake2b
from typing import Dict, List, Optional

from ..blocks import BatchSpec
from ..core.cache import PlanAbandoned, PlanCache, batch_signature
from ..core.planwire import decode_plan, encode_plan
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span as _span
from .admission import AdmissionController, FairScheduler, PlanRejected
from .degraded import degraded_plan, is_degraded
from .errors import (
    PlannerUnavailable,
    PlanTimeout,
    TransientServiceError,
)
from .forecast import WorkloadForecast
from .sharding import ShardedPlanStore

__all__ = ["PlanService"]

#: Tenant name pre-warm jobs run under: a real scheduler tenant (its
#: jobs are admission-controlled and fair-queued like anyone's) with a
#: light default weight, so speculation never crowds out demand.
PREWARM_TENANT = "__prewarm__"

#: Tenant name background degraded-plan upgrades run under.  Like
#: pre-warm it is a real fair-queued tenant with a light weight: an
#: upgrade improves a plan someone already holds, so it must never
#: crowd out a tenant still waiting for its first plan.
UPGRADE_TENANT = "__upgrade__"


def signature_key(signature) -> str:
    """Stable store key for a batch signature (shard-hash friendly)."""
    digest = blake2b(repr(signature).encode(), digest_size=16).hexdigest()
    return f"sig/{digest}"


class PlanService:
    """Multi-tenant plan serving over cache + sharded store + planner pool.

    Parameters
    ----------
    planner:
        Any ``plan_batch`` object; the single source of plan truth.
    workers:
        Planner worker threads draining the fair scheduler.
    cache_capacity:
        Hot-cache entries (decoded plans, LRU).
    shards / replication / max_bytes_per_shard / ttl_s:
        Warm-store geometry; see :class:`ShardedPlanStore`.
        ``replication`` > 1 survives shard loss with no lost plans.
    admission:
        Load-shedding policy; defaults mirror
        :class:`AdmissionController`.
    prewarm_top_k / epoch_requests:
        Forecast geometry: every ``epoch_requests`` demand requests the
        arrival epoch rolls and the top-``prewarm_top_k`` predicted
        signatures are pre-warmed.  ``epoch_requests=None`` disables
        auto-rolling (call :meth:`roll_epoch` yourself).
    fault_injector / hedge_after_s / anti_entropy_interval_s:
        Chaos/robustness wiring, passed to the store (and, for the
        injector, consulted by planner workers under ``worker:<i>``
        targets — an injected hang stalls the worker like a real one).
    """

    def __init__(
        self,
        planner,
        workers: int = 2,
        cache_capacity: int = 64,
        shards: int = 4,
        replication: int = 1,
        max_bytes_per_shard: Optional[int] = None,
        ttl_s: Optional[float] = None,
        admission: Optional[AdmissionController] = None,
        quantum: float = 1.0,
        prewarm_top_k: int = 8,
        epoch_requests: Optional[int] = None,
        prewarm_weight: float = 0.5,
        upgrade_weight: float = 0.5,
        fault_injector=None,
        hedge_after_s: Optional[float] = None,
        anti_entropy_interval_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one planner worker")
        if prewarm_top_k < 1:
            raise ValueError("prewarm_top_k must be positive")
        if epoch_requests is not None and epoch_requests < 1:
            raise ValueError("epoch_requests must be positive")
        self.planner = planner
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._injector = fault_injector
        self.cache = PlanCache(
            planner, capacity=cache_capacity, metrics=self.metrics
        )
        self.store = ShardedPlanStore(
            shards=shards,
            replication=replication,
            max_bytes_per_shard=max_bytes_per_shard,
            ttl_s=ttl_s,
            metrics=self.metrics,
            fault_injector=fault_injector,
            hedge_after_s=hedge_after_s,
            anti_entropy_interval_s=anti_entropy_interval_s,
        )
        self.scheduler = FairScheduler(
            admission=admission, quantum=quantum, metrics=self.metrics
        )
        self.scheduler.set_weight(PREWARM_TENANT, prewarm_weight)
        self.scheduler.set_weight(UPGRADE_TENANT, upgrade_weight)
        self.forecast = WorkloadForecast(metrics=self.metrics)
        self.prewarm_top_k = prewarm_top_k
        self.epoch_requests = epoch_requests
        self._requests = self.metrics.counter("service.requests")
        self._cache_hits = self.metrics.counter("service.cache_hits")
        self._store_hits = self.metrics.counter("service.store_hits")
        self._planned = self.metrics.counter("service.planned")
        self._prewarm_submitted = self.metrics.counter(
            "service.prewarm_submitted"
        )
        self._prewarm_hits = self.metrics.counter("service.prewarm_hits")
        self._degraded_served = self.metrics.counter(
            "service.degraded_served"
        )
        self._upgrades = self.metrics.counter("service.plan_upgrades")
        self._upgrade_submitted = self.metrics.counter(
            "service.upgrade_submitted"
        )
        self._job_errors = self.metrics.counter(
            "service.worker_job_errors"
        )
        self._store_put_failures = self.metrics.counter(
            "service.store_put_failures"
        )
        self._fetch_s = self.metrics.histogram("service.fetch_s")
        self._plan_s = self.metrics.histogram("service.plan_s")
        self._busy_s = self.metrics.counter("service.worker_busy_s")
        self._lock = threading.Lock()
        #: Last-seen batch per signature — what pre-warm re-plans from
        #: (a signature alone cannot rebuild its BatchSpec).  Bounded:
        #: entries are only reachable through the forecast's hot set,
        #: and stale ones are pruned on epoch roll.
        self._exemplars: Dict[object, BatchSpec] = {}
        #: Signatures whose *cached* entry was produced by pre-warm and
        #: not (yet) re-planned by demand: a demand hit on one counts
        #: as a pre-warm hit.
        self._prewarmed: set = set()
        #: Degraded-serve ledger: signature -> "pending" (a degraded
        #: plan is out, its optimal upgrade is owed) or "done" (the
        #: optimal plan has been swapped in).
        self._degraded: Dict[object, str] = {}
        #: Signatures with an upgrade dispatch currently in flight —
        #: guards against stacking duplicate upgrade jobs.
        self._upgrading: set = set()
        self._demand_since_roll = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"plan-service-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- worker side -----------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        """Drain the fair scheduler; survive failing jobs.

        A raising job has already released its reservation waiters
        (see :meth:`_plan_job`), so the worker records the error and
        moves on — one poisoned batch must not decommission a planner
        thread for the life of the service.  Each iteration heartbeats
        into the shard-health tracker under ``worker:<index>`` and
        honors injected hangs, so a stalled worker is *observably*
        stalled (its heartbeat goes silent) rather than silently gone.
        """
        target = f"worker:{index}"
        while True:
            self.store.health.heartbeat(target)
            if self._injector is not None:
                delay = self._injector.delay_s(target)
                if delay > 0:
                    time.sleep(delay)
            item = self.scheduler.pop(timeout=1.0)
            if item is None:
                if self._closed:
                    return
                continue
            tenant, job = item
            start = time.perf_counter()
            try:
                job()
            except Exception:
                self._job_errors.inc()
            finally:
                self._busy_s.inc(time.perf_counter() - start)
                self.scheduler.task_done(tenant)

    def _plan_job(self, signature, batch: BatchSpec, epoch: int,
                  prewarm: bool):
        """The unit of work a planner worker runs for one signature."""

        def job() -> None:
            try:
                with _span("service.plan", "service",
                           prewarm=int(prewarm)):
                    start = time.perf_counter()
                    plan = self.planner.plan_batch(batch)
                    self._plan_s.observe(time.perf_counter() - start)
            except BaseException as exc:
                self.cache.abandon(signature, exc, epoch=epoch)
                raise
            # The plan exists: a warm-store outage must not turn it
            # into a failed fetch.  Serve from cache, heal the store
            # via read-repair/anti-entropy once it returns.
            try:
                self.store.put(
                    signature_key(signature), encode_plan(plan).to_bytes()
                )
            except TransientServiceError:
                self._store_put_failures.inc()
            self._publish(signature, plan, epoch, prewarm=prewarm)
            self._planned.inc()

        return job

    def _publish(self, signature, plan, epoch: int, prewarm: bool) -> None:
        """Insert into the hot cache + mark the entry's provenance.

        Publishing an *optimal* plan for a signature whose degraded
        fallback is still out is the atomic upgrade: the epoch-checked
        :meth:`~repro.core.cache.PlanCache.publish` swaps the cache
        entry in place and the ledger flips to ``"done"``.
        """
        upgraded = False
        with self._lock:
            if prewarm:
                self._prewarmed.add(signature)
            else:
                self._prewarmed.discard(signature)
            if (not is_degraded(plan)
                    and self._degraded.get(signature) == "pending"):
                self._degraded[signature] = "done"
                upgraded = True
        if upgraded:
            self._upgrades.inc()
        self.cache.publish(signature, plan, epoch)

    # -- demand path -----------------------------------------------------

    def fetch_plan(self, tenant: str, batch: BatchSpec,
                   timeout: Optional[float] = None,
                   deadline: Optional[float] = None):
        """Serve ``tenant`` the plan for ``batch``.

        ``timeout`` bounds the wait for an in-flight plan; expiry (or
        an admission shed — including requests that joined a
        reservation whose owning dispatch was shed) raises typed
        errors (:class:`PlanTimeout`, :class:`PlanRejected`).

        ``deadline`` (seconds) changes the contract from *fail* to
        *degrade*: the fetch hedges its warm-store read, and if no
        optimal plan materializes inside the budget — planner
        saturated, worker hung, store primary dead — a deterministic
        degraded plan (``meta["degraded"] = True``) is served
        immediately and the optimal plan is upgraded in the
        background.  A deadline-bearing fetch only raises when even
        the fallback cannot be built.
        """
        start = time.perf_counter()
        deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )
        signature = batch_signature(batch)
        with _span("service.fetch", "service", tenant=tenant):
            self._requests.inc()
            self.forecast.record(signature)
            with self._lock:
                self._exemplars[signature] = batch
            status, payload, epoch = self.cache.reserve(signature)
            if status == "hit":
                self._cache_hits.inc()
                with self._lock:
                    if signature in self._prewarmed:
                        self._prewarm_hits.inc()
                plan = payload
                if is_degraded(plan):
                    # The hit is a fallback still owed its upgrade; if
                    # the earlier upgrade dispatch was shed, retry it.
                    self._ensure_upgrade(signature, batch)
            elif status == "wait":
                plan = self._await_shared(signature, payload, timeout,
                                          deadline, deadline_at)
            else:
                plan = self._serve_miss(tenant, signature, batch, payload,
                                        epoch, timeout, deadline_at)
            self._fetch_s.observe(time.perf_counter() - start)
        self._maybe_roll_epoch()
        return plan

    @staticmethod
    def _remaining(deadline_at: Optional[float]) -> Optional[float]:
        if deadline_at is None:
            return None
        return max(0.0, deadline_at - time.monotonic())

    def _await_shared(self, signature, future, timeout: Optional[float],
                      deadline: Optional[float],
                      deadline_at: Optional[float]):
        """Waiter path: join someone else's in-flight reservation.

        With a deadline, a timed-out/failed wait degrades instead of
        raising; no upgrade is scheduled here — the reservation owner's
        dispatch is still in flight and its publication *is* the
        upgrade.
        """
        budget = (
            self._remaining(deadline_at) if deadline_at is not None
            else timeout
        )
        try:
            return future.result(timeout=budget)
        except FutureTimeout:
            if deadline_at is None:
                raise PlanTimeout(
                    timeout if timeout is not None else 0.0,
                    detail="in-flight plan not published in time",
                ) from None
        except (PlanRejected, PlanAbandoned, TransientServiceError):
            if deadline_at is None:
                raise
        return self._degrade(signature)

    def _planner_available(self) -> bool:
        return (not self._closed
                and any(t.is_alive() for t in self._workers))

    def _serve_miss(self, tenant: str, signature, batch, reservation,
                    epoch: int, timeout: Optional[float],
                    deadline_at: Optional[float]):
        """Owner path: store lookup first, else a fair-queued dispatch."""
        hedge = deadline_at is not None and self.store.replication > 1
        blob = self.store.try_get(
            signature_key(signature),
            hedge=hedge,
            timeout_s=self._remaining(deadline_at),
        )
        if blob is not None:
            plan = decode_plan(blob)
            self._store_hits.inc()
            self._publish(signature, plan, epoch, prewarm=False)
            return plan
        if not self._planner_available():
            exc = PlannerUnavailable("no live planner workers")
            if deadline_at is not None:
                return self._degrade_owned(signature, batch, epoch,
                                           upgrade_inflight=False)
            self.cache.abandon(signature, exc, epoch=epoch)
            raise exc
        try:
            self.scheduler.submit(
                tenant, self._plan_job(signature, batch, epoch,
                                       prewarm=False),
            )
        except PlanRejected as exc:
            if deadline_at is not None:
                # Shed dispatch: serve the fallback now, queue the
                # optimal under the (light-weight) upgrade tenant.
                return self._degrade_owned(signature, batch, epoch,
                                           upgrade_inflight=False)
            # Release anyone who joined this reservation with the same
            # typed error, then surface it to the owner.
            self.cache.abandon(signature, exc, epoch=epoch)
            raise
        budget = (
            self._remaining(deadline_at) if deadline_at is not None
            else timeout
        )
        try:
            return reservation.result(timeout=budget)
        except FutureTimeout:
            if deadline_at is not None:
                # The dispatch is queued/running; its publication will
                # upgrade the degraded entry we are about to serve.
                return self._degrade_owned(signature, batch, epoch,
                                           upgrade_inflight=True)
            raise PlanTimeout(
                timeout if timeout is not None else 0.0,
                detail=f"signature {signature_key(signature)}",
            ) from None

    # -- degraded-mode serving ------------------------------------------

    def _degrade(self, signature):
        """Synthesize + account a degraded plan (no cache publication)."""
        with self._lock:
            batch = self._exemplars[signature]
        with _span("service.degrade", "service"):
            plan = degraded_plan(self.planner, batch)
        self._degraded_served.inc()
        return plan

    def _degrade_owned(self, signature, batch, epoch: int,
                       upgrade_inflight: bool):
        """Owner-side degraded serve: publish the fallback, owe the swap.

        Publishing pops our reservation, so every waiter is released
        with the same tagged fallback immediately.  The optimal plan
        arrives later — from the still-queued demand dispatch
        (``upgrade_inflight``) or a fresh background upgrade job — and
        its epoch-checked publication replaces the cache entry
        atomically.
        """
        plan = self._degrade(signature)
        with self._lock:
            self._degraded[signature] = "pending"
        self.cache.publish(signature, plan, epoch)
        if not upgrade_inflight:
            self._ensure_upgrade(signature, batch)
        return plan

    def _ensure_upgrade(self, signature, batch) -> bool:
        """Queue a background optimal re-plan for a degraded entry.

        Idempotent: no-ops when the signature is no longer pending or
        an upgrade dispatch is already in flight.  A shed dispatch
        leaves the ledger ``"pending"`` so the next fetch of the
        degraded entry retries.  Returns whether a job was submitted.
        """
        with self._lock:
            if (self._degraded.get(signature) != "pending"
                    or signature in self._upgrading):
                return False
            self._upgrading.add(signature)

        def job() -> None:
            try:
                epoch = self.cache.epoch
                with _span("service.upgrade", "service"):
                    start = time.perf_counter()
                    plan = self.planner.plan_batch(batch)
                    self._plan_s.observe(time.perf_counter() - start)
                try:
                    self.store.put(
                        signature_key(signature),
                        encode_plan(plan).to_bytes(),
                    )
                except TransientServiceError:
                    self._store_put_failures.inc()
                self._publish(signature, plan, epoch, prewarm=False)
                self._planned.inc()
            finally:
                with self._lock:
                    self._upgrading.discard(signature)

        try:
            self.scheduler.submit(UPGRADE_TENANT, job)
        except (PlanRejected, RuntimeError):
            with self._lock:
                self._upgrading.discard(signature)
            return False
        self._upgrade_submitted.inc()
        return True

    def pending_upgrades(self) -> int:
        """Degraded-served signatures whose optimal swap is still owed."""
        with self._lock:
            return sum(
                1 for state in self._degraded.values()
                if state == "pending"
            )

    # -- forecast / pre-warm path ---------------------------------------

    def _maybe_roll_epoch(self) -> None:
        if self.epoch_requests is None:
            return
        with self._lock:
            self._demand_since_roll += 1
            if self._demand_since_roll < self.epoch_requests:
                return
            self._demand_since_roll = 0
        self.roll_epoch()

    def roll_epoch(self) -> int:
        """Close the arrival epoch and pre-warm the predicted hot set.

        Returns the number of pre-warm dispatches submitted.
        """
        self.forecast.roll_epoch()
        hot = self.forecast.predict(top_k=self.prewarm_top_k)
        with self._lock:
            # Exemplars only need to cover what pre-warm might plan.
            keep = set(hot)
            self._exemplars = {
                signature: batch
                for signature, batch in self._exemplars.items()
                if signature in keep
            }
        return self.prewarm(hot)

    def prewarm(self, signatures: List) -> int:
        """Pre-plan ``signatures`` through the reservation path.

        Signatures already cached, already in flight (someone is
        planning them right now), or without a recorded exemplar batch
        are skipped; the rest dispatch under the pre-warm tenant.
        Pre-warm reservations do not count into cache hit/miss stats
        (they are speculation, not demand).
        """
        submitted = 0
        with _span("service.prewarm", "service", count=len(signatures)):
            for signature in signatures:
                with self._lock:
                    batch = self._exemplars.get(signature)
                if batch is None or self.cache.peek(signature) is not None:
                    continue
                status, _payload, epoch = self.cache.reserve(
                    signature, count=False
                )
                if status != "own":
                    continue  # cached or someone is already planning it
                try:
                    blob = self.store.try_get(signature_key(signature))
                except TransientServiceError:
                    blob = None
                if blob is not None:
                    # Warm store still holds it: promote without
                    # planning (still a pre-warmed cache entry).
                    self._publish(signature, decode_plan(blob), epoch,
                                  prewarm=True)
                    continue
                try:
                    self.scheduler.submit(
                        PREWARM_TENANT,
                        self._plan_job(signature, batch, epoch,
                                       prewarm=True),
                    )
                    submitted += 1
                    self._prewarm_submitted.inc()
                except PlanRejected as exc:
                    # Speculation never fights demand for capacity.
                    self.cache.abandon(signature, exc, epoch=epoch)
        return submitted

    # -- reporting / lifecycle ------------------------------------------

    def stats(self) -> dict:
        """Service effectiveness counters (see also ``metrics``)."""
        requests = self._requests.value
        cache_hits = self._cache_hits.value
        return {
            "requests": requests,
            "cache_hits": cache_hits,
            "store_hits": self._store_hits.value,
            "planned": self._planned.value,
            "cache_hit_rate": cache_hits / requests if requests else 0.0,
            "prewarm_submitted": self._prewarm_submitted.value,
            "prewarm_hits": self._prewarm_hits.value,
            "prewarm_hit_fraction": (
                self._prewarm_hits.value / requests if requests else 0.0
            ),
            "rejected": self.scheduler.metrics.counter(
                "service.rejected"
            ).value,
            "degraded_served": self._degraded_served.value,
            "plan_upgrades": self._upgrades.value,
            "pending_upgrades": self.pending_upgrades(),
            "worker_job_errors": self._job_errors.value,
            "store_put_failures": self._store_put_failures.value,
            "hedged_fetches": self.metrics.counter(
                "service.hedged_fetches"
            ).value,
            "hedge_wins": self.metrics.counter(
                "service.hedge_wins"
            ).value,
            "read_repairs": self.metrics.counter(
                "service.read_repairs"
            ).value,
            "worker_busy_s": self._busy_s.value,
            "workers": len(self._workers),
            "forecast_epoch": self.forecast.epoch,
            "store_shards": self.store.num_shards,
            "replication": self.store.replication,
        }

    def close(self) -> None:
        self._closed = True
        self.scheduler.close()
        for thread in self._workers:
            thread.join(timeout=5.0)
        self.store.close()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
