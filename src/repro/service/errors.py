"""Typed failure hierarchy for the plan-serving path.

Every way a plan fetch can fail used to be its own ad-hoc exception —
``PlanRejected`` lived in :mod:`repro.service.admission`, timeouts
surfaced as bare ``KeyError``/``TimeoutError``, and a dead KV shard had
no type at all.  One hierarchy fixes the two things callers actually
need to know:

* **what** failed (the class), and
* **whether retrying can help** (the ``retryable`` flag).

Retryability is carried as a plain class attribute rather than through
``isinstance`` checks so that layers *below* the service (e.g.
:class:`repro.core.kvstore.KVClient`, which must not import this
package — the service imports core) can classify errors duck-typed:
``getattr(exc, "retryable", False)``.  :func:`is_retryable` wraps that
idiom for everyone else.

Classes
-------
``ServiceError``
    Root; ``retryable = False``.
``TransientServiceError``
    Root of the retryable branch; ``retryable = True``.
``PlanRejected``
    Admission control shed the request (carries ``reason`` and a
    ``retry_after_s`` backoff hint).  Retryable by definition.
``ShardUnavailable``
    A KV shard is down, circuit-broken, or mid-restart.  Retryable —
    replicas or the healed shard can serve the next attempt.
``KVOpDropped``
    A fault injector (or lossy transport) dropped one KV operation.
    Retryable — the op was never applied.
``PlanTimeout``
    A plan fetch missed its deadline.  Retryable, though the service
    normally converts it into a degraded-mode serve instead of
    surfacing it.
``PlannerUnavailable``
    No planner worker can make progress (pool dead, scheduler closed).
    Not retryable without operator action.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "TransientServiceError",
    "PlanRejected",
    "ShardUnavailable",
    "KVOpDropped",
    "PlanTimeout",
    "PlannerUnavailable",
    "is_retryable",
]


class ServiceError(RuntimeError):
    """Root of the plan-service failure hierarchy (non-retryable)."""

    #: Whether an immediate retry of the same request can succeed.
    #: Duck-typed (a plain attribute, no isinstance needed) so the
    #: core layer can classify without importing this module.
    retryable = False


class TransientServiceError(ServiceError):
    """A failure expected to clear on its own; retry with backoff."""

    retryable = True


class PlanRejected(TransientServiceError):
    """A plan request shed by admission control (typed, retryable).

    ``retry_after_s`` is the backoff hint clients should honor before
    re-submitting; ``reason`` is one of ``"tenant_queue_full"``,
    ``"tenant_inflight"`` or ``"service_saturated"``.
    """

    def __init__(self, tenant: str, reason: str,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(
            f"plan request for tenant {tenant!r} rejected: {reason}"
        )
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s


class ShardUnavailable(TransientServiceError):
    """A KV shard cannot serve: killed, circuit-open, or restarting."""

    def __init__(self, shard: str, reason: str = "unavailable") -> None:
        super().__init__(f"shard {shard!r} unavailable: {reason}")
        self.shard = shard
        self.reason = reason


class KVOpDropped(TransientServiceError):
    """A single KV operation was dropped before it was applied."""

    def __init__(self, target: str, op: str) -> None:
        super().__init__(f"kv op {op!r} on {target!r} dropped")
        self.target = target
        self.op = op


class PlanTimeout(TransientServiceError):
    """A plan fetch exceeded its deadline."""

    def __init__(self, deadline_s: float, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"plan fetch missed its {deadline_s:.3f}s deadline{suffix}"
        )
        self.deadline_s = deadline_s


class PlannerUnavailable(ServiceError):
    """No planner worker can make progress; operator attention needed."""


def is_retryable(exc: BaseException) -> bool:
    """Whether ``exc`` is a transient failure worth retrying.

    Works on any exception: non-service errors default to
    non-retryable (``retryable`` attribute absent).
    """
    return bool(getattr(exc, "retryable", False))
