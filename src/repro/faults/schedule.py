"""Failure scripts: a timed event DSL over the fault injector.

A chaos experiment is a *schedule* — "at t=0.2 kill shard1, at t=1.0
restart it, meanwhile slow shard2" — applied to a
:class:`~repro.faults.injector.FaultInjector` while a workload runs.
The schedule is data (parseable, diffable, recordable into a bench
report), not test code, so the same script drives unit tests
deterministically (``apply_through``) and the chaos benchmark in wall
time (:class:`ScheduleRunner`).

DSL
---
One event per line (``#`` comments and blank lines ignored)::

    0.20 kill    shard:shard1
    0.40 slow    shard:shard2 0.01
    0.60 hang    worker:0 0.3
    0.70 drop    shard:shard2 0.5
    0.90 clear   shard:shard2
    1.00 restart shard:shard1

Columns: time (seconds from schedule start), action, target, optional
numeric argument (required for ``slow``/``hang``/``drop``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from .injector import FaultInjector

__all__ = ["FaultEvent", "FaultSchedule", "ScheduleRunner",
           "parse_schedule"]

#: action -> whether a numeric argument is required.
_ACTIONS = {
    "kill": False,
    "restart": False,
    "clear": False,
    "slow": True,
    "hang": True,
    "drop": True,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: ``at_s`` seconds in, do ``action`` to
    ``target`` (with ``arg`` for slow/hang/drop)."""

    at_s: float
    action: str
    target: str
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("event time must be non-negative")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if _ACTIONS[self.action] and self.arg is None:
            raise ValueError(f"action {self.action!r} needs an argument")

    def apply(self, injector: FaultInjector) -> None:
        if self.action == "kill":
            injector.kill(self.target)
        elif self.action == "restart":
            injector.restart(self.target)
        elif self.action == "clear":
            injector.clear(self.target)
        elif self.action == "slow":
            injector.slow(self.target, float(self.arg))
        elif self.action == "hang":
            injector.hang(self.target, float(self.arg))
        elif self.action == "drop":
            injector.drop(self.target, float(self.arg))


@dataclass
class FaultSchedule:
    """An ordered failure script (events sorted by time, stable)."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at_s)
        self._applied = 0

    @property
    def duration_s(self) -> float:
        return self.events[-1].at_s if self.events else 0.0

    def apply_through(self, t_s: float, injector: FaultInjector) -> int:
        """Apply every not-yet-applied event with ``at_s <= t_s``.

        The deterministic driver for tests: step logical time forward,
        no threads, no sleeps.  Returns the number of events applied.
        """
        applied = 0
        while (self._applied < len(self.events)
               and self.events[self._applied].at_s <= t_s):
            self.events[self._applied].apply(injector)
            self._applied += 1
            applied += 1
        return applied

    def reset(self) -> None:
        self._applied = 0

    def to_text(self) -> str:
        lines = []
        for event in self.events:
            arg = "" if event.arg is None else f" {event.arg:g}"
            lines.append(
                f"{event.at_s:g} {event.action} {event.target}{arg}"
            )
        return "\n".join(lines)


def parse_schedule(text: str) -> FaultSchedule:
    """Parse the DSL (module docstring) into a :class:`FaultSchedule`."""
    events: List[FaultEvent] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            raise ValueError(
                f"schedule line {lineno}: expected "
                f"'<at_s> <action> <target> [arg]', got {raw!r}"
            )
        try:
            at_s = float(parts[0])
        except ValueError as exc:
            raise ValueError(
                f"schedule line {lineno}: bad time {parts[0]!r}"
            ) from exc
        arg = None
        if len(parts) == 4:
            try:
                arg = float(parts[3])
            except ValueError as exc:
                raise ValueError(
                    f"schedule line {lineno}: bad argument {parts[3]!r}"
                ) from exc
        events.append(FaultEvent(at_s, parts[1], parts[2], arg))
    return FaultSchedule(events)


class ScheduleRunner:
    """Applies a schedule to an injector in wall-clock time.

    A daemon thread sleeps between events; :meth:`start` stamps t=0.
    ``join`` waits for the script to finish, :meth:`stop` aborts early
    (remaining events unapplied).
    """

    def __init__(self, schedule: FaultSchedule,
                 injector: FaultInjector) -> None:
        self.schedule = schedule
        self.injector = injector
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.started_at: Optional[float] = None
        #: (wall time relative to start, event) pairs actually applied.
        self.applied: List[tuple] = []

    def _run(self) -> None:
        start = self.started_at
        for event in self.schedule.events:
            wait = event.at_s - (time.monotonic() - start)
            if wait > 0 and self._stop.wait(timeout=wait):
                return
            if self._stop.is_set():
                return
            event.apply(self.injector)
            self.applied.append((time.monotonic() - start, event))

    def start(self) -> "ScheduleRunner":
        if self._thread is not None:
            raise RuntimeError("schedule already started")
        self.started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="fault-schedule", daemon=True
        )
        self._thread.start()
        return self

    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def stop(self) -> None:
        self._stop.set()
        self.join(timeout=5.0)

    def __enter__(self) -> "ScheduleRunner":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
