"""Per-target fault state with deterministic, seeded decisions.

The injector is pure state — it never raises and never sleeps on its
own.  Instrumented components ask three questions at their fault
points and act on the answers:

* :meth:`FaultInjector.is_killed` — is this target dead right now?
  (The component raises its typed unavailable error.)
* :meth:`FaultInjector.delay_s` — how long must this operation stall?
  (The component sleeps; models slow I/O and hung workers.)
* :meth:`FaultInjector.should_drop` — is this specific operation lost?
  (Deterministic: target ``t`` with drop rate ``r`` and seed ``s``
  drops the same op indices on every run.)

Kill/restart carries a *generation*: :meth:`restart_count` increments
on every restart, which lets a stateful component (a KV shard) detect
"I was killed and came back" and realize the data loss a real process
restart implies — the injector itself holds no component state.
"""

from __future__ import annotations

import random
import threading
from hashlib import blake2b
from typing import Dict, List, Optional, Tuple

__all__ = ["FaultInjector"]


class _TargetState:
    __slots__ = ("killed", "restarts", "delay_s", "hang_s", "drop_rate",
                 "ops", "rng")

    def __init__(self, seed_material: bytes) -> None:
        self.killed = False
        self.restarts = 0
        self.delay_s = 0.0
        #: One-shot stall consumed by the next ``delay_s`` call.
        self.hang_s = 0.0
        self.drop_rate = 0.0
        self.ops = 0
        self.rng = random.Random(
            int.from_bytes(blake2b(seed_material, digest_size=8).digest(),
                           "big")
        )


class FaultInjector:
    """Thread-safe registry of injected faults, keyed by target name.

    Targets are free-form strings; the repo's conventions are
    ``"shard:<name>"`` for KV shards and ``"worker:<index>"`` for
    planner workers.  All mutation methods are idempotent and safe to
    call from a schedule-runner thread while the service is serving.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        self._targets: Dict[str, _TargetState] = {}
        #: Applied-event log (action, target) in application order —
        #: what a bench report records as the realized failure script.
        self.log: List[Tuple[str, str]] = []

    def _state(self, target: str) -> _TargetState:
        state = self._targets.get(target)
        if state is None:
            state = _TargetState(f"{self.seed}/{target}".encode())
            self._targets[target] = state
        return state

    def _record(self, action: str, target: str) -> None:
        self.log.append((action, target))

    # -- mutation (schedule side) ---------------------------------------

    def kill(self, target: str) -> None:
        with self._lock:
            self._state(target).killed = True
            self._record("kill", target)

    def restart(self, target: str) -> None:
        with self._lock:
            state = self._state(target)
            if state.killed:
                state.killed = False
                state.restarts += 1
            self._record("restart", target)

    def slow(self, target: str, delay_s: float) -> None:
        """Every operation at ``target`` stalls ``delay_s`` until cleared."""
        with self._lock:
            self._state(target).delay_s = max(0.0, float(delay_s))
            self._record("slow", target)

    def hang(self, target: str, seconds: float) -> None:
        """The *next* operation at ``target`` stalls once for ``seconds``."""
        with self._lock:
            self._state(target).hang_s = max(0.0, float(seconds))
            self._record("hang", target)

    def drop(self, target: str, rate: float) -> None:
        """Drop a ``rate`` fraction of operations at ``target``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("drop rate must be in [0, 1]")
        with self._lock:
            self._state(target).drop_rate = float(rate)
            self._record("drop", target)

    def clear(self, target: str) -> None:
        """Lift slow/hang/drop at ``target`` (kill state untouched)."""
        with self._lock:
            state = self._state(target)
            state.delay_s = 0.0
            state.hang_s = 0.0
            state.drop_rate = 0.0
            self._record("clear", target)

    # -- queries (component side) ---------------------------------------

    def is_killed(self, target: str) -> bool:
        with self._lock:
            state = self._targets.get(target)
            return state.killed if state is not None else False

    def restart_count(self, target: str) -> int:
        with self._lock:
            state = self._targets.get(target)
            return state.restarts if state is not None else 0

    def delay_s(self, target: str) -> float:
        """Stall for this operation: sustained slow plus any one-shot
        hang (consumed)."""
        with self._lock:
            state = self._targets.get(target)
            if state is None:
                return 0.0
            delay = state.delay_s
            if state.hang_s:
                delay += state.hang_s
                state.hang_s = 0.0
            return delay

    def should_drop(self, target: str, op: Optional[str] = None) -> bool:
        """Deterministic per-op drop decision (op counter + seeded RNG).

        ``op`` is informational only; determinism keys on the target's
        operation *index*, so a run that performs the same operation
        sequence sees the same drops.
        """
        with self._lock:
            state = self._targets.get(target)
            if state is None:
                return False
            state.ops += 1
            if state.drop_rate <= 0.0:
                return False
            return state.rng.random() < state.drop_rate

    def snapshot(self) -> Dict[str, dict]:
        """Current fault state per target (for reports/debugging)."""
        with self._lock:
            return {
                target: {
                    "killed": state.killed,
                    "restarts": state.restarts,
                    "delay_s": state.delay_s,
                    "drop_rate": state.drop_rate,
                    "ops": state.ops,
                }
                for target, state in sorted(self._targets.items())
            }
