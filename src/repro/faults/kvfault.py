"""A KV-store proxy that realizes injected faults as typed errors.

Wraps any :class:`~repro.core.kvstore.KVStore`-shaped object; every
operation first consults the :class:`~repro.faults.injector.
FaultInjector` for its target:

* killed       -> :class:`~repro.service.errors.ShardUnavailable`
* slow/hang    -> the operation sleeps the injected delay first
* dropped op   -> :class:`~repro.service.errors.KVOpDropped` (the op
  is *not* applied — a lost message, not a slow one)

The proxy is what the retry/backoff tests and the chaos bench put in
front of real stores; the replicated plan store does its own injector
checks (it needs per-shard routing decisions, not just errors), so
this wrapper stays a thin single-store affair.
"""

from __future__ import annotations

import time
from typing import Optional

from ..service.errors import KVOpDropped, ShardUnavailable
from .injector import FaultInjector

__all__ = ["FaultyKVStore"]

#: Operations the proxy guards (everything that touches entries).
_GUARDED = (
    "put", "put_entry", "put_if_changed", "put_if_changed_entry",
    "get", "get_entry", "get_unless", "get_unless_entry",
    "try_get", "delete", "contains", "keys", "entry_bytes",
    "size_bytes", "expire",
)


def _make_guarded(op: str):
    def method(self, *args, **kwargs):
        self._guard(op)
        return getattr(self._store, op)(*args, **kwargs)

    method.__name__ = op
    method.__qualname__ = f"FaultyKVStore.{op}"
    return method


class FaultyKVStore:
    """Injector-guarded view of a single KV store (see module doc)."""

    def __init__(self, store, injector: FaultInjector, target: str,
                 sleep=time.sleep) -> None:
        self._store = store
        self._injector = injector
        self.target = target
        self._sleep = sleep

    def _guard(self, op: str) -> None:
        delay = self._injector.delay_s(self.target)
        if delay > 0:
            self._sleep(delay)
        if self._injector.is_killed(self.target):
            raise ShardUnavailable(self.target, reason="killed")
        if self._injector.should_drop(self.target, op):
            raise KVOpDropped(self.target, op)

    def __getattr__(self, name: str):
        # Unguarded surface (metrics, traffic, host_machine, ...).
        return getattr(self._store, name)

    @property
    def store(self):
        """The wrapped store (for tests asserting on ground truth)."""
        return self._store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyKVStore({self.target!r}, {self._store!r})"


for _op in _GUARDED:
    setattr(FaultyKVStore, _op, _make_guarded(_op))


def faulty(store, injector: Optional[FaultInjector], target: str):
    """Wrap ``store`` when an injector is present, else return it."""
    if injector is None:
        return store
    return FaultyKVStore(store, injector, target)
