"""Seeded, deterministic fault injection (the chaos harness).

Fault handling used to be tested ad hoc: each test hand-rolled a
planner that raises, a store that hangs, a worker that dies.  This
package centralizes injection behind one seeded state machine so that
tests, benchmarks, and the CI chaos gate all speak the same language:

* :class:`~repro.faults.injector.FaultInjector` — per-target fault
  state (killed, slow, lossy, hung) with deterministic drop decisions
  (per-target seeded RNG over an op counter, so the N-th operation of
  a given target always sees the same fate for a given seed).
  Components consult it at their fault points; the injector never
  raises — the *component* decides which typed error
  (:mod:`repro.service.errors`) a fault becomes.
* :class:`~repro.faults.schedule.FaultSchedule` — a failure script: a
  list of timed events (``kill``/``restart``/``slow``/``drop``/
  ``hang``/``clear``) parsed from a tiny text DSL
  (:func:`~repro.faults.schedule.parse_schedule`) and applied either
  in wall-clock time (:class:`~repro.faults.schedule.ScheduleRunner`)
  or stepped deterministically (``apply_through``).
* :class:`~repro.faults.kvfault.FaultyKVStore` — a KV-store proxy
  that realizes injector state as typed store failures, for driving
  the retry/backoff and replication paths without a real dead host.

``benchmarks/bench_chaos.py`` consumes all three to measure
availability, recovery time, and degraded-serve fraction under a
scripted failure sequence, CI-gated via ``BENCH_chaos.json``.
"""

from .injector import FaultInjector
from .kvfault import FaultyKVStore
from .schedule import (
    FaultEvent,
    FaultSchedule,
    ScheduleRunner,
    parse_schedule,
)

__all__ = [
    "FaultInjector",
    "FaultyKVStore",
    "FaultEvent",
    "FaultSchedule",
    "ScheduleRunner",
    "parse_schedule",
]
