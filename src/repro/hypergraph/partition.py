"""Multilevel hypergraph partitioning driver.

The standard multilevel scheme (coarsen -> initial partition -> project
back, refining at each level) with two extras the DCP planner relies
on:

* **Warm starts** — caller-provided label vectors (e.g. the zigzag
  placement static CP would use, or a DP bin-packing) are refined
  directly on the finest graph; DCP therefore never produces a plan
  with more communication than the heuristics it generalizes.
* **Restarts** — several seeds run end-to-end and the best feasible
  result wins; ties favour lower cost, then lower imbalance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.trace import span as _span
from .coarsen import coarsen
from .graph import BalanceConstraint, Hypergraph, PartitionResult
from .initial import greedy_initial
from .refine import RefinementState, fm_refine, greedy_refine, rebalance

__all__ = ["partition_hypergraph"]


def _finish(
    graph: Hypergraph,
    labels: np.ndarray,
    k: int,
    caps: np.ndarray,
    rng: np.random.Generator,
    method: str,
    refine_passes: int,
) -> PartitionResult:
    with _span("refine", "planner", method=method):
        state = RefinementState(graph, labels, k)
        if not state.is_feasible(caps):
            rebalance(state, caps, rng)
        greedy_refine(state, caps, rng, max_passes=refine_passes)
        fm_refine(state, caps, rng)
        if not state.is_feasible(caps):
            rebalance(state, caps, rng)
            greedy_refine(state, caps, rng, max_passes=2)
    return PartitionResult(
        labels=state.labels,
        cost=state.cost(),
        part_weights=state.part_weights.copy(),
        feasible=state.is_feasible(caps),
        method=method,
    )


def _multilevel_run(
    graph: Hypergraph,
    k: int,
    caps: np.ndarray,
    rng: np.random.Generator,
    refine_passes: int,
) -> PartitionResult:
    with _span("coarsen", "planner"):
        levels = coarsen(graph, k, rng)
    coarsest = levels[-1][0] if levels else graph
    with _span("initial_partition", "planner"):
        labels = greedy_initial(coarsest, k, caps, rng)

        state = RefinementState(coarsest, labels, k)
        if not state.is_feasible(caps):
            rebalance(state, caps, rng)
        greedy_refine(state, caps, rng, max_passes=refine_passes)
        fm_refine(state, caps, rng)
        labels = state.labels

    # Project back through the hierarchy, refining at every level.  The
    # mapping stored at level ``i`` projects the level-``i`` coarse graph
    # onto the previous (finer) graph.
    for index in range(len(levels) - 1, -1, -1):
        mapping = levels[index][1]
        finer_graph = graph if index == 0 else levels[index - 1][0]
        labels = labels[mapping]
        with _span("refine_level", "planner", level=index):
            state = RefinementState(finer_graph, labels, k)
            if not state.is_feasible(caps):
                rebalance(state, caps, rng)
            greedy_refine(
                state, caps, rng, max_passes=max(refine_passes // 2, 2)
            )
            fm_refine(state, caps, rng, max_passes=2)
        labels = state.labels

    return _finish(graph, labels, k, caps, rng, "multilevel", refine_passes)


def partition_hypergraph(
    graph: Hypergraph,
    k: int,
    balance: Optional[BalanceConstraint] = None,
    seed: int = 0,
    restarts: int = 2,
    warm_starts: Optional[Sequence[np.ndarray]] = None,
    refine_passes: int = 6,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` balanced parts, minimizing
    connectivity (total communication volume).

    Parameters
    ----------
    balance:
        Per-dimension imbalance tolerances; defaults to the paper's
        ``eps = 0.1`` on computation with near-exact data balance.
    warm_starts:
        Optional label vectors to refine alongside multilevel runs.
        With ``restarts=0`` the multilevel runs are skipped entirely
        and only the warm starts are refined — the delta re-planner's
        fast path, where a previous placement is known to be near the
        optimum for the new cluster shape.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if restarts < 1 and not warm_starts:
        raise ValueError("restarts=0 requires at least one warm start")
    if graph.num_vertices == 0:
        return PartitionResult(
            labels=np.zeros(0, dtype=np.int64),
            cost=0,
            part_weights=np.zeros((k, graph.weight_dims), dtype=np.int64),
            feasible=True,
            method="empty",
        )
    if k == 1:
        labels = np.zeros(graph.num_vertices, dtype=np.int64)
        return PartitionResult(
            labels=labels,
            cost=0,
            part_weights=graph.part_weights(labels, 1),
            feasible=True,
            method="trivial",
        )

    balance = balance or BalanceConstraint()
    caps = balance.caps(graph, k)
    candidates: List[PartitionResult] = []

    multilevel_runs = restarts if warm_starts else max(restarts, 1)
    for restart in range(multilevel_runs):
        rng = np.random.default_rng(seed + 7919 * restart)
        with _span("partition", "planner", k=k, restart=restart):
            candidates.append(
                _multilevel_run(graph, k, caps, rng, refine_passes)
            )

    for warm_index, warm in enumerate(warm_starts or []):
        warm = np.asarray(warm, dtype=np.int64)
        if warm.shape != (graph.num_vertices,):
            raise ValueError("warm start must label every vertex")
        if warm.min() < 0 or warm.max() >= k:
            raise ValueError("warm start labels out of range")
        rng = np.random.default_rng(seed + 104729 + warm_index)
        candidates.append(
            _finish(graph, warm.copy(), k, caps, rng, "warm", refine_passes)
        )

    def rank(result: PartitionResult) -> Tuple:
        return (
            not result.feasible,
            result.cost,
            float(result.imbalance().max()),
        )

    return min(candidates, key=rank)
