"""Multilevel coarsening via heavy-pin matching.

Pairs of vertices that share many light hyperedges are contracted, so
the coarse graph preserves the connectivity structure.  The similarity
score between two vertices is the classic heavy-edge rating
``sum_{e shared} w_e / (|pins_e| - 1)`` used by hMETIS/KaHyPar-style
partitioners.

Matching scores one vertex's whole neighbourhood per numpy pass
(concatenated CSR pin slices + a bincount reduction) and contraction
deduplicates coarse pins with one global lexsort instead of per-edge
Python loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import Hypergraph, concat_csr_slices

__all__ = ["contract", "coarsen_once", "coarsen"]

# Hyperedges with more pins than this contribute little information per
# pair and cost a lot to scan, so matching skips them.
_MAX_SCAN_PINS = 64


def contract(graph: Hypergraph, mapping: np.ndarray, num_coarse: int) -> Hypergraph:
    """Contract ``graph`` according to ``mapping`` (fine -> coarse ids).

    Coarse vertex weights are sums of their fine constituents.  Pins are
    deduplicated; edges that collapse to a single pin are dropped (their
    connectivity contribution is identically zero); duplicate edges are
    merged with summed weights.
    """
    weights = np.zeros((num_coarse, graph.weight_dims), dtype=np.int64)
    np.add.at(weights, mapping, graph.weights)

    if graph.num_pins == 0:
        return Hypergraph.from_csr(
            weights, np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64), []
        )

    # Sort (edge, coarse pin) pairs and drop within-edge duplicates in
    # one vectorized pass; the result holds each edge's coarse pins
    # sorted and unique, back to back.
    coarse_flat = mapping[graph.edge_pins]
    order = np.lexsort((coarse_flat, graph.pin_edge_ids))
    edge_sorted = graph.pin_edge_ids[order]
    pin_sorted = coarse_flat[order]
    first = np.ones(len(order), dtype=bool)
    first[1:] = (edge_sorted[1:] != edge_sorted[:-1]) | (
        pin_sorted[1:] != pin_sorted[:-1]
    )
    edge_ids = edge_sorted[first]
    pins_flat = pin_sorted[first]
    sizes = np.bincount(edge_ids, minlength=graph.num_edges)
    bounds = np.zeros(graph.num_edges + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])

    # Merge duplicate edges (same coarse pin set) with summed weights,
    # keeping first-occurrence order like the scalar implementation.
    merged: Dict[bytes, int] = {}
    pins: List[np.ndarray] = []
    edge_weights: List[int] = []
    edge_weight_list = graph.edge_weights.tolist()
    for edge_index in np.nonzero(sizes >= 2)[0].tolist():
        coarse_pin = pins_flat[bounds[edge_index] : bounds[edge_index + 1]]
        key = coarse_pin.tobytes()
        weight = edge_weight_list[edge_index]
        slot = merged.get(key)
        if slot is not None:
            edge_weights[slot] += weight
        else:
            merged[key] = len(pins)
            pins.append(coarse_pin)
            edge_weights.append(weight)

    new_sizes = np.fromiter(
        (len(p) for p in pins), dtype=np.int64, count=len(pins)
    )
    indptr = np.zeros(len(pins) + 1, dtype=np.int64)
    np.cumsum(new_sizes, out=indptr[1:])
    flat = (
        np.concatenate(pins) if pins else np.zeros(0, dtype=np.int64)
    )
    return Hypergraph.from_csr(weights, indptr, flat, edge_weights)


def coarsen_once(
    graph: Hypergraph,
    max_vertex_weight: np.ndarray,
    rng: np.random.Generator,
) -> Optional[Tuple[Hypergraph, np.ndarray]]:
    """One matching + contraction round.

    Returns ``(coarse_graph, mapping)`` or ``None`` when no meaningful
    contraction is possible.
    """
    n = graph.num_vertices
    vindptr, vedges = graph.vertex_csr()
    sizes = graph.edge_sizes
    scannable = (sizes <= _MAX_SCAN_PINS) & (sizes >= 2)
    rating = np.where(
        scannable, graph.edge_weights / np.maximum(sizes - 1, 1), 0.0
    )
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)

    for u in order.tolist():
        if match[u] >= 0:
            continue
        edges = vedges[vindptr[u] : vindptr[u + 1]]
        edges = edges[scannable[edges]]
        if len(edges) == 0:
            continue
        neighbours, lens = concat_csr_slices(
            graph.edge_indptr, graph.edge_pins, edges
        )
        ratings = np.repeat(rating[edges], lens)
        usable = (match[neighbours] < 0) & (neighbours != u)
        neighbours = neighbours[usable]
        if len(neighbours) == 0:
            continue
        candidates, first_pos, inverse = np.unique(
            neighbours, return_index=True, return_inverse=True
        )
        scores = np.bincount(inverse, weights=ratings[usable])
        fits = np.all(
            graph.weights[u] + graph.weights[candidates]
            <= max_vertex_weight[None, :],
            axis=1,
        )
        scores = np.where(fits, scores, 0.0)
        best_score = scores.max()
        if best_score <= 0.0:
            continue
        # Tie-break toward the first-encountered neighbour, matching the
        # scalar accumulation order (edge order, then pin order).
        tied = np.nonzero(scores == best_score)[0]
        best = int(candidates[tied[np.argmin(first_pos[tied])]])
        match[u] = best
        match[best] = u

    mapping = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if mapping[u] >= 0:
            continue
        mapping[u] = next_id
        partner = match[u]
        if partner >= 0:
            mapping[partner] = next_id
        next_id += 1

    if next_id >= n:  # nothing contracted
        return None
    return contract(graph, mapping, next_id), mapping


def coarsen(
    graph: Hypergraph,
    k: int,
    rng: np.random.Generator,
    min_vertices: Optional[int] = None,
    max_levels: int = 25,
) -> List[Tuple[Hypergraph, np.ndarray]]:
    """Full coarsening hierarchy.

    Returns a list of ``(coarse_graph, mapping_from_previous_level)``
    pairs, finest first.  Contraction stops when the graph is small
    enough (``min_vertices``, default ``max(60, 12 * k)``) or stops
    shrinking (< 5% reduction).
    """
    if min_vertices is None:
        min_vertices = max(60, 12 * k)
    # Cap coarse vertex weight so balanced k-way partitions stay
    # representable: no cluster may exceed ~half a part.
    cap = np.maximum(graph.total_weight // max(2 * k, 1), 1)
    levels: List[Tuple[Hypergraph, np.ndarray]] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= min_vertices:
            break
        step = coarsen_once(current, cap, rng)
        if step is None:
            break
        coarse, mapping = step
        if coarse.num_vertices > 0.95 * current.num_vertices:
            break
        levels.append((coarse, mapping))
        current = coarse
    return levels
