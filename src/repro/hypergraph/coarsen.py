"""Multilevel coarsening via heavy-pin matching.

Pairs of vertices that share many light hyperedges are contracted, so
the coarse graph preserves the connectivity structure.  The similarity
score between two vertices is the classic heavy-edge rating
``sum_{e shared} w_e / (|pins_e| - 1)`` used by hMETIS/KaHyPar-style
partitioners.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import Hypergraph

__all__ = ["contract", "coarsen_once", "coarsen"]

# Hyperedges with more pins than this contribute little information per
# pair and cost a lot to scan, so matching skips them.
_MAX_SCAN_PINS = 64


def contract(graph: Hypergraph, mapping: np.ndarray, num_coarse: int) -> Hypergraph:
    """Contract ``graph`` according to ``mapping`` (fine -> coarse ids).

    Coarse vertex weights are sums of their fine constituents.  Pins are
    deduplicated; edges that collapse to a single pin are dropped (their
    connectivity contribution is identically zero); duplicate edges are
    merged with summed weights.
    """
    weights = np.zeros((num_coarse, graph.weight_dims), dtype=np.int64)
    np.add.at(weights, mapping, graph.weights)

    merged: Dict[Tuple[int, ...], int] = {}
    pins: List[np.ndarray] = []
    edge_weights: List[int] = []
    for edge_index, pin in enumerate(graph.pins):
        coarse_pin = np.unique(mapping[pin])
        if len(coarse_pin) < 2:
            continue
        key = tuple(coarse_pin.tolist())
        weight = int(graph.edge_weights[edge_index])
        if key in merged:
            edge_weights[merged[key]] += weight
        else:
            merged[key] = len(pins)
            pins.append(coarse_pin)
            edge_weights.append(weight)
    return Hypergraph(weights, pins, edge_weights)


def coarsen_once(
    graph: Hypergraph,
    max_vertex_weight: np.ndarray,
    rng: np.random.Generator,
) -> Optional[Tuple[Hypergraph, np.ndarray]]:
    """One matching + contraction round.

    Returns ``(coarse_graph, mapping)`` or ``None`` when no meaningful
    contraction is possible.
    """
    n = graph.num_vertices
    incidence = graph.incidence()
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)

    for u in order:
        if match[u] >= 0:
            continue
        scores: Dict[int, float] = {}
        for edge_index in incidence[u]:
            pin = graph.pins[edge_index]
            if len(pin) > _MAX_SCAN_PINS:
                continue
            rating = graph.edge_weights[edge_index] / (len(pin) - 1)
            for v in pin.tolist():
                if v != u and match[v] < 0:
                    scores[v] = scores.get(v, 0.0) + rating
        best, best_score = -1, 0.0
        for v, score in scores.items():
            if score <= best_score:
                continue
            combined = graph.weights[u] + graph.weights[v]
            if np.any(combined > max_vertex_weight):
                continue
            best, best_score = v, score
        if best >= 0:
            match[u] = best
            match[best] = u

    mapping = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if mapping[u] >= 0:
            continue
        mapping[u] = next_id
        partner = match[u]
        if partner >= 0:
            mapping[partner] = next_id
        next_id += 1

    if next_id >= n:  # nothing contracted
        return None
    return contract(graph, mapping, next_id), mapping


def coarsen(
    graph: Hypergraph,
    k: int,
    rng: np.random.Generator,
    min_vertices: Optional[int] = None,
    max_levels: int = 25,
) -> List[Tuple[Hypergraph, np.ndarray]]:
    """Full coarsening hierarchy.

    Returns a list of ``(coarse_graph, mapping_from_previous_level)``
    pairs, finest first.  Contraction stops when the graph is small
    enough (``min_vertices``, default ``max(60, 12 * k)``) or stops
    shrinking (< 5% reduction).
    """
    if min_vertices is None:
        min_vertices = max(60, 12 * k)
    # Cap coarse vertex weight so balanced k-way partitions stay
    # representable: no cluster may exceed ~half a part.
    cap = np.maximum(graph.total_weight // max(2 * k, 1), 1)
    levels: List[Tuple[Hypergraph, np.ndarray]] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= min_vertices:
            break
        step = coarsen_once(current, cap, rng)
        if step is None:
            break
        coarse, mapping = step
        if coarse.num_vertices > 0.95 * current.num_vertices:
            break
        levels.append((coarse, mapping))
        current = coarse
    return levels
