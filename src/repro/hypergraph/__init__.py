"""From-scratch multilevel hypergraph partitioner (KaHyPar substitute)."""

from .coarsen import coarsen, coarsen_once, contract
from .graph import BalanceConstraint, Hypergraph, PartitionResult
from .initial import greedy_initial, random_initial, repair_labels
from .partition import partition_hypergraph
from .refine import (
    COUNTERS,
    RefineCounters,
    RefinementState,
    fm_refine,
    greedy_refine,
    rebalance,
)
from .reference import (
    ScalarRefinementState,
    scalar_fm_refine,
    scalar_greedy_refine,
    scalar_rebalance,
)

__all__ = [
    "Hypergraph",
    "BalanceConstraint",
    "PartitionResult",
    "partition_hypergraph",
    "coarsen",
    "coarsen_once",
    "contract",
    "greedy_initial",
    "random_initial",
    "repair_labels",
    "RefinementState",
    "RefineCounters",
    "COUNTERS",
    "fm_refine",
    "greedy_refine",
    "rebalance",
    "ScalarRefinementState",
    "scalar_fm_refine",
    "scalar_greedy_refine",
    "scalar_rebalance",
]
