"""From-scratch multilevel hypergraph partitioner (KaHyPar substitute)."""

from .coarsen import coarsen, coarsen_once, contract
from .graph import BalanceConstraint, Hypergraph, PartitionResult
from .initial import greedy_initial, random_initial
from .partition import partition_hypergraph
from .refine import RefinementState, fm_refine, greedy_refine, rebalance

__all__ = [
    "Hypergraph",
    "BalanceConstraint",
    "PartitionResult",
    "partition_hypergraph",
    "coarsen",
    "coarsen_once",
    "contract",
    "greedy_initial",
    "random_initial",
    "RefinementState",
    "fm_refine",
    "greedy_refine",
    "rebalance",
]
