"""Hypergraph data structure with 2-D vertex weights.

Vertices carry a two-dimensional weight ``[flops, bytes]`` exactly as in
paper §4.2: computation blocks weigh ``[f, 0]``, data (token-group)
vertices weigh ``[0, s]``.  The partitioning objective is the
*connectivity metric* ``sum_e w_e * (lambda_e - 1)`` which equals the
total communication volume of the induced placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Hypergraph", "BalanceConstraint", "PartitionResult"]


class Hypergraph:
    """Immutable hypergraph with weighted vertices and hyperedges."""

    def __init__(
        self,
        weights: np.ndarray,
        pins: Sequence[Sequence[int]],
        edge_weights: Sequence[float],
    ) -> None:
        self.weights = np.asarray(weights, dtype=np.int64)
        if self.weights.ndim != 2:
            raise ValueError("vertex weights must be 2-D: [n, dims]")
        self.pins: List[np.ndarray] = []
        for pin in pins:
            arr = np.unique(np.asarray(pin, dtype=np.int64))
            if len(arr) and (arr[0] < 0 or arr[-1] >= self.num_vertices):
                raise ValueError("pin refers to a vertex outside the graph")
            self.pins.append(arr)
        self.edge_weights = np.asarray(edge_weights, dtype=np.int64)
        if len(self.edge_weights) != len(self.pins):
            raise ValueError("need one weight per hyperedge")
        self._incidence: Optional[List[List[int]]] = None

    @property
    def num_vertices(self) -> int:
        return self.weights.shape[0]

    @property
    def num_edges(self) -> int:
        return len(self.pins)

    @property
    def weight_dims(self) -> int:
        return self.weights.shape[1]

    @property
    def total_weight(self) -> np.ndarray:
        return self.weights.sum(axis=0)

    def incidence(self) -> List[List[int]]:
        """Edges incident to each vertex (built lazily, cached)."""
        if self._incidence is None:
            inc: List[List[int]] = [[] for _ in range(self.num_vertices)]
            for edge_index, pin in enumerate(self.pins):
                for vertex in pin.tolist():
                    inc[vertex].append(edge_index)
            self._incidence = inc
        return self._incidence

    # -- metrics ---------------------------------------------------------

    def pin_part_counts(self, labels: np.ndarray, k: int) -> np.ndarray:
        """Matrix ``[num_edges, k]``: pins of each edge per part."""
        counts = np.zeros((self.num_edges, k), dtype=np.int64)
        for edge_index, pin in enumerate(self.pins):
            parts, occur = np.unique(labels[pin], return_counts=True)
            counts[edge_index, parts] = occur
        return counts

    def connectivity_cost(self, labels: np.ndarray, k: int) -> int:
        """The paper's objective: ``sum_e w_e * (lambda_e - 1)``."""
        cost = 0
        for edge_index, pin in enumerate(self.pins):
            if len(pin) == 0:
                continue
            spans = len(np.unique(labels[pin]))
            cost += int(self.edge_weights[edge_index]) * (spans - 1)
        return cost

    def part_weights(self, labels: np.ndarray, k: int) -> np.ndarray:
        """Per-part total vertex weight, shape ``[k, dims]``."""
        out = np.zeros((k, self.weight_dims), dtype=np.int64)
        np.add.at(out, labels, self.weights)
        return out


@dataclass(frozen=True)
class BalanceConstraint:
    """Per-dimension imbalance tolerances (paper's epsilon).

    The paper allows ``(1 + eps)`` slack on computation and keeps data
    "as balanced as possible"; we give data a small explicit tolerance
    because exact balance is not attainable with integral blocks.
    """

    eps: Tuple[float, ...] = (0.1, 0.05)

    def caps(self, graph: Hypergraph, k: int) -> np.ndarray:
        """Maximum allowed part weight per dimension.

        The cap is relaxed to the heaviest single vertex per dimension
        so that a feasible assignment always exists.
        """
        total = graph.total_weight.astype(np.float64)
        if len(self.eps) != graph.weight_dims:
            raise ValueError("one epsilon per weight dimension required")
        caps = np.ceil(
            (1.0 + np.asarray(self.eps)) * total / max(k, 1)
        ).astype(np.int64)
        if graph.num_vertices:
            heaviest = graph.weights.max(axis=0)
            caps = np.maximum(caps, heaviest)
        return caps


@dataclass
class PartitionResult:
    """Outcome of a partitioning run."""

    labels: np.ndarray
    cost: int
    part_weights: np.ndarray
    feasible: bool
    method: str = "multilevel"

    @property
    def k(self) -> int:
        return self.part_weights.shape[0]

    def imbalance(self) -> np.ndarray:
        """Achieved per-dimension imbalance ``max_part / avg - 1``."""
        total = self.part_weights.sum(axis=0).astype(np.float64)
        avg = np.where(total > 0, total / self.k, 1.0)
        return self.part_weights.max(axis=0) / avg - 1.0
