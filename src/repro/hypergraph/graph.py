"""Hypergraph data structure with 2-D vertex weights.

Vertices carry a two-dimensional weight ``[flops, bytes]`` exactly as in
paper §4.2: computation blocks weigh ``[f, 0]``, data (token-group)
vertices weigh ``[0, s]``.  The partitioning objective is the
*connectivity metric* ``sum_e w_e * (lambda_e - 1)`` which equals the
total communication volume of the induced placement.

The incidence structure is stored as two CSR (compressed sparse row)
arrays so every hot loop in coarsening and refinement works on flat
``int64`` slices instead of Python lists:

* edge -> pin: ``edge_indptr`` / ``edge_pins`` (pins of edge ``e`` are
  ``edge_pins[edge_indptr[e]:edge_indptr[e+1]]``, unique and sorted);
* vertex -> edge: ``vertex_indptr`` / ``vertex_edges`` (built lazily).

``pins`` and ``incidence()`` remain available as views for existing
callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Hypergraph",
    "BalanceConstraint",
    "PartitionResult",
    "concat_csr_slices",
]


def concat_csr_slices(indptr, data, items):
    """Gather CSR slices ``data[indptr[i]:indptr[i+1]]`` for many ``items``.

    Returns ``(values, seg_lens)`` where ``values`` concatenates the
    slices in order and ``seg_lens`` holds each slice's length
    (zero-length slices simply contribute nothing).
    """
    starts = indptr[items]
    lens = indptr[items + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=data.dtype), lens
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    return data[np.repeat(starts, lens) + offsets], lens


class Hypergraph:
    """Immutable hypergraph with weighted vertices and hyperedges."""

    def __init__(
        self,
        weights: np.ndarray,
        pins: Sequence[Sequence[int]],
        edge_weights: Sequence[float],
    ) -> None:
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2:
            raise ValueError("vertex weights must be 2-D: [n, dims]")
        num_vertices = weights.shape[0]
        unique_pins: List[np.ndarray] = []
        for pin in pins:
            arr = np.unique(np.asarray(pin, dtype=np.int64))
            if len(arr) and (arr[0] < 0 or arr[-1] >= num_vertices):
                raise ValueError("pin refers to a vertex outside the graph")
            unique_pins.append(arr)
        sizes = np.fromiter(
            (len(p) for p in unique_pins), dtype=np.int64, count=len(unique_pins)
        )
        edge_indptr = np.zeros(len(unique_pins) + 1, dtype=np.int64)
        np.cumsum(sizes, out=edge_indptr[1:])
        edge_pins = (
            np.concatenate(unique_pins)
            if unique_pins
            else np.zeros(0, dtype=np.int64)
        )
        self._init_csr(weights, edge_indptr, edge_pins, edge_weights)

    @classmethod
    def from_csr(
        cls,
        weights: np.ndarray,
        edge_indptr: np.ndarray,
        edge_pins: np.ndarray,
        edge_weights: Sequence[float],
    ) -> "Hypergraph":
        """Build from a pre-deduplicated CSR edge->pin structure.

        ``edge_pins`` must hold each edge's pins sorted and unique (the
        invariant the list constructor establishes); vectorized builders
        (block-hypergraph construction, contraction, subgraph
        extraction) produce this directly and skip the per-edge
        normalization loop.
        """
        graph = cls.__new__(cls)
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2:
            raise ValueError("vertex weights must be 2-D: [n, dims]")
        edge_pins = np.asarray(edge_pins, dtype=np.int64)
        if len(edge_pins) and (
            edge_pins.min() < 0 or edge_pins.max() >= weights.shape[0]
        ):
            raise ValueError("pin refers to a vertex outside the graph")
        graph._init_csr(
            weights,
            np.asarray(edge_indptr, dtype=np.int64),
            edge_pins,
            edge_weights,
        )
        return graph

    def _init_csr(
        self,
        weights: np.ndarray,
        edge_indptr: np.ndarray,
        edge_pins: np.ndarray,
        edge_weights: Sequence[float],
    ) -> None:
        self.weights = weights
        self.edge_indptr = edge_indptr
        self.edge_pins = edge_pins
        self.edge_weights = np.asarray(edge_weights, dtype=np.int64)
        if len(self.edge_weights) != len(edge_indptr) - 1:
            raise ValueError("need one weight per hyperedge")
        #: edge id of each flattened pin entry (aligned with edge_pins).
        self.pin_edge_ids = np.repeat(
            np.arange(self.num_edges, dtype=np.int64), self.edge_sizes
        )
        self._pins: Optional[List[np.ndarray]] = None
        self._incidence: Optional[List[List[int]]] = None
        self._vertex_indptr: Optional[np.ndarray] = None
        self._vertex_edges: Optional[np.ndarray] = None

    @property
    def num_vertices(self) -> int:
        return self.weights.shape[0]

    @property
    def num_edges(self) -> int:
        return len(self.edge_indptr) - 1

    @property
    def num_pins(self) -> int:
        return len(self.edge_pins)

    @property
    def edge_sizes(self) -> np.ndarray:
        return np.diff(self.edge_indptr)

    @property
    def weight_dims(self) -> int:
        return self.weights.shape[1]

    @property
    def total_weight(self) -> np.ndarray:
        return self.weights.sum(axis=0)

    @property
    def pins(self) -> List[np.ndarray]:
        """Per-edge pin arrays (views into the CSR storage)."""
        if self._pins is None:
            self._pins = [
                self.edge_pins[self.edge_indptr[e] : self.edge_indptr[e + 1]]
                for e in range(self.num_edges)
            ]
        return self._pins

    def vertex_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Vertex -> edge CSR ``(indptr, edge ids)`` (lazy, cached)."""
        if self._vertex_indptr is None:
            order = np.argsort(self.edge_pins, kind="stable")
            self._vertex_edges = self.pin_edge_ids[order]
            counts = np.bincount(self.edge_pins, minlength=self.num_vertices)
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._vertex_indptr = indptr
        return self._vertex_indptr, self._vertex_edges

    def incident_edges(self, vertex: int) -> np.ndarray:
        """Edges incident to one vertex (CSR slice, sorted by edge id)."""
        indptr, edges = self.vertex_csr()
        return edges[indptr[vertex] : indptr[vertex + 1]]

    def incidence(self) -> List[List[int]]:
        """Edges incident to each vertex as Python lists (legacy view)."""
        if self._incidence is None:
            indptr, edges = self.vertex_csr()
            self._incidence = [
                edges[indptr[v] : indptr[v + 1]].tolist()
                for v in range(self.num_vertices)
            ]
        return self._incidence

    # -- metrics ---------------------------------------------------------

    def pin_part_counts(self, labels: np.ndarray, k: int) -> np.ndarray:
        """Matrix ``[num_edges, k]``: pins of each edge per part."""
        counts = np.zeros((self.num_edges, k), dtype=np.int64)
        np.add.at(counts, (self.pin_edge_ids, labels[self.edge_pins]), 1)
        return counts

    def connectivity_cost(self, labels: np.ndarray, k: int) -> int:
        """The paper's objective: ``sum_e w_e * (lambda_e - 1)``."""
        counts = self.pin_part_counts(np.asarray(labels, dtype=np.int64), k)
        spans = (counts > 0).sum(axis=1)
        active = spans > 0
        return int((self.edge_weights[active] * (spans[active] - 1)).sum())

    def part_weights(self, labels: np.ndarray, k: int) -> np.ndarray:
        """Per-part total vertex weight, shape ``[k, dims]``."""
        out = np.zeros((k, self.weight_dims), dtype=np.int64)
        np.add.at(out, labels, self.weights)
        return out


@dataclass(frozen=True)
class BalanceConstraint:
    """Per-dimension imbalance tolerances (paper's epsilon).

    The paper allows ``(1 + eps)`` slack on computation and keeps data
    "as balanced as possible"; we give data a small explicit tolerance
    because exact balance is not attainable with integral blocks.
    """

    eps: Tuple[float, ...] = (0.1, 0.05)

    def caps(self, graph: Hypergraph, k: int) -> np.ndarray:
        """Maximum allowed part weight per dimension.

        The cap is relaxed to the heaviest single vertex per dimension
        so that a feasible assignment always exists.
        """
        total = graph.total_weight.astype(np.float64)
        if len(self.eps) != graph.weight_dims:
            raise ValueError("one epsilon per weight dimension required")
        caps = np.ceil(
            (1.0 + np.asarray(self.eps)) * total / max(k, 1)
        ).astype(np.int64)
        if graph.num_vertices:
            heaviest = graph.weights.max(axis=0)
            caps = np.maximum(caps, heaviest)
        return caps


@dataclass
class PartitionResult:
    """Outcome of a partitioning run."""

    labels: np.ndarray
    cost: int
    part_weights: np.ndarray
    feasible: bool
    method: str = "multilevel"

    @property
    def k(self) -> int:
        return self.part_weights.shape[0]

    def imbalance(self) -> np.ndarray:
        """Achieved per-dimension imbalance ``max_part / avg - 1``."""
        total = self.part_weights.sum(axis=0).astype(np.float64)
        avg = np.where(total > 0, total / self.k, 1.0)
        return self.part_weights.max(axis=0) / avg - 1.0
