"""Initial partitioning of the coarsest hypergraph.

Besides the cold constructive assignments, this module owns the *warm
path* delta re-planning rides on: :func:`repair_labels` turns a label
vector from a previous placement — possibly referencing parts that no
longer exist after a cluster-shape change — into a feasible start the
refinement stack can polish, deterministically and without touching
vertices whose previous assignment is still valid.
"""

from __future__ import annotations

import numpy as np

from .graph import Hypergraph

__all__ = ["greedy_initial", "random_initial", "repair_labels"]


def random_initial(
    graph: Hypergraph, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random assignment (restart seed for refinement)."""
    return rng.integers(0, k, size=graph.num_vertices, dtype=np.int64)


def greedy_initial(
    graph: Hypergraph,
    k: int,
    caps: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy constructive assignment.

    Vertices are placed heaviest-first (LPT-style, normalizing each
    weight dimension by its total); each vertex goes to the part where
    it increases connectivity least, breaking ties by least load.
    Balance caps are respected where possible.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    totals = np.maximum(graph.total_weight, 1).astype(np.float64)
    norm = (graph.weights / totals[None, :]).sum(axis=1)
    order = np.argsort(-norm, kind="stable")

    part_weights = np.zeros((k, graph.weight_dims), dtype=np.int64)
    # counts[e, p] = assigned pins of edge e in part p so far
    counts = np.zeros((graph.num_edges, k), dtype=np.int64)
    vindptr, vedges = graph.vertex_csr()
    edge_weights = graph.edge_weights

    for vertex in order.tolist():
        # Connectivity increase of each candidate part: an edge whose
        # span does not yet include the part gains (weight) cost, unless
        # the edge has no assigned pins at all yet.
        edges = vedges[vindptr[vertex] : vindptr[vertex + 1]]
        edge_counts = counts[edges]
        active = edge_counts.sum(axis=1) > 0
        increase = (
            (edge_counts[active] == 0) * edge_weights[edges][active, None]
        ).sum(axis=0)
        fits = np.all(
            part_weights + graph.weights[vertex][None, :] <= caps[None, :], axis=1
        )
        candidates = np.nonzero(fits)[0]
        if len(candidates) == 0:
            candidates = np.arange(k)
        load = (part_weights[candidates] / totals[None, :]).sum(axis=1)
        score = increase[candidates].astype(np.float64) + 1e-9 * load
        # Randomized tie-break keeps restarts diverse.
        score += rng.random(len(candidates)) * 1e-12
        choice = int(candidates[np.argmin(score)])
        labels[vertex] = choice
        part_weights[choice] += graph.weights[vertex]
        counts[edges, choice] += 1
    return labels


def repair_labels(
    graph: Hypergraph, labels: np.ndarray, k: int, caps: np.ndarray
) -> np.ndarray:
    """Make a stale warm-start label vector feasible for ``k`` parts.

    Vertices whose label still names an existing part keep it; vertices
    stranded on vanished parts (label outside ``[0, k)``) are
    reassigned heaviest-first to the least-loaded part that still fits
    under ``caps`` (any part if none fits).  Fully deterministic — the
    delta re-planner relies on a repaired re-plan being reproducible —
    and O(stranded vertices), so a small shape change repairs cheaply.
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    if labels.shape != (graph.num_vertices,):
        raise ValueError("warm labels must cover every vertex")
    stranded = np.nonzero((labels < 0) | (labels >= k))[0]
    if len(stranded) == 0:
        return labels
    part_weights = np.zeros((k, graph.weight_dims), dtype=np.int64)
    valid = labels[(labels >= 0) & (labels < k)]
    if len(valid):
        np.add.at(
            part_weights, valid, graph.weights[(labels >= 0) & (labels < k)]
        )
    totals = np.maximum(graph.total_weight, 1).astype(np.float64)
    norm = (graph.weights[stranded] / totals[None, :]).sum(axis=1)
    order = stranded[np.argsort(-norm, kind="stable")]
    for vertex in order.tolist():
        weight = graph.weights[vertex]
        fits = np.all(part_weights + weight[None, :] <= caps[None, :], axis=1)
        candidates = np.nonzero(fits)[0]
        if len(candidates) == 0:
            candidates = np.arange(k)
        load = (part_weights[candidates] / totals[None, :]).sum(axis=1)
        choice = int(candidates[np.argmin(load)])
        labels[vertex] = choice
        part_weights[choice] += weight
    return labels
