"""Scalar reference implementations of partition refinement.

This module implements the *same algorithms* as
:mod:`repro.hypergraph.refine` with per-vertex, per-edge Python loops
instead of batched numpy passes.  It exists so property tests can
prove the vectorized refinement makes exactly the same decisions:
identical labels, costs and move counts under the same RNG seed.

It is a reference for the **current** semantics, not a museum copy of
the pre-vectorization code.  Relative to the historic implementation,
both sides deliberately share these changes (disclosed in CHANGES.md):

* candidate target parts are visited in ascending order (the old code
  iterated Python sets, whose order for small ints is ascending in
  CPython anyway), so tie-breaking is well-defined;
* FM keeps only the newest heap entry per (vertex, target) and stops a
  pass after ``patience`` tentative moves without a new best cost;
* rebalance drains a scored eviction sample per scan (caps re-checked
  before every move) and gives up once the total overload stagnates
  for three consecutive scans instead of thrashing to ``max_moves``.

Do not use this in the planner hot path — it is deliberately slow.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

import numpy as np

from .graph import Hypergraph

__all__ = [
    "ScalarRefinementState",
    "scalar_greedy_refine",
    "scalar_fm_refine",
    "scalar_rebalance",
]


class ScalarRefinementState:
    """Incremental bookkeeping with per-edge Python loops (reference)."""

    def __init__(self, graph: Hypergraph, labels: np.ndarray, k: int) -> None:
        self.graph = graph
        self.k = k
        self.labels = labels.astype(np.int64).copy()
        self.pin_counts = self._pin_part_counts(graph, self.labels, k)
        self.part_weights = graph.part_weights(self.labels, k)

    @staticmethod
    def _pin_part_counts(
        graph: Hypergraph, labels: np.ndarray, k: int
    ) -> np.ndarray:
        counts = np.zeros((graph.num_edges, k), dtype=np.int64)
        for edge_index, pin in enumerate(graph.pins):
            parts, occur = np.unique(labels[pin], return_counts=True)
            counts[edge_index, parts] = occur
        return counts

    def gain(self, vertex: int, target: int) -> int:
        source = self.labels[vertex]
        if source == target:
            return 0
        total = 0
        for edge_index in self.graph.incidence()[vertex]:
            weight = int(self.graph.edge_weights[edge_index])
            counts = self.pin_counts[edge_index]
            if counts[source] == 1:
                total += weight  # source part leaves the edge's span
            if counts[target] == 0:
                total -= weight  # target part joins the edge's span
        return total

    def move(self, vertex: int, target: int) -> None:
        source = self.labels[vertex]
        if source == target:
            return
        for edge_index in self.graph.incidence()[vertex]:
            self.pin_counts[edge_index, source] -= 1
            self.pin_counts[edge_index, target] += 1
        self.part_weights[source] -= self.graph.weights[vertex]
        self.part_weights[target] += self.graph.weights[vertex]
        self.labels[vertex] = target

    def fits(self, vertex: int, target: int, caps: np.ndarray) -> bool:
        new_weight = self.part_weights[target] + self.graph.weights[vertex]
        return bool(np.all(new_weight <= caps))

    def cost(self) -> int:
        spans = (self.pin_counts > 0).sum(axis=1)
        active = spans > 0
        return int(
            (self.graph.edge_weights[active] * (spans[active] - 1)).sum()
        )

    def is_feasible(self, caps: np.ndarray) -> bool:
        return bool(np.all(self.part_weights <= caps[None, :]))


def scalar_greedy_refine(
    state: ScalarRefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 8,
) -> int:
    """The original greedy pass; see :func:`repro.hypergraph.refine.greedy_refine`."""
    graph = state.graph
    incidence = graph.incidence()
    moves = 0
    for _ in range(max_passes):
        improved = False
        for vertex in rng.permutation(graph.num_vertices):
            source = state.labels[vertex]
            candidates = set()
            for edge_index in incidence[vertex]:
                counts = state.pin_counts[edge_index]
                candidates.update(np.nonzero(counts)[0].tolist())
            candidates.discard(source)
            best_target, best_gain = -1, 0
            for target in sorted(candidates):
                gain = state.gain(vertex, target)
                if gain > best_gain and state.fits(vertex, target, caps):
                    best_target, best_gain = target, gain
            if best_target >= 0:
                state.move(vertex, best_target)
                moves += 1
                improved = True
        if not improved:
            break
    return moves


def _adjacent_parts(state: ScalarRefinementState, vertex: int) -> list:
    parts = set()
    for edge_index in state.graph.incidence()[vertex]:
        parts.update(np.nonzero(state.pin_counts[edge_index])[0].tolist())
    parts.discard(int(state.labels[vertex]))
    return sorted(parts)


def scalar_fm_refine(
    state: ScalarRefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 3,
    move_cap: Optional[int] = None,
    patience: int = 128,
) -> int:
    """The original FM pass; see :func:`repro.hypergraph.refine.fm_refine`."""
    graph = state.graph
    if move_cap is None:
        move_cap = min(graph.num_vertices, 4000)
    incidence = graph.incidence()
    counter = itertools.count()
    kept_moves = 0

    for _ in range(max_passes):
        heap: list = []
        # Only the newest pushed entry per (vertex, target) is live;
        # older duplicates are discarded on pop (mirrors refine.py).
        version: dict = {}

        def push(vertex: int) -> None:
            for target in _adjacent_parts(state, vertex):
                gain = state.gain(vertex, target)
                key = (int(vertex), int(target))
                version[key] = entry_version = version.get(key, 0) + 1
                heapq.heappush(
                    heap,
                    (-gain, next(counter), int(vertex), int(target),
                     entry_version),
                )

        boundary = np.array(
            [v for v in range(graph.num_vertices) if _adjacent_parts(state, v)],
            dtype=np.int64,
        )
        rng.shuffle(boundary)
        for vertex in boundary:
            push(vertex)

        moved = set()
        history = []  # (vertex, source_part)
        current_cost = state.cost()
        best_cost = current_cost
        best_length = 0

        while heap and len(history) < move_cap:
            if len(history) - best_length >= patience:
                break
            neg_gain, _, vertex, target, entry_version = heapq.heappop(heap)
            if (
                version.get((vertex, target)) != entry_version
                or vertex in moved
                or target == state.labels[vertex]
            ):
                continue
            actual = state.gain(vertex, target)
            if actual < -neg_gain:  # stale entry: requeue with real gain
                key = (vertex, target)
                version[key] = entry_version = version[key] + 1
                heapq.heappush(
                    heap,
                    (-actual, next(counter), vertex, target, entry_version),
                )
                continue
            if not state.fits(vertex, target, caps):
                continue
            source = int(state.labels[vertex])
            state.move(vertex, target)
            moved.add(vertex)
            history.append((vertex, source))
            current_cost -= actual
            if current_cost < best_cost:
                best_cost = current_cost
                best_length = len(history)
            for edge_index in incidence[vertex]:
                pin = graph.pins[edge_index]
                if len(pin) > 64:
                    continue
                for neighbour in pin.tolist():
                    if neighbour not in moved:
                        push(neighbour)

        for vertex, source in reversed(history[best_length:]):
            state.move(vertex, source)
        kept_moves += best_length
        if best_length == 0:
            break
    return kept_moves


def scalar_rebalance(
    state: ScalarRefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_moves: Optional[int] = None,
) -> bool:
    """The scalar rebalance; see :func:`repro.hypergraph.refine.rebalance`.

    Same scan semantics as the vectorized version: score one random
    eviction sample (losses and cap feasibility snapshotted at scan
    start), then drain it in ascending-(loss, sample position, part)
    order — re-checking the caps before every move — until the
    overloaded part fits or the sample is exhausted.
    """
    graph = state.graph
    if max_moves is None:
        max_moves = 4 * graph.num_vertices
    moves = 0
    best_overload = int(
        np.maximum(state.part_weights - caps[None, :], 0).sum()
    )
    stalled = 0
    while moves < max_moves:
        overload = state.part_weights.astype(np.float64) / caps[None, :]
        worst_part = int(np.argmax(overload.max(axis=1)))
        if np.all(state.part_weights[worst_part] <= caps):
            return True
        over_dim = int(np.argmax(overload[worst_part]))
        members = np.nonzero(state.labels == worst_part)[0]
        movable = members[graph.weights[members, over_dim] > 0]
        if len(movable) == 0:
            return False
        sample = rng.permutation(movable)[: min(len(movable), 64)]

        # Snapshot losses of all cap-feasible (vertex, target) pairs.
        entries = []
        for row, vertex in enumerate(sample):
            for target in range(state.k):
                if target == worst_part or not state.fits(vertex, target, caps):
                    continue
                entries.append((-state.gain(vertex, target), row, target))
        entries.sort()

        taken = set()
        progressed = False
        for loss, row, target in entries:
            if moves >= max_moves:
                break
            if row in taken:
                continue
            vertex = int(sample[row])
            if not state.fits(vertex, target, caps):
                continue  # an earlier eviction filled this part up
            taken.add(row)
            state.move(vertex, target)
            moves += 1
            progressed = True
            if np.all(state.part_weights[worst_part] <= caps):
                break
        if not progressed:
            vertex = int(sample[0])
            target = int(np.argmin(state.part_weights[:, over_dim]))
            if target == worst_part:
                return False
            state.move(vertex, target)
            moves += 1
        overload_now = int(
            np.maximum(state.part_weights - caps[None, :], 0).sum()
        )
        if overload_now < best_overload:
            best_overload = overload_now
            stalled = 0
        else:
            stalled += 1
            if stalled >= 3:
                return False
    return state.is_feasible(caps)
