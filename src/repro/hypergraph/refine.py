"""Partition refinement: greedy move-based local search (FM-style).

Pin-part counts are maintained incrementally so each move's gain is
O(incident edges).  Moves are accepted when they reduce the
connectivity cost without violating the balance caps; a dedicated
rebalancing pass repairs infeasible partitions by relocating vertices
out of overloaded parts at minimal cost increase.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

import numpy as np

from .graph import Hypergraph

__all__ = ["RefinementState", "greedy_refine", "fm_refine", "rebalance"]


class RefinementState:
    """Incremental bookkeeping for move-based refinement."""

    def __init__(self, graph: Hypergraph, labels: np.ndarray, k: int) -> None:
        self.graph = graph
        self.k = k
        self.labels = labels.astype(np.int64).copy()
        self.pin_counts = graph.pin_part_counts(self.labels, k)
        self.part_weights = graph.part_weights(self.labels, k)

    def gain(self, vertex: int, target: int) -> int:
        """Connectivity reduction if ``vertex`` moves to ``target``."""
        source = self.labels[vertex]
        if source == target:
            return 0
        total = 0
        for edge_index in self.graph.incidence()[vertex]:
            weight = int(self.graph.edge_weights[edge_index])
            counts = self.pin_counts[edge_index]
            if counts[source] == 1:
                total += weight  # source part leaves the edge's span
            if counts[target] == 0:
                total -= weight  # target part joins the edge's span
        return total

    def move(self, vertex: int, target: int) -> None:
        source = self.labels[vertex]
        if source == target:
            return
        for edge_index in self.graph.incidence()[vertex]:
            self.pin_counts[edge_index, source] -= 1
            self.pin_counts[edge_index, target] += 1
        self.part_weights[source] -= self.graph.weights[vertex]
        self.part_weights[target] += self.graph.weights[vertex]
        self.labels[vertex] = target

    def fits(self, vertex: int, target: int, caps: np.ndarray) -> bool:
        new_weight = self.part_weights[target] + self.graph.weights[vertex]
        return bool(np.all(new_weight <= caps))

    def cost(self) -> int:
        spans = (self.pin_counts > 0).sum(axis=1)
        active = spans > 0
        return int(
            (self.graph.edge_weights[active] * (spans[active] - 1)).sum()
        )

    def is_feasible(self, caps: np.ndarray) -> bool:
        return bool(np.all(self.part_weights <= caps[None, :]))


def greedy_refine(
    state: RefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 8,
) -> int:
    """Iterated greedy improvement; returns the number of moves made.

    Each pass visits vertices in random order and applies the best
    strictly-positive-gain move that keeps the partition feasible.
    Candidate targets are restricted to parts adjacent through incident
    edges (moving elsewhere can never reduce connectivity).
    """
    graph, k = state.graph, state.k
    incidence = graph.incidence()
    moves = 0
    for _ in range(max_passes):
        improved = False
        for vertex in rng.permutation(graph.num_vertices):
            source = state.labels[vertex]
            candidates = set()
            for edge_index in incidence[vertex]:
                counts = state.pin_counts[edge_index]
                candidates.update(np.nonzero(counts)[0].tolist())
            candidates.discard(source)
            best_target, best_gain = -1, 0
            for target in candidates:
                gain = state.gain(vertex, target)
                if gain > best_gain and state.fits(vertex, target, caps):
                    best_target, best_gain = target, gain
            if best_target >= 0:
                state.move(vertex, best_target)
                moves += 1
                improved = True
        if not improved:
            break
    return moves


def _adjacent_parts(state: RefinementState, vertex: int) -> set:
    parts = set()
    for edge_index in state.graph.incidence()[vertex]:
        parts.update(np.nonzero(state.pin_counts[edge_index])[0].tolist())
    parts.discard(int(state.labels[vertex]))
    return parts


def fm_refine(
    state: RefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 3,
    move_cap: Optional[int] = None,
) -> int:
    """Fiduccia–Mattheyses refinement with rollback.

    Unlike :func:`greedy_refine`, FM tentatively applies zero- and
    negative-gain moves (each vertex at most once per pass) and rolls
    back to the best prefix, which lets the cut slide across plateaus —
    essential for chain-like hypergraphs such as causal attention.

    Returns the number of net (kept) moves.
    """
    graph = state.graph
    if move_cap is None:
        move_cap = min(graph.num_vertices, 4000)
    incidence = graph.incidence()
    counter = itertools.count()
    kept_moves = 0

    for _ in range(max_passes):
        heap: list = []

        def push(vertex: int) -> None:
            for target in _adjacent_parts(state, vertex):
                gain = state.gain(vertex, target)
                heapq.heappush(heap, (-gain, next(counter), vertex, target))

        boundary = [
            v
            for v in range(graph.num_vertices)
            if _adjacent_parts(state, v)
        ]
        rng.shuffle(boundary)
        for vertex in boundary:
            push(vertex)

        moved = set()
        history = []  # (vertex, source_part)
        current_cost = state.cost()
        best_cost = current_cost
        best_length = 0

        while heap and len(history) < move_cap:
            neg_gain, _, vertex, target = heapq.heappop(heap)
            if vertex in moved or target == state.labels[vertex]:
                continue
            actual = state.gain(vertex, target)
            if actual < -neg_gain:  # stale entry: requeue with real gain
                heapq.heappush(heap, (-actual, next(counter), vertex, target))
                continue
            if not state.fits(vertex, target, caps):
                continue
            source = int(state.labels[vertex])
            state.move(vertex, target)
            moved.add(vertex)
            history.append((vertex, source))
            current_cost -= actual
            if current_cost < best_cost:
                best_cost = current_cost
                best_length = len(history)
            # Refresh candidates of affected neighbours.
            for edge_index in incidence[vertex]:
                pin = graph.pins[edge_index]
                if len(pin) > 64:
                    continue
                for neighbour in pin.tolist():
                    if neighbour not in moved:
                        push(neighbour)

        for vertex, source in reversed(history[best_length:]):
            state.move(vertex, source)
        kept_moves += best_length
        if best_length == 0:
            break
    return kept_moves


def rebalance(
    state: RefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_moves: Optional[int] = None,
) -> bool:
    """Repair balance violations; returns True when feasible afterwards.

    Vertices are evicted from overloaded parts into the least-loaded
    feasible part, preferring moves with the smallest cost increase.
    """
    graph = state.graph
    if max_moves is None:
        max_moves = 4 * graph.num_vertices
    for _ in range(max_moves):
        overload = state.part_weights.astype(np.float64) / caps[None, :]
        worst_part = int(np.argmax(overload.max(axis=1)))
        if np.all(state.part_weights[worst_part] <= caps):
            return True
        over_dim = int(np.argmax(overload[worst_part]))
        members = np.nonzero(state.labels == worst_part)[0]
        movable = members[graph.weights[members, over_dim] > 0]
        if len(movable) == 0:
            return False
        # Prefer evicting small vertices with the least connectivity loss.
        sample = rng.permutation(movable)[: min(len(movable), 64)]
        best = None
        for vertex in sample:
            for target in range(state.k):
                if target == worst_part or not state.fits(vertex, target, caps):
                    continue
                loss = -state.gain(vertex, target)
                if best is None or loss < best[0]:
                    best = (loss, vertex, target)
        if best is None:
            # No target has room: move to the globally least-loaded part
            # anyway so progress continues (cap re-checked at the end).
            vertex = int(sample[0])
            target = int(np.argmin(state.part_weights[:, over_dim]))
            if target == worst_part:
                return False
            state.move(vertex, target)
            continue
        state.move(int(best[1]), int(best[2]))
    return state.is_feasible(caps)
