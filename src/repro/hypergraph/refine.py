"""Partition refinement: greedy move-based local search (FM-style).

Pin-part counts are maintained incrementally so each move's gain is
O(incident edges).  Moves are accepted when they reduce the
connectivity cost without violating the balance caps; a dedicated
rebalancing pass repairs infeasible partitions by relocating vertices
out of overloaded parts at minimal cost increase.

All inner loops are vectorized over the CSR incidence arrays:

* gains are evaluated for whole *batches* of (vertex, candidate part)
  pairs in one segmented numpy pass — the FM heap is (re)filled one
  batch per move, and rebalancing scores its entire eviction sample at
  once — instead of per-(vertex, part) Python loops;
* a per-vertex staleness stamp lets FM trust heap entries whose
  incident pin counts are untouched since the push, skipping the
  pop-time gain recomputation entirely.

Move-acceptance semantics are identical to the scalar reference in
:mod:`repro.hypergraph.reference`, which the parity tests enforce; ties
break toward the lowest part index.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .graph import Hypergraph, concat_csr_slices as _concat_slices

__all__ = [
    "RefinementState",
    "RefineCounters",
    "COUNTERS",
    "greedy_refine",
    "fm_refine",
    "rebalance",
]


@dataclass
class RefineCounters:
    """Global counters of refinement work (reported in PlanningStats)."""

    gain_evals: int = 0
    moves: int = 0

    def reset(self) -> None:
        self.gain_evals = 0
        self.moves = 0

    def snapshot(self) -> dict:
        return {"gain_evals": self.gain_evals, "moves": self.moves}


#: Module-level counters; the planner resets them per planning run.
COUNTERS = RefineCounters()

#: Graphs at or below this many vertices/edges take the scalar gain
#: path: the batched ``reduceat`` machinery has fixed numpy overhead
#: (index concatenation, segment bookkeeping, 2-D temporaries) that
#: plain Python loops undercut when the whole gain matrix is tiny.
#: Coarsened levels of small placement instances hit this constantly,
#: and FM (re)fills its heap once per move — the scalar path cuts that
#: churn without changing a single gain value.
SMALL_GRAPH_VERTICES = 64
SMALL_GRAPH_EDGES = 256


class RefinementState:
    """Incremental bookkeeping for move-based refinement.

    ``counters`` defaults to the module-level :data:`COUNTERS`
    singleton, which is fine for today's single-threaded planner; a
    concurrent/overlapped planner should pass its own
    :class:`RefineCounters` so per-run stats don't cross-contaminate.
    """

    def __init__(
        self,
        graph: Hypergraph,
        labels: np.ndarray,
        k: int,
        counters: Optional[RefineCounters] = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.labels = labels.astype(np.int64).copy()
        self.pin_counts = graph.pin_part_counts(self.labels, k)
        self.part_weights = graph.part_weights(self.labels, k)
        self.counters = COUNTERS if counters is None else counters
        self._vindptr, self._vedges = graph.vertex_csr()
        self._scalar_gains = (
            graph.num_vertices <= SMALL_GRAPH_VERTICES
            and graph.num_edges <= SMALL_GRAPH_EDGES
        )

    def incident_edges(self, vertex: int) -> np.ndarray:
        return self._vedges[self._vindptr[vertex] : self._vindptr[vertex + 1]]

    def gain(self, vertex: int, target: int) -> int:
        """Connectivity reduction if ``vertex`` moves to ``target``."""
        source = int(self.labels[vertex])
        if source == target:
            return 0
        edges = self.incident_edges(vertex)
        weights = self.graph.edge_weights[edges]
        self.counters.gain_evals += 1
        # Source part leaves edges where the vertex is its only pin;
        # target part joins edges where it has no pin yet.
        return int(
            weights @ (self.pin_counts[edges, source] == 1)
            - weights @ (self.pin_counts[edges, target] == 0)
        )

    def gain_vector(self, vertex: int) -> np.ndarray:
        """Gains of moving ``vertex`` to every part at once (0 at source)."""
        source = int(self.labels[vertex])
        edges = self.incident_edges(vertex)
        weights = self.graph.edge_weights[edges]
        counts = self.pin_counts[edges]
        leave = int(weights @ (counts[:, source] == 1))
        join = weights @ (counts == 0)
        gains = leave - join
        gains[source] = 0
        self.counters.gain_evals += self.k
        return gains

    def batch_gains(self, vertices: np.ndarray, mode: Optional[str] = None):
        """Gains and adjacency for a batch of vertices in one pass.

        Returns ``(gains, adjacent)`` of shape ``[len(vertices), k]``:
        ``gains[i, t]`` is the connectivity reduction of moving
        ``vertices[i]`` to part ``t`` and ``adjacent[i, t]`` marks parts
        reachable through incident edges (source part excluded).  One
        segmented reduction replaces ``len(vertices) * k`` scalar gain
        calls; duplicates in ``vertices`` are evaluated independently.

        ``mode`` selects the implementation: ``"batched"`` (segmented
        numpy reductions), ``"scalar"`` (plain loops — faster below
        :data:`SMALL_GRAPH_VERTICES`/:data:`SMALL_GRAPH_EDGES`, where
        numpy's fixed per-call overhead dominates), or ``None`` to
        dispatch on graph size.  Both paths compute identical integer
        arrays; the parity tests assert it.
        """
        if mode is None:
            mode = "scalar" if self._scalar_gains else "batched"
        if mode == "scalar":
            return self._batch_gains_scalar(vertices)
        n, k = len(vertices), self.k
        self.counters.gain_evals += n * k
        edges, lens = _concat_slices(self._vindptr, self._vedges, vertices)
        if len(edges) == 0:
            return (
                np.zeros((n, k), dtype=np.int64),
                np.zeros((n, k), dtype=bool),
            )
        if lens.min() > 0:  # common case: every vertex has edges
            kept = None
            klens = lens
            sources = self.labels[vertices]
        else:
            kept = np.nonzero(lens > 0)[0]
            klens = lens[kept]
            sources = self.labels[vertices[kept]]
        seg_starts = np.cumsum(klens) - klens
        counts = self.pin_counts[edges]
        weights = self.graph.edge_weights[edges]
        own = counts[np.arange(len(edges)), np.repeat(sources, klens)]
        leave = np.add.reduceat(weights * (own == 1), seg_starts)
        join = np.add.reduceat((counts == 0) * weights[:, None], seg_starts, axis=0)
        present = np.bitwise_or.reduceat(counts != 0, seg_starts, axis=0)
        rows = np.arange(len(klens))
        dense_gains = leave[:, None] - join
        dense_gains[rows, sources] = 0
        present[rows, sources] = False
        if kept is None:
            return dense_gains, present
        gains = np.zeros((n, k), dtype=np.int64)
        adjacent = np.zeros((n, k), dtype=bool)
        gains[kept] = dense_gains
        adjacent[kept] = present
        return gains, adjacent

    def _batch_gains_scalar(self, vertices: np.ndarray):
        """Scalar mirror of :meth:`batch_gains` for small graphs.

        Same (leave − join, adjacency) arithmetic over the same CSR
        slices, in plain Python: no index concatenation, no segment
        starts, no 2-D temporaries.  Exact integer arithmetic keeps the
        outputs bit-identical to the batched path.
        """
        n, k = len(vertices), self.k
        self.counters.gain_evals += n * k
        gains = np.zeros((n, k), dtype=np.int64)
        adjacent = np.zeros((n, k), dtype=bool)
        indptr = self._vindptr
        vedges = self._vedges
        labels = self.labels
        pin_counts = self.pin_counts
        edge_weights = self.graph.edge_weights
        for row, vertex in enumerate(np.asarray(vertices).tolist()):
            lo, hi = int(indptr[vertex]), int(indptr[vertex + 1])
            if lo == hi:
                continue
            source = int(labels[vertex])
            leave = 0
            join = [0] * k
            present = [False] * k
            for edge in vedges[lo:hi].tolist():
                weight = int(edge_weights[edge])
                counts = pin_counts[edge].tolist()
                if counts[source] == 1:
                    leave += weight
                for part in range(k):
                    if counts[part] == 0:
                        join[part] += weight
                    else:
                        present[part] = True
            row_gains = gains[row]
            for part in range(k):
                row_gains[part] = leave - join[part]
            row_gains[source] = 0
            present[source] = False
            adjacent[row] = present
        return gains, adjacent

    def move(self, vertex: int, target: int) -> None:
        source = int(self.labels[vertex])
        if source == target:
            return
        edges = self.incident_edges(vertex)
        self.pin_counts[edges, source] -= 1
        self.pin_counts[edges, target] += 1
        self.part_weights[source] -= self.graph.weights[vertex]
        self.part_weights[target] += self.graph.weights[vertex]
        self.labels[vertex] = target
        self.counters.moves += 1

    def fits(self, vertex: int, target: int, caps: np.ndarray) -> bool:
        new_weight = self.part_weights[target] + self.graph.weights[vertex]
        return bool((new_weight <= caps).all())

    def fits_mask(self, vertex: int, caps: np.ndarray) -> np.ndarray:
        """Feasibility of moving ``vertex`` into each part, bool ``[k]``."""
        new_weight = self.part_weights + self.graph.weights[vertex][None, :]
        return (new_weight <= caps[None, :]).all(axis=1)

    def cost(self) -> int:
        spans = (self.pin_counts > 0).sum(axis=1)
        active = spans > 0
        return int(
            (self.graph.edge_weights[active] * (spans[active] - 1)).sum()
        )

    def is_feasible(self, caps: np.ndarray) -> bool:
        return bool(np.all(self.part_weights <= caps[None, :]))

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to an edge spanning >= 2 parts (ascending)."""
        graph = self.graph
        spans = (self.pin_counts > 0).sum(axis=1)
        cut = spans >= 2
        if not cut.any():
            return np.zeros(0, dtype=np.int64)
        pin_on_cut = cut[graph.pin_edge_ids]
        return np.unique(graph.edge_pins[pin_on_cut])


def greedy_refine(
    state: RefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 8,
) -> int:
    """Iterated greedy improvement; returns the number of moves made.

    Each pass visits vertices in random order and applies the best
    strictly-positive-gain move that keeps the partition feasible.
    Candidate targets are restricted to parts adjacent through incident
    edges (moving elsewhere can never reduce connectivity); all
    candidate gains of one vertex are evaluated in a single batched
    pass, ties broken toward the lowest part index.
    """
    graph = state.graph
    edge_weights = graph.edge_weights
    moves = 0
    for _ in range(max_passes):
        improved = False
        for vertex in rng.permutation(graph.num_vertices):
            source = int(state.labels[vertex])
            edges = state.incident_edges(vertex)
            if len(edges) == 0:
                continue
            counts = state.pin_counts[edges]
            candidates = counts.any(axis=0)
            candidates[source] = False
            if not candidates.any():
                continue
            weights = edge_weights[edges]
            leave = int(weights @ (counts[:, source] == 1))
            join = weights @ (counts == 0)
            gains = leave - join
            state.counters.gain_evals += state.k
            viable = candidates & (gains > 0)
            if not viable.any():
                continue
            viable &= state.fits_mask(vertex, caps)
            if not viable.any():
                continue
            target = int(np.argmax(np.where(viable, gains, -1)))
            state.move(vertex, target)
            moves += 1
            improved = True
        if not improved:
            break
    return moves


def fm_refine(
    state: RefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 3,
    move_cap: Optional[int] = None,
    patience: int = 128,
) -> int:
    """Fiduccia–Mattheyses refinement with rollback.

    Unlike :func:`greedy_refine`, FM tentatively applies zero- and
    negative-gain moves (each vertex at most once per pass) and rolls
    back to the best prefix, which lets the cut slide across plateaus —
    essential for chain-like hypergraphs such as causal attention.
    ``patience`` bounds how far a plateau is explored: a pass stops
    once that many consecutive tentative moves fail to produce a new
    best cost (they would all be rolled back unless a later
    improvement showed up).  This is a deliberate deviation from the
    unbounded historic traversal — improvements hiding behind a longer
    plateau are forfeited for a large constant-factor speedup; raise
    ``patience`` (up to ``move_cap``) to trade time for quality.

    Returns the number of net (kept) moves.
    """
    graph = state.graph
    num_vertices = graph.num_vertices
    k = state.k
    if move_cap is None:
        move_cap = min(num_vertices, 4000)
    counter = itertools.count()
    kept_moves = 0
    weight_list = graph.weights.tolist()
    caps_list = caps.tolist()
    dims = range(len(caps_list))

    for _ in range(max_passes):
        heap: list = []
        # vertex_stamp[v] = index of the last move that touched a pin
        # count v's gains depend on; entries carry the stamp at push
        # time, so a pop whose stamp is still current needs no gain
        # recomputation.  version[v*k+t] identifies the newest push of
        # each (vertex, target) candidate: older duplicates are
        # discarded on pop without any gain or feasibility work.
        vertex_stamp = [0] * num_vertices
        version = [0] * (num_vertices * k)
        move_index = 0
        # Python mirrors of the labels and part weights keep the pop
        # loop free of numpy scalar overhead.
        label_list = state.labels.tolist()
        pw_list = state.part_weights.tolist()

        def push_batch(vertices: np.ndarray) -> None:
            gains, adjacent = state.batch_gains(vertices)
            rows, targets = np.nonzero(adjacent)
            if len(rows) == 0:
                return
            entries = zip(
                (-gains[rows, targets]).tolist(),
                vertices[rows].tolist(),
                targets.tolist(),
            )
            for neg_gain, vertex, target in entries:
                key = vertex * k + target
                version[key] = entry_version = version[key] + 1
                heapq.heappush(
                    heap,
                    (
                        neg_gain,
                        next(counter),
                        vertex,
                        target,
                        move_index,
                        entry_version,
                    ),
                )

        boundary = state.boundary_vertices()
        rng.shuffle(boundary)
        push_batch(boundary)

        moved = np.zeros(num_vertices, dtype=bool)
        history = []  # (vertex, source_part)
        current_cost = state.cost()
        best_cost = current_cost
        best_length = 0

        while heap and len(history) < move_cap:
            if len(history) - best_length >= patience:
                break
            neg_gain, _, vertex, target, stamp, entry_version = heapq.heappop(
                heap
            )
            if (
                version[vertex * k + target] != entry_version
                or moved[vertex]
                or target == label_list[vertex]
            ):
                continue
            if vertex_stamp[vertex] <= stamp:
                actual = -neg_gain  # untouched since push: still exact
            else:
                actual = state.gain(vertex, target)
                if actual < -neg_gain:  # stale entry: requeue, real gain
                    key = vertex * k + target
                    version[key] = entry_version = version[key] + 1
                    heapq.heappush(
                        heap,
                        (
                            -actual,
                            next(counter),
                            vertex,
                            target,
                            move_index,
                            entry_version,
                        ),
                    )
                    continue
            part_weight = pw_list[target]
            vertex_weight = weight_list[vertex]
            if any(
                part_weight[d] + vertex_weight[d] > caps_list[d] for d in dims
            ):
                continue
            source = label_list[vertex]
            state.move(vertex, target)
            label_list[vertex] = target
            for d in dims:
                pw_list[source][d] -= vertex_weight[d]
                part_weight[d] += vertex_weight[d]
            moved[vertex] = True
            history.append((vertex, source))
            current_cost -= actual
            if current_cost < best_cost:
                best_cost = current_cost
                best_length = len(history)
            move_index += 1
            # Everything sharing an edge with the moved vertex now sees
            # different pin counts.
            edges = state.incident_edges(vertex)
            all_pins, _ = _concat_slices(
                graph.edge_indptr, graph.edge_pins, edges
            )
            for pin in all_pins.tolist():
                vertex_stamp[pin] = move_index
            # Refresh candidates of neighbours along small edges (large
            # edges contribute little per pin and would flood the heap).
            small = edges[
                (graph.edge_indptr[edges + 1] - graph.edge_indptr[edges]) <= 64
            ]
            if len(small):
                neighbours, _ = _concat_slices(
                    graph.edge_indptr, graph.edge_pins, small
                )
                neighbours = neighbours[~moved[neighbours]]
                if len(neighbours):
                    push_batch(neighbours)

        for vertex, source in reversed(history[best_length:]):
            state.move(vertex, source)
        kept_moves += best_length
        if best_length == 0:
            break
    return kept_moves


def rebalance(
    state: RefinementState,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_moves: Optional[int] = None,
) -> bool:
    """Repair balance violations; returns True when feasible afterwards.

    Vertices are evicted from overloaded parts into the least-loaded
    feasible part, preferring moves with the smallest cost increase.
    Each scan scores one random eviction sample in a single batched
    pass, then drains it in ascending-loss order (re-checking the caps
    before every move) until the overloaded part fits or the sample is
    exhausted; pin-count deltas of a scan are applied in one batched
    update at its end, so a scan costs O(sample + moved degrees) numpy
    work regardless of how many evictions it performs.

    Infeasible instances (integral weights can make the caps plainly
    unsatisfiable) are detected by stagnation: when three consecutive
    scans fail to reduce the total overload, the pass gives up instead
    of thrashing vertices until ``max_moves``.
    """
    graph = state.graph
    k = state.k
    if max_moves is None:
        max_moves = 4 * graph.num_vertices
    part_weights = state.part_weights
    weights = graph.weights
    moves = 0
    best_overload = int(
        np.maximum(part_weights - caps[None, :], 0).sum()
    )
    stalled = 0
    while moves < max_moves:
        overload = part_weights.astype(np.float64) / caps[None, :]
        worst_part = int(np.argmax(overload.max(axis=1)))
        if np.all(part_weights[worst_part] <= caps):
            return True
        over_dim = int(np.argmax(overload[worst_part]))
        members = np.nonzero(state.labels == worst_part)[0]
        movable = members[weights[members, over_dim] > 0]
        if len(movable) == 0:
            return False
        # Prefer evicting small vertices with the least connectivity loss.
        sample = rng.permutation(movable)[: min(len(movable), 64)]

        gains, _ = state.batch_gains(sample)
        loss = (-gains).astype(np.float64)
        fits = (
            part_weights[None, :, :] + weights[sample][:, None, :]
            <= caps[None, None, :]
        ).all(axis=2)
        fits[:, worst_part] = False
        loss[~fits] = np.inf
        flat_loss = loss.ravel()
        order = np.argsort(flat_loss, kind="stable")

        taken = np.zeros(len(sample), dtype=bool)
        scan_moves: list = []  # (vertex, target)
        for flat in order.tolist():
            if moves + len(scan_moves) >= max_moves:
                break
            if not np.isfinite(flat_loss[flat]):
                break
            row, target = divmod(flat, k)
            if taken[row]:
                continue
            vertex = int(sample[row])
            new_weight = part_weights[target] + weights[vertex]
            if not (new_weight <= caps).all():
                continue  # an earlier eviction filled this part up
            taken[row] = True
            scan_moves.append((vertex, target))
            part_weights[target] = new_weight
            part_weights[worst_part] -= weights[vertex]
            state.labels[vertex] = target
            if (part_weights[worst_part] <= caps).all():
                break

        if scan_moves:
            moved = np.fromiter(
                (v for v, _ in scan_moves), dtype=np.int64, count=len(scan_moves)
            )
            targets = np.fromiter(
                (t for _, t in scan_moves), dtype=np.int64, count=len(scan_moves)
            )
            edges, lens = _concat_slices(state._vindptr, state._vedges, moved)
            np.subtract.at(state.pin_counts, (edges, worst_part), 1)
            np.add.at(state.pin_counts, (edges, np.repeat(targets, lens)), 1)
            moves += len(scan_moves)
            state.counters.moves += len(scan_moves)
        else:
            # No target has room for any sampled vertex: move one to the
            # globally least-loaded part anyway so progress continues
            # (the cap is re-checked at the end).
            vertex = int(sample[0])
            target = int(np.argmin(part_weights[:, over_dim]))
            if target == worst_part:
                return False
            state.move(vertex, target)
            moves += 1
        overload_now = int(np.maximum(part_weights - caps[None, :], 0).sum())
        if overload_now < best_overload:
            best_overload = overload_now
            stalled = 0
        else:
            stalled += 1
            if stalled >= 3:
                return False
    return state.is_feasible(caps)
