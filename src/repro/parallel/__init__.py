"""Composing DCP with tensor and pipeline parallelism (paper §6.2).

The paper argues TP and PP are orthogonal to DCP and prescribes the
``TP-CP-DP-PP`` rank order, with DCP occupying the CP and DP ranks.
This subpackage makes the composition concrete:

* :mod:`~repro.parallel.topology` — rank <-> (tp, dcp, pp) mapping and
  communication groups;
* :mod:`~repro.parallel.tp` — head sharding, TP all-reduce pricing, the
  DCP-visible cluster when TP groups act as single ranks;
* :mod:`~repro.parallel.pp` — layer splitting and a 1F1B pipeline
  schedule simulator (per-microbatch costs, as DCP's variable batches
  require);
* :mod:`~repro.parallel.hybrid` — full-iteration estimates for a
  TP x DCP x PP configuration around real execution plans.
"""

from .hybrid import HybridConfig, HybridResult, hybrid_iteration_time
from .pp import (
    PipelineTiming,
    StageCost,
    gpipe_order,
    one_f_one_b_order,
    simulate_1f1b,
    simulate_1f1b_varied,
    simulate_pipeline,
    split_layers,
)
from .topology import RankCoords, RankTopology
from .tp import (
    allreduce_time,
    dcp_view_cluster,
    shard_attention,
    tp_layer_comm_time,
)

__all__ = [
    "RankCoords",
    "RankTopology",
    "shard_attention",
    "dcp_view_cluster",
    "allreduce_time",
    "tp_layer_comm_time",
    "StageCost",
    "PipelineTiming",
    "split_layers",
    "one_f_one_b_order",
    "gpipe_order",
    "simulate_1f1b",
    "simulate_pipeline",
    "simulate_1f1b_varied",
    "HybridConfig",
    "HybridResult",
    "hybrid_iteration_time",
]
