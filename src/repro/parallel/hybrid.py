"""End-to-end hybrid TP x DCP x PP iteration estimate (paper §6.2).

This module composes the pieces the paper says are orthogonal to DCP:

* tensor parallelism on consecutive in-node ranks (head sharding,
  all-reduce cost, plan sharing — :mod:`repro.parallel.tp`);
* DCP over the ranks Megatron would give to CP and DP (plans come from
  any planner following the planner protocol, so baselines compose the
  same way);
* pipeline parallelism over machine groups, priced with the 1F1B
  simulator (:mod:`repro.parallel.pp`).

The result is an iteration-time estimate with the same decomposition
philosophy as :mod:`repro.sim.modelcost`: attention times come from the
timing simulator replaying real plans; context-independent work, TP
all-reduces, activation p2p and gradient sync are analytic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..blocks import AttentionSpec, BatchSpec, generate_blocks
from ..core.config import DCPConfig
from ..core.groups import split_batch_by_workload
from ..core.planner import DCPPlanner
from ..sim.cluster import ClusterSpec
from ..sim.modelcost import ModelSpec
from ..sim.timing import simulate_plan
from .pp import PipelineTiming, StageCost, simulate_1f1b_varied, split_layers
from .topology import RankTopology
from .tp import dcp_view_cluster, shard_attention, tp_layer_comm_time

__all__ = ["HybridConfig", "HybridResult", "hybrid_iteration_time"]


@dataclass(frozen=True)
class HybridConfig:
    """How to run one model on one cluster with TP x DCP x PP."""

    topology: RankTopology
    num_microbatches: int = 1
    dcp_config: DCPConfig = field(default_factory=DCPConfig)

    def __post_init__(self) -> None:
        if self.num_microbatches < 1:
            raise ValueError("need at least one microbatch")


@dataclass
class HybridResult:
    """Iteration estimate of one hybrid-parallel configuration."""

    iteration_time: float
    pipeline: PipelineTiming
    attention_time: float  # summed fw+bw attention across stages/microbatches
    tp_comm_time: float  # summed TP all-reduce time on the critical path
    others_time: float  # context-independent compute, critical device
    grad_sync_time: float
    microbatch_plans: List[object]

    def breakdown(self) -> Dict[str, float]:
        return {
            "attention": self.attention_time,
            "tp_comm": self.tp_comm_time,
            "others": self.others_time,
            "grad_sync": self.grad_sync_time,
            "pipeline_bubble": self.pipeline.bubble_fraction,
            "total": self.iteration_time,
        }


def _stage_cluster(cluster: ClusterSpec, topology: RankTopology) -> ClusterSpec:
    """The cluster one pipeline stage's DCP group runs on.

    PP spans the most distant ranks, so stages occupy contiguous machine
    groups; TP groups inside each machine collapse into single DCP
    ranks.
    """
    if cluster.num_machines % topology.pp != 0:
        raise ValueError(
            f"pp degree {topology.pp} must divide machines "
            f"{cluster.num_machines}"
        )
    per_stage = ClusterSpec(
        num_machines=cluster.num_machines // topology.pp,
        devices_per_machine=cluster.devices_per_machine,
        peak_flops=cluster.peak_flops,
        flops_efficiency=cluster.flops_efficiency,
        intra_bandwidth=cluster.intra_bandwidth,
        intra_latency=cluster.intra_latency,
        inter_bandwidth=cluster.inter_bandwidth,
        inter_latency=cluster.inter_latency,
        kernel_overhead=cluster.kernel_overhead,
        tile_overhead=cluster.tile_overhead,
        hbm_bandwidth=cluster.hbm_bandwidth,
    )
    return dcp_view_cluster(per_stage, topology.tp)


def _attention_spec(model: ModelSpec, tp: int) -> AttentionSpec:
    """Per-TP-shard attention operator of the model."""
    return shard_attention(
        AttentionSpec(
            num_q_heads=model.num_q_heads,
            num_kv_groups=model.num_kv_groups,
            head_dim=model.head_dim,
            dtype_bytes=model.dtype_bytes,
        ),
        tp,
    )


def _grad_sync_time(
    model: ModelSpec, topology: RankTopology, cluster: ClusterSpec
) -> float:
    """Exposed gradient all-reduce across one stage's DCP ranks."""
    ranks = topology.dcp
    if ranks <= 1:
        return 0.0
    exposure = 0.08
    stage_params = model.parameter_count() / topology.pp
    grad_bytes = stage_params * model.dtype_bytes / topology.tp
    ring = 2.0 * grad_bytes * (ranks - 1) / ranks / cluster.inter_bandwidth
    return exposure * ring


def hybrid_iteration_time(
    batch: BatchSpec,
    cluster: ClusterSpec,
    config: HybridConfig,
    model: Optional[ModelSpec] = None,
    planner: Optional[object] = None,
) -> HybridResult:
    """Estimate one training iteration under a hybrid configuration.

    Parameters
    ----------
    batch:
        The global batch; it is LPT-split by attention workload into
        ``config.num_microbatches`` microbatches.
    cluster:
        The physical GPU cluster (per-GPU FLOPs; TP aggregation is
        derived from the topology).
    config:
        Topology and microbatching.
    model:
        Transformer shape; defaults to the paper's 8B GPT.
    planner:
        Any planner following the planner protocol
        (``plan(block_set, cluster)``); defaults to a fresh
        :class:`~repro.core.planner.DCPPlanner`, so baselines can be
        dropped in for comparison.
    """
    model = model or ModelSpec()
    topology = config.topology
    topology.validate_against(cluster)
    stage_cluster = _stage_cluster(cluster, topology)
    attention = _attention_spec(model, topology.tp)
    if planner is None:
        planner = DCPPlanner(stage_cluster, attention, config.dcp_config)

    microbatches = [
        mb
        for mb in split_batch_by_workload(batch, config.num_microbatches)
        if mb is not None
    ]
    if not microbatches:
        raise ValueError("batch produced no microbatches")

    layers_per_stage = split_layers(model.num_layers, topology.pp)
    per_gpu_flops = cluster.effective_flops()

    plans = []
    stage_costs: List[List[StageCost]] = [[] for _ in range(topology.pp)]
    attention_total = 0.0
    tp_total = 0.0
    others_total = 0.0
    for microbatch in microbatches:
        block_set = generate_blocks(
            microbatch, attention=attention,
            block_size=config.dcp_config.block_size,
        )
        plan = planner.plan(block_set, stage_cluster)
        plans.append(plan)
        forward = simulate_plan(plan, stage_cluster, backward=False)
        backward = simulate_plan(plan, stage_cluster, backward=True)

        tokens = np.zeros(stage_cluster.num_devices, dtype=np.int64)
        for device, device_plan in plan.device_plans.items():
            tokens[device] = sum(ts.tokens for ts in device_plan.local_slices)
        max_tokens = float(tokens.max()) if len(tokens) else 0.0

        linear_fw = (
            max_tokens * model.linear_flops_per_token()
            / topology.tp / per_gpu_flops
        )
        head_fw = (
            max_tokens * model.head_flops_per_token()
            / topology.tp / per_gpu_flops
        )
        tp_layer = tp_layer_comm_time(model, int(max_tokens), cluster,
                                      topology.tp)

        for stage, num_layers in enumerate(layers_per_stage):
            fw = num_layers * (
                forward.iteration_time + linear_fw + tp_layer / 4.0 * 2.0
            )
            bw = num_layers * (
                backward.iteration_time + 2.0 * linear_fw
                + tp_layer / 4.0 * 2.0
            )
            if stage == topology.pp - 1:
                fw += head_fw
                bw += 2.0 * head_fw
            stage_costs[stage].append(StageCost(forward=fw, backward=bw))
            attention_total += (
                num_layers
                * (forward.iteration_time + backward.iteration_time)
            )
            tp_total += num_layers * tp_layer
            others_total += num_layers * 3.0 * linear_fw
            if stage == topology.pp - 1:
                others_total += 3.0 * head_fw

    # Activation p2p between stages: the widest device's tokens.
    widest = 0.0
    for plan in plans:
        for device_plan in plan.device_plans.values():
            widest = max(
                widest,
                float(sum(ts.tokens for ts in device_plan.local_slices)),
            )
    p2p_bytes = widest * model.hidden * model.dtype_bytes / topology.tp
    p2p_time = (
        cluster.inter_latency + p2p_bytes / cluster.inter_bandwidth
        if topology.pp > 1
        else 0.0
    )

    pipeline = simulate_1f1b_varied(stage_costs, p2p_time=p2p_time)
    sync = _grad_sync_time(model, topology, cluster)
    return HybridResult(
        iteration_time=pipeline.total + sync,
        pipeline=pipeline,
        attention_time=attention_total,
        tp_comm_time=tp_total,
        others_time=others_total,
        grad_sync_time=sync,
        microbatch_plans=plans,
    )
