"""Tensor-parallel composition with DCP (paper §6.2).

Tensor parallelism is orthogonal to DCP, but it shards the same head
dimension of the attention tensors.  Composing the two means:

* **head sharding** — DCP's attention spec sees ``1/tp`` of the query
  heads and KV groups; the *same execution plan* is shared by all
  members of a TP group (they hold different head shards of identical
  token slices);
* **rank aggregation** — a TP group acts as one DCP rank.  With TP on
  consecutive ranks inside a machine, the DCP-visible cluster has
  ``devices_per_machine / tp`` devices per machine, each aggregating the
  group's compute;
* **added communication** — each transformer layer pays TP all-reduces
  (attention output projection and MLP, forward and backward) priced by
  a ring all-reduce over NVSwitch.
"""

from __future__ import annotations

from dataclasses import replace

from ..blocks import AttentionSpec
from ..sim.cluster import ClusterSpec
from ..sim.modelcost import ModelSpec

__all__ = [
    "shard_attention",
    "dcp_view_cluster",
    "allreduce_time",
    "tp_layer_comm_time",
]


def shard_attention(attention: AttentionSpec, tp: int) -> AttentionSpec:
    """Attention spec seen by one TP shard.

    The paper: "DCP's head dimension size should be divided by the
    tensor parallel degree".  Query heads and KV groups must both divide
    evenly — real deployments with ``tp > num_kv_groups`` replicate KV
    heads, which changes the operator; we reject that instead of
    silently modelling a different computation.
    """
    if tp < 1:
        raise ValueError("tp degree must be at least 1")
    if tp == 1:
        return attention
    if attention.num_q_heads % tp != 0:
        raise ValueError(
            f"query heads {attention.num_q_heads} not divisible by tp {tp}"
        )
    if attention.num_kv_groups % tp != 0:
        raise ValueError(
            f"KV groups {attention.num_kv_groups} not divisible by tp {tp}"
        )
    return replace(
        attention,
        num_q_heads=attention.num_q_heads // tp,
        num_kv_groups=attention.num_kv_groups // tp,
    )


def dcp_view_cluster(cluster: ClusterSpec, tp: int) -> ClusterSpec:
    """The cluster as DCP sees it when TP groups act as single ranks.

    Each TP group of ``tp`` consecutive devices aggregates its members'
    FLOPs.  The NIC is shared per machine either way; NVSwitch
    point-to-point bandwidth between groups is unchanged (any member
    pair can carry a transfer).
    """
    if tp < 1:
        raise ValueError("tp degree must be at least 1")
    if cluster.devices_per_machine % tp != 0:
        raise ValueError("tp degree must divide devices per machine")
    if tp == 1:
        return cluster
    return ClusterSpec(
        num_machines=cluster.num_machines,
        devices_per_machine=cluster.devices_per_machine // tp,
        peak_flops=cluster.peak_flops * tp,
        flops_efficiency=cluster.flops_efficiency,
        intra_bandwidth=cluster.intra_bandwidth,
        intra_latency=cluster.intra_latency,
        inter_bandwidth=cluster.inter_bandwidth,
        inter_latency=cluster.inter_latency,
        kernel_overhead=cluster.kernel_overhead,
        tile_overhead=cluster.tile_overhead,
        hbm_bandwidth=cluster.hbm_bandwidth,
    )


def allreduce_time(nbytes: float, ranks: int, bandwidth: float,
                   latency: float = 0.0) -> float:
    """Ring all-reduce time: ``2 (R-1)/R`` of the buffer over the link."""
    if ranks < 1:
        raise ValueError("need at least one rank")
    if ranks == 1:
        return 0.0
    steps = 2 * (ranks - 1)
    return steps * latency + steps / ranks * nbytes / bandwidth


def tp_layer_comm_time(
    model: ModelSpec,
    tokens: int,
    cluster: ClusterSpec,
    tp: int,
) -> float:
    """TP all-reduce time of one transformer layer, forward + backward.

    Megatron's sequence of a layer has two all-reduces in the forward
    pass (after the attention output projection and after the MLP) and
    two in the backward, each over the ``[tokens, hidden]`` activation.
    All run on NVSwitch (TP groups never straddle machines).
    """
    if tp <= 1:
        return 0.0
    activation_bytes = float(tokens) * model.hidden * model.dtype_bytes
    one = allreduce_time(
        activation_bytes, tp, cluster.intra_bandwidth, cluster.intra_latency
    )
    return 4.0 * one
