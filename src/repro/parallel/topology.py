"""Rank topology for composing DCP with other parallelisms (paper §6.2).

The paper prescribes Megatron-LM's ``TP-CP-DP-PP`` rank-assignment
order: tensor parallelism occupies consecutive ranks (highest
communication volume, so it must stay on NVSwitch), DCP occupies the
ranks traditionally assigned to CP *and* DP (DCP subsumes data
parallelism as one of its configurations), and pipeline parallelism
spans the most distant ranks (least communication).

:class:`RankTopology` maps global ranks to ``(tp, dcp, pp)`` coordinates
and enumerates the communication groups each parallelism operates over.
Because DCP absorbs the CP and DP dimensions, the topology has three
axes rather than Megatron's four; :attr:`RankTopology.dcp` equals the
product of what Megatron would call the CP and DP degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.cluster import ClusterSpec

__all__ = ["RankCoords", "RankTopology"]


@dataclass(frozen=True, order=True)
class RankCoords:
    """Coordinates of one global rank along the parallelism axes."""

    tp: int
    dcp: int
    pp: int


@dataclass(frozen=True)
class RankTopology:
    """A ``TP-DCP-PP`` decomposition of a world of ranks.

    Rank numbering follows the paper's prescription: TP varies fastest
    (consecutive ranks), then DCP, then PP —
    ``rank = tp + TP * (dcp + DCP * pp)``.

    Attributes
    ----------
    tp:
        Tensor-parallel degree (ranks that shard each weight matrix).
    dcp:
        DCP degree: the number of ranks DCP plans over.  This axis
        covers both of Megatron's CP and DP dimensions.
    pp:
        Pipeline-parallel degree (model stages).
    """

    tp: int = 1
    dcp: int = 1
    pp: int = 1

    def __post_init__(self) -> None:
        for name, degree in (("tp", self.tp), ("dcp", self.dcp), ("pp", self.pp)):
            if degree < 1:
                raise ValueError(f"{name} degree must be at least 1")

    @property
    def world_size(self) -> int:
        return self.tp * self.dcp * self.pp

    # -- rank <-> coordinate mapping --------------------------------------

    def coords(self, rank: int) -> RankCoords:
        """Decompose a global rank into ``(tp, dcp, pp)`` coordinates."""
        self._check_rank(rank)
        tp = rank % self.tp
        dcp = (rank // self.tp) % self.dcp
        pp = rank // (self.tp * self.dcp)
        return RankCoords(tp=tp, dcp=dcp, pp=pp)

    def rank_of(self, coords: RankCoords) -> int:
        """Inverse of :meth:`coords`."""
        if not 0 <= coords.tp < self.tp:
            raise ValueError(f"tp coordinate {coords.tp} outside [0, {self.tp})")
        if not 0 <= coords.dcp < self.dcp:
            raise ValueError(f"dcp coordinate {coords.dcp} outside [0, {self.dcp})")
        if not 0 <= coords.pp < self.pp:
            raise ValueError(f"pp coordinate {coords.pp} outside [0, {self.pp})")
        return coords.tp + self.tp * (coords.dcp + self.dcp * coords.pp)

    # -- communication groups ----------------------------------------------

    def tp_group(self, rank: int) -> List[int]:
        """Ranks sharing this rank's weight shards (consecutive ranks)."""
        base = self.coords(rank)
        return [
            self.rank_of(RankCoords(tp=t, dcp=base.dcp, pp=base.pp))
            for t in range(self.tp)
        ]

    def dcp_group(self, rank: int) -> List[int]:
        """Ranks this rank plans DCP configurations with."""
        base = self.coords(rank)
        return [
            self.rank_of(RankCoords(tp=base.tp, dcp=d, pp=base.pp))
            for d in range(self.dcp)
        ]

    def pp_group(self, rank: int) -> List[int]:
        """This rank's pipeline: one rank per stage, same (tp, dcp)."""
        base = self.coords(rank)
        return [
            self.rank_of(RankCoords(tp=base.tp, dcp=base.dcp, pp=p))
            for p in range(self.pp)
        ]

    def all_tp_groups(self) -> List[List[int]]:
        return [
            self.tp_group(self.rank_of(RankCoords(tp=0, dcp=d, pp=p)))
            for p in range(self.pp)
            for d in range(self.dcp)
        ]

    def all_dcp_groups(self) -> List[List[int]]:
        return [
            self.dcp_group(self.rank_of(RankCoords(tp=t, dcp=0, pp=p)))
            for p in range(self.pp)
            for t in range(self.tp)
        ]

    def all_pp_groups(self) -> List[List[int]]:
        return [
            self.pp_group(self.rank_of(RankCoords(tp=t, dcp=d, pp=0)))
            for d in range(self.dcp)
            for t in range(self.tp)
        ]

    def stage_of(self, rank: int) -> int:
        """Pipeline stage index of a rank."""
        return self.coords(rank).pp

    # -- cluster validation --------------------------------------------------

    def validate_against(self, cluster: ClusterSpec) -> None:
        """Check that the topology fits the cluster's structure.

        The world must match the device count, and a TP group must not
        straddle machines (TP communication requires NVSwitch — the
        premise of putting TP on consecutive ranks, §6.2).
        """
        if self.world_size != cluster.num_devices:
            raise ValueError(
                f"topology world {self.world_size} != cluster "
                f"devices {cluster.num_devices}"
            )
        if self.tp > cluster.devices_per_machine:
            raise ValueError(
                f"tp degree {self.tp} exceeds devices per machine "
                f"{cluster.devices_per_machine}"
            )
        if cluster.devices_per_machine % self.tp != 0:
            raise ValueError("tp degree must divide devices per machine")

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of {self.world_size}")

    def describe(self) -> str:
        return f"tp={self.tp} dcp={self.dcp} pp={self.pp}"
