"""Pipeline-parallel composition with DCP (paper §6.2).

Pipeline parallelism splits model layers across stages; each stage
still runs context parallelism internally, so DCP's optimizations apply
within a stage unchanged.  This module prices the composition: layers
are split across stages, per-microbatch stage times come from the DCP
(or baseline) attention timing plus the analytic context-independent
cost, and a **1F1B schedule simulator** turns stage times into an
iteration time with its pipeline bubble.

The simulator is exact for the dependency structure of non-interleaved
1F1B (Megatron's default): forward of microbatch ``m`` on stage ``s``
needs the forward on stage ``s-1``; backward needs the backward on
stage ``s+1``; each stage runs its warmup forwards, then alternates one
forward / one backward, then drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "StageCost",
    "PipelineTiming",
    "split_layers",
    "one_f_one_b_order",
    "gpipe_order",
    "simulate_1f1b",
    "simulate_1f1b_varied",
    "simulate_pipeline",
]


@dataclass(frozen=True)
class StageCost:
    """Per-microbatch compute time of one pipeline stage."""

    forward: float
    backward: float

    def __post_init__(self) -> None:
        if self.forward < 0 or self.backward < 0:
            raise ValueError("stage times must be non-negative")


@dataclass
class PipelineTiming:
    """Result of one pipeline-schedule simulation."""

    total: float
    stage_busy: List[float]
    num_stages: int
    num_microbatches: int
    # Peak microbatch activations simultaneously held per stage (a
    # forward stashes one; its backward releases it).
    peak_activations: List[int] = None

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction across all stages (0 = perfectly packed)."""
        if self.total <= 0:
            return 0.0
        capacity = self.total * self.num_stages
        return 1.0 - sum(self.stage_busy) / capacity

    @property
    def max_peak_activations(self) -> int:
        """Worst per-stage activation residency — the memory axis on
        which GPipe and 1F1B differ."""
        if not self.peak_activations:
            return 0
        return max(self.peak_activations)


def split_layers(num_layers: int, num_stages: int) -> List[int]:
    """Layers per stage, near-even, earlier stages take the remainder.

    >>> split_layers(32, 4)
    [8, 8, 8, 8]
    >>> split_layers(10, 4)
    [3, 3, 2, 2]
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if num_layers < num_stages:
        raise ValueError("need at least one layer per stage")
    base, extra = divmod(num_layers, num_stages)
    return [base + (1 if s < extra else 0) for s in range(num_stages)]


def one_f_one_b_order(
    stage: int, num_stages: int, num_microbatches: int
) -> List[Tuple[str, int]]:
    """Task order of one stage under non-interleaved 1F1B.

    Returns ``[("F", m) | ("B", m), ...]``: ``min(M, S - stage)``
    warmup forwards, then alternating backward/forward in the steady
    state, then the remaining backwards.
    """
    warmup = min(num_microbatches, num_stages - stage)
    order: List[Tuple[str, int]] = [("F", m) for m in range(warmup)]
    next_f, next_b = warmup, 0
    while next_b < num_microbatches:
        order.append(("B", next_b))
        next_b += 1
        if next_f < num_microbatches:
            order.append(("F", next_f))
            next_f += 1
    return order


def gpipe_order(
    stage: int, num_stages: int, num_microbatches: int
) -> List[Tuple[str, int]]:
    """Task order of one stage under GPipe: all forwards, then all
    backwards (backwards drain in reverse microbatch order).

    GPipe's bubble matches 1F1B's, but every stage must hold all ``M``
    forward activations before the first backward frees one — the
    memory cost 1F1B was designed to avoid.
    """
    order: List[Tuple[str, int]] = [
        ("F", m) for m in range(num_microbatches)
    ]
    order.extend(("B", m) for m in reversed(range(num_microbatches)))
    return order


def simulate_1f1b(
    stage_costs: List[StageCost],
    num_microbatches: int,
    p2p_time: float = 0.0,
) -> PipelineTiming:
    """Simulate the 1F1B schedule with uniform microbatches.

    Parameters
    ----------
    stage_costs:
        Per-stage, per-microbatch forward/backward times (stage 0 is
        the first pipeline stage).
    num_microbatches:
        Microbatches per iteration; must be at least 1.
    p2p_time:
        Activation (and activation-gradient) transfer time between
        adjacent stages, paid on every cross-stage dependency.

    For uniform stages with zero ``p2p_time`` the result matches the
    classic closed form ``(M + S - 1) * (f + b)``.
    """
    if num_microbatches < 1:
        raise ValueError("need at least one microbatch")
    costs = [[cost] * num_microbatches for cost in stage_costs]
    return simulate_1f1b_varied(costs, p2p_time)


def simulate_1f1b_varied(
    costs: List[List[StageCost]],
    p2p_time: float = 0.0,
) -> PipelineTiming:
    """Simulate 1F1B with per-(stage, microbatch) costs.

    ``costs[stage][microbatch]`` gives each unit of work its own time —
    the situation DCP creates, where every microbatch carries different
    sequence lengths and masks and thus different attention time.
    """
    return simulate_pipeline(costs, p2p_time=p2p_time, schedule="1f1b")


def simulate_pipeline(
    costs: List[List[StageCost]],
    p2p_time: float = 0.0,
    schedule: str = "1f1b",
) -> PipelineTiming:
    """Simulate a pipeline schedule with per-(stage, microbatch) costs.

    ``schedule`` selects the per-stage task order: ``"1f1b"``
    (Megatron's default) or ``"gpipe"`` (all forwards, then all
    backwards).  Both share the cross-stage dependency structure; they
    differ in bubble placement and activation residency, which the
    result's ``peak_activations`` records.
    """
    if not costs:
        raise ValueError("need at least one stage")
    num_stages = len(costs)
    num_microbatches = len(costs[0])
    if num_microbatches < 1:
        raise ValueError("need at least one microbatch")
    if any(len(row) != num_microbatches for row in costs):
        raise ValueError("all stages must cost the same microbatch count")
    if schedule == "1f1b":
        order_fn = one_f_one_b_order
    elif schedule == "gpipe":
        order_fn = gpipe_order
    else:
        raise ValueError(f"unknown schedule {schedule!r}")

    orders = [
        order_fn(s, num_stages, num_microbatches)
        for s in range(num_stages)
    ]
    finish: Dict[Tuple[str, int, int], float] = {}
    clock = [0.0] * num_stages  # when each stage becomes free
    busy = [0.0] * num_stages
    pointer = [0] * num_stages

    def dependency(kind: str, stage: int, microbatch: int) -> Optional[Tuple]:
        if kind == "F":
            return ("F", stage - 1, microbatch) if stage > 0 else None
        if stage < num_stages - 1:
            return ("B", stage + 1, microbatch)
        # Backward on the last stage depends on its own forward, which
        # per-stage ordering already guarantees; no cross-stage edge.
        return None

    live = [0] * num_stages  # stashed forward activations
    peak = [0] * num_stages
    remaining = sum(len(order) for order in orders)
    while remaining:
        progressed = False
        for stage in range(num_stages):
            while pointer[stage] < len(orders[stage]):
                kind, microbatch = orders[stage][pointer[stage]]
                dep = dependency(kind, stage, microbatch)
                if dep is not None and dep not in finish:
                    break
                ready = clock[stage]
                if dep is not None:
                    ready = max(ready, finish[dep] + p2p_time)
                cost = costs[stage][microbatch]
                duration = cost.forward if kind == "F" else cost.backward
                end = ready + duration
                finish[(kind, stage, microbatch)] = end
                clock[stage] = end
                busy[stage] += duration
                if kind == "F":
                    live[stage] += 1
                    peak[stage] = max(peak[stage], live[stage])
                else:
                    live[stage] -= 1
                pointer[stage] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("pipeline schedule deadlocked")

    return PipelineTiming(
        total=max(clock),
        stage_busy=busy,
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        peak_activations=peak,
    )
