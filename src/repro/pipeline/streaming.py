"""Streaming/online overlap pipeline: plan over an unbounded batch stream.

:class:`StreamingOverlapPipeline` turns the training-shaped
:class:`~repro.pipeline.OverlapPipeline` into the serving-shaped
variant the ROADMAP names: the batch source is an *iterator* with no
upfront length — typically a packer still emitting
(:func:`repro.data.stream_packed_specs`) — and the cluster shape is no
longer an immutable constructor argument but a live feed of device
add/remove events (:class:`~repro.sim.ClusterEventSource`).

Mechanics on top of the base pipeline:

* The bounded ``lookahead + 1`` prefetch window already pulls lazily,
  so an unbounded generator is consumed exactly ``kappa + 1`` batches
  ahead of execution — planning overlaps both execution *and* the
  packer's own emission.
* Plan-cache signatures are extended with the cluster shape the plan
  targets, so a plan for yesterday's cluster can never satisfy today's
  lookup.
* Between iterations the pipeline drains the event source.  On a shape
  change it invalidates every cached entry (and releases every
  in-flight reservation) for a stale shape, then re-dispatches the
  whole prefetch window against the new shape: each re-dispatched job
  counts into ``OverlapStats.replans`` and the yielded plans from then
  on target the new cluster.  Events are observed at iteration
  granularity — the §6.1 pipeline only ever consumes plans between
  iterations, so that is exactly when a shape change can take effect.
* Worker jobs (and inline fallbacks) ship a
  :class:`ClusterPinnedPlanner` so a re-planned job targets the event's
  shape even though the shared planner object keeps its configured
  cluster.  Re-planning therefore requires a planner whose
  ``plan_batch`` accepts a ``cluster`` keyword
  (:class:`~repro.core.planner.DCPPlanner` does); without an event
  source any ``plan_batch`` object works, as before.

With ``events=None`` the streaming pipeline is behavior-identical to
the base class — the determinism tests prove the plans are
byte-identical to the synchronous path either way — which is why the
dataloaders route both lists and generators through it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..core.cache import PlanCache, batch_signature
from ..sim.cluster import ClusterEventSource, ClusterSpec
from .pipeline import OverlapPipeline, _Pending

__all__ = ["StreamingOverlapPipeline", "ClusterPinnedPlanner"]


@dataclass(frozen=True)
class ClusterPinnedPlanner:
    """Planner façade that targets one specific cluster shape.

    Shipped with worker jobs (it pickles, so the process backend works)
    so that plans dispatched after a cluster event target the event's
    shape while the wrapped planner keeps its own configured cluster.
    """

    planner: object
    cluster: ClusterSpec

    def plan_batch(self, batch):
        return self.planner.plan_batch(batch, cluster=self.cluster)


class StreamingOverlapPipeline(OverlapPipeline):
    """Online :class:`OverlapPipeline` over an unbounded batch stream.

    Parameters (beyond the base class)
    ----------------------------------
    events:
        Optional :class:`~repro.sim.ClusterEventSource`.  When given,
        the pipeline polls it between iterations; device add/remove
        events invalidate stale :class:`~repro.core.cache.PlanCache`
        entries and re-dispatch the in-flight prefetch window against
        the new shape (counted in ``OverlapStats.replans``).
    """

    def __init__(
        self,
        batches: Iterable,
        planner,
        *,
        events: Optional[ClusterEventSource] = None,
        **kwargs,
    ) -> None:
        super().__init__(batches, planner, **kwargs)
        self.events = events
        self._cluster: Optional[ClusterSpec] = (
            events.current if events is not None else None
        )
        self._events_seen = events.version if events is not None else 0

    # -- hook specializations ---------------------------------------------

    def _signature(self, batch) -> Tuple:
        base = batch_signature(batch)
        if self.events is None or self._cluster is None:
            # Without an event source the shape cannot change, so keep
            # the base keyspace — a cache warmed through plan_batch or
            # shared with a fixed-stream pipeline keeps hitting.
            return base
        return (self._cluster, base)

    def _pinned(self) -> Optional[ClusterPinnedPlanner]:
        if self.events is None or self._cluster is None:
            return None
        return ClusterPinnedPlanner(self.planner, self._cluster)

    def _plan_inline(self, batch):
        pinned = self._pinned()
        if pinned is not None:
            return pinned.plan_batch(batch)
        return self.planner.plan_batch(batch)

    def _job_planner(self):
        return self._pinned()

    def _poll_events(self) -> None:
        if self.events is None:
            return
        # Observe via the version cursor, not the destructive poll():
        # several pipelines may share one event source, and each must
        # see every shape change.
        version = self.events.version
        if version == self._events_seen:
            return
        self.cluster_events += version - self._events_seen
        self._events_seen = version
        current = self.events.current
        if current == self._cluster:
            return  # net no-op (e.g. an add immediately undone)
        self._cluster = current
        if self.cache is not None:
            self.cache.invalidate(self._is_stale_key)
        for item in self._pending:
            self._redispatch(item)

    # -- re-planning -------------------------------------------------------

    def _is_stale_key(self, key) -> bool:
        """Cache keys carrying any cluster shape but the current one."""
        return (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], ClusterSpec)
            and key[0] != self._cluster
        )

    def _redispatch(self, item: _Pending) -> None:
        """Replace a window entry's job with one targeting the new shape.

        The superseded job is left to finish in the background (workers
        cannot be preempted); its reservation was already released by
        the invalidation above, so nothing stale is ever published.
        """
        self.replans += 1
        fresh = self._submit(item.index, item.batch, redispatch=True)
        item.ticket = fresh.ticket
        item.signature = fresh.signature
        item.cache_hit = fresh.cache_hit
        item.joined = fresh.joined
        item.epoch = fresh.epoch  # post-invalidation: publications valid
        item.replanned = True
