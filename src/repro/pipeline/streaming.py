"""Streaming/online overlap pipeline: plan over an unbounded batch stream.

:class:`StreamingOverlapPipeline` turns the training-shaped
:class:`~repro.pipeline.OverlapPipeline` into the serving-shaped
variant the ROADMAP names: the batch source is an *iterator* with no
upfront length — typically a packer still emitting
(:func:`repro.data.stream_packed_specs`, optionally driven by one of
the bounded-reordering-buffer streaming packers in
:data:`repro.data.STREAM_PACKERS`: sequential, workload-balanced or
length-grouped) — and the cluster shape is no
longer an immutable constructor argument but a live feed of device
add/remove events (:class:`~repro.sim.ClusterEventSource`).

Mechanics on top of the base pipeline:

* The bounded ``lookahead + 1`` prefetch window already pulls lazily,
  so an unbounded generator is consumed exactly ``kappa + 1`` batches
  ahead of execution — planning overlaps both execution *and* the
  packer's own emission.
* Plan-cache signatures are extended with the cluster shape the plan
  targets, so a plan for yesterday's cluster can never satisfy today's
  lookup.
* Between iterations the pipeline drains the event source.  On a shape
  change it invalidates every cached entry (and releases every
  in-flight reservation) for a stale shape and then responds according
  to ``replan_mode`` (below).  Events are observed at iteration
  granularity — the §6.1 pipeline only ever consumes plans between
  iterations, so that is exactly when a shape change can take effect.
* Worker jobs (and inline fallbacks) ship a
  :class:`ClusterPinnedPlanner` so a re-planned job targets the event's
  shape even though the shared planner object keeps its configured
  cluster.  Re-planning therefore requires a planner whose
  ``plan_batch`` accepts a ``cluster`` keyword
  (:class:`~repro.core.planner.DCPPlanner` does); without an event
  source any ``plan_batch`` object works, as before.

Delta re-planning (``replan_mode``)
-----------------------------------
Re-dispatching the *whole* prefetch window on every cluster event — the
original behavior, kept as ``replan_mode="scratch"`` — breaks the §6.1
promise exactly when it matters: a device loss causes ``kappa + 1``
cold plans in a burst.  The default ``"delta"`` mode instead classifies
every window job against the new shape:

* a job whose plan has already settled and is *compatible* with the
  new cluster (places nothing on vanished devices; see
  :func:`~repro.scheduling.plan_compatible`) is **reused**: the plan is
  rebound onto the new shape in O(devices) dictionary work
  (:func:`~repro.scheduling.rebind_plan`), its cache entry survives
  under the new-shape signature, and no planner runs at all
  (``OverlapStats.replan_jobs_reused``);
* an affected job is re-dispatched **warm**: the previous placement
  labels ride along (``plan.meta["placement"]``) and the placement
  stage repairs + refines them instead of partitioning from scratch
  (``OverlapStats.partial_replans``);
* a job still in flight (no settled plan to classify or warm-start
  from) is re-dispatched cold, as before.

``replan_mode="window"`` re-dispatches every window job through the
same warm primitive — the brute-force baseline that the delta property
tests compare against: delta and window runs must yield
fingerprint-identical plans, proving the reuse shortcut sound.
``"scratch"`` re-plans everything cold (pre-delta semantics; also the
cost baseline the delta-vs-whole-window benchmark measures against).

With ``events=None`` the streaming pipeline is behavior-identical to
the base class — the determinism tests prove the plans are
byte-identical to the synchronous path either way — which is why the
dataloaders route both lists and generators through it unconditionally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from ..core.cache import batch_signature
from ..scheduling import plan_compatible, rebind_plan
from ..sim.cluster import ClusterEventSource, ClusterSpec
from .backends import CompletedTicket
from .pipeline import OverlapPipeline, _Pending

__all__ = ["StreamingOverlapPipeline", "ClusterPinnedPlanner", "REPLAN_MODES"]

REPLAN_MODES = ("delta", "window", "scratch")


@dataclass(frozen=True)
class ClusterPinnedPlanner:
    """Planner façade that targets one specific cluster shape.

    Shipped with worker jobs (it pickles, so the process backend works)
    so that plans dispatched after a cluster event target the event's
    shape while the wrapped planner keeps its own configured cluster.
    ``warm`` optionally carries the previous placement's
    ``(slice_device, comp_device)`` labels: re-planned jobs start from
    the placement they had before the event instead of partitioning
    from scratch.
    """

    planner: object
    cluster: ClusterSpec
    warm: Optional[Tuple] = field(default=None, compare=False)

    def plan_batch(self, batch):
        """Plan ``batch`` against the pinned cluster (warm if labels ride)."""
        if self.warm is not None:
            return self.planner.plan_batch(
                batch, cluster=self.cluster, warm=self.warm
            )
        return self.planner.plan_batch(batch, cluster=self.cluster)


class StreamingOverlapPipeline(OverlapPipeline):
    """Online :class:`OverlapPipeline` over an unbounded batch stream.

    Parameters (beyond the base class)
    ----------------------------------
    events:
        Optional :class:`~repro.sim.ClusterEventSource`.  When given,
        the pipeline polls it between iterations; device add/remove
        events invalidate stale :class:`~repro.core.cache.PlanCache`
        entries and re-plan the in-flight prefetch window against the
        new shape.
    replan_mode:
        How the prefetch window responds to a shape change:
        ``"delta"`` (default) re-dispatches only the jobs the event
        actually affects, reusing compatible plans and warm-starting
        the rest from their previous placement; ``"window"``
        re-dispatches every window job through the same warm primitive
        (the brute-force baseline delta must match fingerprint for
        fingerprint); ``"scratch"`` re-plans the whole window cold (the
        pre-delta behavior).
    """

    def __init__(
        self,
        batches: Iterable,
        planner,
        *,
        events: Optional[ClusterEventSource] = None,
        replan_mode: str = "delta",
        **kwargs,
    ) -> None:
        """See the class docstring for ``events`` and ``replan_mode``."""
        if replan_mode not in REPLAN_MODES:
            raise ValueError(
                f"unknown replan_mode {replan_mode!r}; use one of "
                f"{REPLAN_MODES}"
            )
        super().__init__(batches, planner, **kwargs)
        self.events = events
        self.replan_mode = replan_mode
        self._cluster: Optional[ClusterSpec] = (
            events.current if events is not None else None
        )
        self._events_seen = events.version if events is not None else 0

    # -- hook specializations ---------------------------------------------

    def _signature(self, batch) -> Tuple:
        base = batch_signature(batch)
        if self.events is None or self._cluster is None:
            # Without an event source the shape cannot change, so keep
            # the base keyspace — a cache warmed through plan_batch or
            # shared with a fixed-stream pipeline keeps hitting.
            return base
        return (self._cluster, base)

    def _pinned(self, warm=None) -> Optional[ClusterPinnedPlanner]:
        if self.events is None or self._cluster is None:
            return None
        return ClusterPinnedPlanner(self.planner, self._cluster, warm=warm)

    def _plan_inline(self, batch):
        pinned = self._pinned()
        if pinned is not None:
            return pinned.plan_batch(batch)
        return self.planner.plan_batch(batch)

    def _job_planner(self):
        return self._pinned()

    def _poll_events(self) -> None:
        if self.events is None:
            return
        # Observe via the version cursor, not the destructive poll():
        # several pipelines may share one event source, and each must
        # see every shape change.
        version = self.events.version
        if version == self._events_seen:
            return
        self.cluster_events += version - self._events_seen
        self._events_seen = version
        current = self.events.current
        if current == self._cluster:
            return  # net no-op (e.g. an add immediately undone)
        self._cluster = current
        if self.cache is not None:
            remap = (
                self._remap_cache_entry
                if self.replan_mode == "delta"
                else None
            )
            self.cache.invalidate(self._is_stale_key, remap=remap)
        for item in self._pending:
            plan = (
                None
                if self.replan_mode == "scratch"
                else self._settled_plan(item)
            )
            if (
                self.replan_mode == "delta"
                and plan is not None
                and plan_compatible(plan, current)
            ):
                self._reuse(item, plan)
            else:
                self._redispatch(item, warm=self._warm_labels(plan))

    # -- re-planning -------------------------------------------------------

    def _is_stale_key(self, key) -> bool:
        """Cache keys carrying any cluster shape but the current one."""
        return (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], ClusterSpec)
            and key[0] != self._cluster
        )

    def _remap_cache_entry(self, key, plan):
        """Rescue a stale-shape cache entry whose plan survives the event.

        Recurring batch signatures are the cache's whole value; delta
        re-planning extends the same reasoning to invalidation — an
        entry compatible with the new shape is rebound and re-keyed
        instead of dropped, so post-event repeats still hit.
        """
        if not self._is_stale_key(key):
            return None
        if not plan_compatible(plan, self._cluster):
            return None
        return (self._cluster, key[1]), rebind_plan(plan, self._cluster)

    def _settled_plan(self, item: _Pending):
        """The item's plan if its job already finished, else ``None``.

        Classification never blocks: an unfinished (or failed) job has
        nothing to classify or warm-start from and is re-dispatched
        cold, exactly as the whole-window mode would.
        """
        ticket = item.ticket
        if ticket is None or not ticket.ready():
            return None
        try:
            plan, _start, _end = ticket.result(timeout=0)
        except BaseException:
            return None
        return plan

    def _warm_labels(self, plan) -> Optional[Tuple]:
        """Previous placement labels to warm-start a re-plan from.

        Labels are device ids, and their meaning depends on the
        device -> machine map: after a ``devices_per_machine`` change
        every device is remapped (``ClusterSpec.affected_devices``
        names them all), so the old placement is not a valid start —
        adopting it verbatim would pin a layout optimized for the
        wrong topology.  Those re-plans go cold instead.
        """
        if plan is None:
            return None
        if (
            plan.cluster.devices_per_machine
            != self._cluster.devices_per_machine
        ):
            return None
        return plan.meta.get("placement")

    def _reuse(self, item: _Pending, plan) -> None:
        """Keep a window job's plan across the event: rebind, no planner.

        The rebound plan is handed back through a
        :class:`~repro.pipeline.backends.CompletedTicket` (zero-width
        planning interval — no planner ran) and published under the
        new-shape signature via the normal resolve path, so concurrent
        pipelines sharing the cache see it immediately.
        """
        self.replan_jobs_reused += 1
        rebound = rebind_plan(plan, self._cluster)
        item.ticket = CompletedTicket(rebound, time.perf_counter())
        item.joined = False
        item.cache_hit = False
        item.replanned = False
        item.reused = True
        if self.cache is not None:
            item.signature = self._signature(item.batch)
            item.epoch = self.cache.epoch

    def _redispatch(self, item: _Pending, warm=None) -> None:
        """Replace a window entry's job with one targeting the new shape.

        The superseded job is left to finish in the background (workers
        cannot be preempted); its reservation was already released by
        the invalidation above, so nothing stale is ever published.
        ``warm`` carries the previous placement labels when the old
        plan had settled — the re-plan then repairs that placement for
        the new shape instead of partitioning from scratch.
        """
        self.replans += 1
        if self.replan_mode == "delta":
            self.partial_replans += 1
        fresh = self._submit(
            item.index,
            item.batch,
            redispatch=True,
            planner=self._pinned(warm=warm),
        )
        item.ticket = fresh.ticket
        item.signature = fresh.signature
        item.cache_hit = fresh.cache_hit
        item.joined = fresh.joined
        item.epoch = fresh.epoch  # post-invalidation: publications valid
        item.replanned = True
        item.reused = False
