"""Background planning pipeline that hides planner latency (§6.1).

:class:`OverlapPipeline` is the measured counterpart of
:func:`repro.core.pool.simulate_planning_overlap`: instead of replaying
an analytic model, it actually plans batch ``i + kappa`` on background
planner workers while batch ``i`` executes, and records what fraction
of planning time was genuinely hidden behind execution.

Mechanics
---------
A bounded prefetch window of ``lookahead + 1`` planning jobs runs ahead
of the consumer.  Each iteration the pipeline

1. notes when the consumer comes back for the next batch (everything
   since the previous yield was *execution* time),
2. blocks on the head job — any wait here is *exposed* planning (a
   stall, exactly what §6.1's design must avoid),
3. refills the window and yields ``(local_data, plan)``.

Before any job is dispatched to a worker, the (thread-safe)
:class:`~repro.core.cache.PlanCache` is consulted through a
*reservation* (:meth:`~repro.core.cache.PlanCache.reserve`): a hit
bypasses the worker entirely, identical in-flight signatures — even
across pipelines and threads — join one job, and exactly one owner
dispatches.  With ``lookahead=0`` no workers run and every plan is
computed synchronously at request time — the unoverlapped baseline.

Planner workers are not trusted to succeed: a job whose worker raises
(or, with ``plan_timeout`` set, hangs past the timeout) is respawned on
the backend up to ``max_plan_retries`` times and then planned inline as
a last resort, so a flaky worker costs a stall, never a deadlocked
prefetch window.  Retries are counted in ``OverlapStats.plan_retries``.

Every yielded plan carries ``plan.meta["overlap"]`` (the iteration's
measured record plus running stats) and :meth:`OverlapPipeline.stats`
returns the aggregate :class:`OverlapStats`; the per-iteration timeline
is exposed as a :class:`~repro.core.pool.PlanningTimeline`, the same
shape the analytic model produces, so measurement and model plot on one
axis.

Cached plans are shared objects: when the same plan is yielded for
several iterations (cache hits, deduplicated signatures), its
``meta["overlap"]`` reflects the *latest* of those iterations — the
same latest-wins convention ``meta["plan_cache"]`` already follows.
The authoritative per-iteration history is
:attr:`OverlapPipeline.records` / :meth:`OverlapPipeline.stats`, which
record every iteration regardless of plan identity.

The streaming/online variant (unbounded batch iterators, mid-stream
cluster-shape changes) lives in
:class:`~repro.pipeline.streaming.StreamingOverlapPipeline`, which
specializes the ``_signature`` / ``_plan_inline`` / ``_job_planner`` /
``_poll_events`` hooks this class defines.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import CancelledError
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.cache import PlanCache, batch_signature
from ..core.dataloader import LocalData, _local_data
from ..core.pool import PlanningTimeline
from ..obs.metrics import MetricsRegistry
from ..obs.trace import add_span as _add_span
from ..obs.trace import tracing_enabled as _tracing
from .backends import CompletedTicket, PlanTicket, SharedPlanTicket, make_backend

__all__ = ["OverlapPipeline", "OverlapStats", "IterationRecord",
           "plan_fingerprint", "plan_diff", "device_payload"]

#: Waits shorter than this (seconds) are queue bookkeeping, not stalls.
#: Overridable for environments whose bookkeeping is artificially slow
#: (the dep-free coverage gate traces every pipeline line, inflating
#: queue waits past the default threshold).
STALL_EPS = float(os.environ.get("REPRO_STALL_EPS", "1e-4"))


@dataclass
class IterationRecord:
    """Measured timeline of one pipeline iteration (seconds from start)."""

    index: int
    submit: float
    plan_start: float
    plan_end: float
    exec_start: float
    exec_end: float
    stall: float
    queue_depth: int
    cache_hit: bool
    #: Re-dispatched after a mid-stream cluster-shape change.
    replanned: bool = False
    #: Survived a cluster-shape change unchanged: the delta re-planner
    #: proved the plan compatible and rebound it instead of re-planning.
    reused: bool = False

    @property
    def plan_s(self) -> float:
        return self.plan_end - self.plan_start

    @property
    def exec_s(self) -> float:
        return self.exec_end - self.exec_start

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "plan_s": self.plan_s,
            "exec_s": self.exec_s,
            "stall_s": self.stall,
            "queue_depth": self.queue_depth,
            "cache_hit": self.cache_hit,
            "replanned": self.replanned,
            "reused": self.reused,
        }


@dataclass
class OverlapStats:
    """Aggregate measurement of one pipeline run.

    ``hidden_fraction`` is the §6.1 headline: the share of total
    planner-worker time that execution absorbed (1.0 = planning fully
    hidden).  The ``steady_*`` variants skip the first iteration, which
    always waits for its own plan from a cold pipeline — the paper's
    claim is about steady state.

    ``replans`` counts prefetch-window jobs re-dispatched because a
    cluster-shape event invalidated their target shape (streaming
    mode); ``cluster_events`` counts the events themselves and
    ``plan_retries`` the worker respawns after failures or hangs.

    Delta re-planning splits the event response further:
    ``partial_replans`` counts the re-dispatches the delta re-planner
    issued (jobs whose plans the shape change actually touched),
    ``replan_jobs_reused`` the window jobs whose plans survived the
    event and were rebound without any planner work, and
    ``replan_plan_s`` the planner seconds spent on re-dispatched jobs —
    the quantity the delta-vs-whole-window benchmark compares.
    """

    iterations: int = 0
    total_plan_s: float = 0.0
    total_exec_s: float = 0.0
    total_stall_s: float = 0.0
    stall_count: int = 0
    steady_plan_s: float = 0.0
    steady_stall_s: float = 0.0
    steady_stall_count: int = 0
    queue_depth_mean: float = 0.0
    queue_depth_max: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    replans: int = 0
    cluster_events: int = 0
    plan_retries: int = 0
    partial_replans: int = 0
    replan_jobs_reused: int = 0
    replan_plan_s: float = 0.0
    plan_cache: Optional[dict] = None
    records: List[IterationRecord] = field(default_factory=list)

    @property
    def hidden_fraction(self) -> float:
        if self.total_plan_s <= 0.0:
            return 1.0
        return max(1.0 - self.total_stall_s / self.total_plan_s, 0.0)

    @property
    def steady_hidden_fraction(self) -> float:
        if self.steady_plan_s <= 0.0:
            return 1.0
        return max(1.0 - self.steady_stall_s / self.steady_plan_s, 0.0)

    def timeline(self) -> PlanningTimeline:
        """The measured run in the analytic model's own terms."""
        return PlanningTimeline(
            exec_start=[r.exec_start for r in self.records],
            exec_end=[r.exec_end for r in self.records],
            plan_start=[r.plan_start for r in self.records],
            plan_end=[r.plan_end for r in self.records],
            stalls=[r.stall for r in self.records],
        )

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "total_plan_s": self.total_plan_s,
            "total_exec_s": self.total_exec_s,
            "total_stall_s": self.total_stall_s,
            "stall_count": self.stall_count,
            "hidden_fraction": self.hidden_fraction,
            "steady_hidden_fraction": self.steady_hidden_fraction,
            "steady_stall_count": self.steady_stall_count,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
            "cache_hits": self.cache_hits,
            "wall_s": self.wall_s,
            "replans": self.replans,
            "cluster_events": self.cluster_events,
            "plan_retries": self.plan_retries,
            "partial_replans": self.partial_replans,
            "replan_jobs_reused": self.replan_jobs_reused,
            "replan_plan_s": self.replan_plan_s,
            "plan_cache": self.plan_cache,
        }


@dataclass
class _Pending:
    """One batch in the prefetch window."""

    index: int
    batch: object
    ticket: Optional[PlanTicket]  # None => plan synchronously on demand
    submit: float
    signature: Optional[Tuple]
    cache_hit: bool
    #: Joined onto an identical in-flight job (no worker dispatched);
    #: its planning time is attributed to the originating iteration.
    joined: bool = False
    #: Re-dispatched after a cluster-shape event.
    replanned: bool = False
    #: Plan survived a cluster-shape event via a delta-re-plan rebind.
    reused: bool = False
    #: Cache epoch captured before reserving; late publications (the
    #: retry path) are rejected if an invalidation bumped it since.
    epoch: int = 0


class OverlapPipeline:
    """Iterate ``(local_data, plan)`` with background look-ahead planning.

    Parameters
    ----------
    batches:
        Iterable of :class:`~repro.blocks.BatchSpec` — materialized or
        a generator; the prefetch window pulls lazily, so an unbounded
        stream is fine.
    planner:
        Any object with ``plan_batch(batch) -> ExecutionPlan``.
    lookahead:
        The paper's ``kappa``: planning jobs kept in flight beyond the
        executing batch.  0 disables the workers and plans
        synchronously; values larger than the batch count simply leave
        the window partially filled.
    max_workers:
        Planner parallelism of the ``"thread"``/``"process"`` backends.
    backend:
        ``"thread"`` (default), ``"process"``, or a backend object such
        as :class:`~repro.pipeline.backends.KVPlannerBackend`.
    cache:
        Optional :class:`~repro.core.cache.PlanCache` consulted before
        any worker is dispatched; planned misses are inserted back.
        The cache's planner is ignored — supply the same planner here.
    plan_timeout:
        Seconds to wait on a single planning attempt before treating
        the worker as hung and respawning the job (``None``: wait
        forever, the historical behavior).
    max_plan_retries:
        Worker respawns per job before the pipeline gives up on the
        backend and plans the batch inline.
    max_concurrent_plans:
        Thread-backend throttle; see
        :class:`~repro.pipeline.backends.ThreadPlannerBackend`.
    records_limit:
        Keep only the most recent N :class:`IterationRecord` objects
        (``None``: keep all, the fixed-stream default).  Aggregate
        statistics stay exact either way — they are maintained
        incrementally — so an unbounded serving stream can run forever
        in O(1) memory while :meth:`stats` still reports true totals;
        only the per-record history (and hence ``stats().timeline()``)
        is truncated to the retained tail.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the pipeline's plan-fetch latency histograms
        (``pipeline.plan_fetch_hit_s`` for cache hits,
        ``pipeline.plan_fetch_dispatch_s`` for planner dispatches) and
        iteration counters; a fresh per-pipeline registry by default.
    """

    def __init__(
        self,
        batches: Iterable,
        planner,
        *,
        lookahead: int = 2,
        max_workers: int = 2,
        backend="thread",
        cache: Optional[PlanCache] = None,
        plan_timeout: Optional[float] = None,
        max_plan_retries: int = 2,
        max_concurrent_plans: Optional[int] = None,
        records_limit: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if max_plan_retries < 0:
            raise ValueError("max_plan_retries must be non-negative")
        if records_limit is not None and records_limit < 1:
            raise ValueError("records_limit must be positive")
        self.planner = planner
        self.lookahead = lookahead
        self.cache = cache
        self.plan_timeout = plan_timeout
        self.max_plan_retries = max_plan_retries
        self._batches = iter(batches)
        self._backend = (
            make_backend(
                backend,
                planner,
                max_workers=max_workers,
                max_concurrent_plans=max_concurrent_plans,
            )
            if lookahead > 0
            else None
        )
        self._pending: Deque[_Pending] = deque()
        self._exhausted = False
        self._started = False
        self._closed = False
        self._origin: Optional[float] = None
        self.records_limit = records_limit
        self.records: Deque[IterationRecord] = deque(maxlen=records_limit)
        self.replans = 0
        self.cluster_events = 0
        self.plan_retries = 0
        self.partial_replans = 0
        self.replan_jobs_reused = 0
        self._replan_plan_s = 0.0
        self._wall_s = 0.0
        # Running aggregates, updated as records are created/finalized;
        # exact regardless of how much record history is retained.
        self._iterations = 0
        self._plan_s = 0.0
        self._exec_s = 0.0
        self._stall_s = 0.0
        self._stall_count = 0
        self._steady_plan_s = 0.0
        self._steady_stall_s = 0.0
        self._steady_stall_count = 0
        self._cache_hits = 0
        self._depth_sum = 0
        self._depth_max = 0
        #: Plan-fetch latency — how long the consumer blocked for the
        #: next plan — split by serving path: cache hit vs planner
        #: dispatch (joined/waited dispatches count as dispatch).  The
        #: planner-as-a-service p50/p99 baseline (``repro.obs``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._fetch_hit_s = self.metrics.histogram("pipeline.plan_fetch_hit_s")
        self._fetch_dispatch_s = self.metrics.histogram(
            "pipeline.plan_fetch_dispatch_s"
        )
        self._iter_count = self.metrics.counter("pipeline.iterations")
        self._stall_counter = self.metrics.counter("pipeline.stalls")

    @property
    def clock_origin(self) -> Optional[float]:
        """``time.perf_counter()`` value of the run's t=0 (None before
        iteration starts).  Lets :func:`repro.sim.overlap_chrome_trace`
        output be merged with tracer spans from the same run on one
        epoch (:func:`repro.sim.merge_chrome_traces`)."""
        return self._origin

    # -- hooks (specialized by the streaming pipeline) ---------------------

    def _signature(self, batch) -> Tuple:
        """Cache identity of ``batch`` for this pipeline's plans."""
        return batch_signature(batch)

    def _plan_inline(self, batch):
        """Synchronous planning in the consumer thread."""
        return self.planner.plan_batch(batch)

    def _job_planner(self):
        """Planner override shipped with worker jobs (None: backend's)."""
        return None

    def _poll_events(self) -> None:
        """Apply externally observed state changes (streaming mode)."""

    # -- submission --------------------------------------------------------

    def _submit(
        self,
        index: int,
        batch,
        redispatch: bool = False,
        planner=None,
    ) -> _Pending:
        """Reserve/dispatch planning of ``batch`` for window slot ``index``.

        ``planner`` overrides :meth:`_job_planner` for this dispatch
        only — the delta re-planner ships re-dispatched jobs a
        cluster-pinned planner carrying the previous placement as a
        warm start.
        """
        now = self._now()
        signature = None
        epoch = 0
        if self.cache is not None:
            signature = self._signature(batch)
            # The epoch comes from the same lock acquisition as the
            # claim, so this cohort's publish/abandon always matches.
            status, payload, epoch = self.cache.reserve(signature)
            if status == "hit":
                # Tickets carry absolute perf_counter stamps (workers
                # can't see the pipeline origin); _resolve rebases them.
                return _Pending(
                    index, batch, CompletedTicket(payload, time.perf_counter()),
                    now, signature, True, epoch=epoch,
                )
            if status == "wait":
                return _Pending(
                    index, batch, SharedPlanTicket(payload), now, signature,
                    False, joined=True, epoch=epoch,
                )
            # "own": this pipeline dispatches; the reservation is
            # published (or released) by the ticket's done callback.
        if self._backend is None:
            return _Pending(index, batch, None, now, signature, False,
                            epoch=epoch)
        # A re-dispatch must *replace* any job the backend memoized for
        # this index (the KV pool keys jobs by iteration), or the stale
        # in-flight plan would be served right back.
        dispatch = (
            self._backend.resubmit if redispatch else self._backend.submit
        )
        job_planner = planner if planner is not None else self._job_planner()
        ticket = dispatch(index, batch, planner=job_planner)
        if signature is not None:
            self._bridge_reservation(ticket, signature, epoch)
        return _Pending(index, batch, ticket, now, signature, False,
                        epoch=epoch)

    def _bridge_reservation(
        self, ticket: PlanTicket, signature: Tuple, epoch: int
    ) -> None:
        """Publish the owned cache reservation when the job settles.

        Both directions are epoch-guarded: a worker that settles after
        an invalidation (and a possible re-claim of the signature by a
        newer cohort) must neither publish its stale plan nor shoot
        down the new claimant's reservation.
        """
        cache = self.cache

        def _done(future) -> None:
            try:
                plan, _start, _end = future.result()
            except BaseException as exc:
                cache.abandon(signature, exc, epoch=epoch)
            else:
                cache.publish(signature, plan, epoch)

        ticket.add_done_callback(_done)

    def _refill(self) -> None:
        window = self.lookahead + 1
        while not self._exhausted and len(self._pending) < window:
            try:
                batch = next(self._batches)
            except StopIteration:
                self._exhausted = True
                return
            self._pending.append(self._submit(self._next_index, batch))
            self._next_index += 1

    def _resolve(self, item: _Pending) -> Tuple:
        """Block for the item's plan; returns (plan, start, end) rel. s."""
        if item.ticket is None:  # synchronous path (lookahead == 0)
            start_abs = time.perf_counter()
            try:
                plan = self._plan_inline(item.batch)
            except BaseException as exc:
                if item.signature is not None:
                    self.cache.abandon(item.signature, exc, epoch=item.epoch)
                raise
            end_abs = time.perf_counter()
            if item.signature is not None:
                self.cache.publish(item.signature, plan, item.epoch)
            return plan, start_abs - self._origin, end_abs - self._origin
        attempts = 0
        while True:
            try:
                plan, start, end = item.ticket.result(
                    timeout=self.plan_timeout
                )
                break
            except (Exception, CancelledError):
                # The worker raised, was cancelled (CancelledError is a
                # BaseException: e.g. another pipeline closing shared
                # infrastructure) — or, with plan_timeout set, hung.
                attempts += 1
                self.plan_retries += 1
                if attempts <= self.max_plan_retries and self._backend is not None:
                    item.ticket = self._backend.resubmit(
                        item.index, item.batch, planner=self._job_planner()
                    )
                    item.joined = False
                    continue
                # Last resort: plan inline.  A failure here is genuine
                # and propagates — the planner itself is broken.  The
                # interval below is real blocking work even if the item
                # had joined someone else's (now failed) job.
                item.joined = False
                start = time.perf_counter()
                plan = self._plan_inline(item.batch)
                end = time.perf_counter()
                break
        start -= self._origin
        end -= self._origin
        if item.joined:
            # The worker interval already belongs to the iteration
            # that dispatched the job; this one got the plan free.
            start = end
        if item.signature is not None and not item.cache_hit:
            # Normally a no-op (the reservation's done callback already
            # published); needed after retries, whose fresh tickets are
            # not bridged to the original reservation.  Epoch-guarded:
            # waiters blocked on a reservation whose original worker is
            # still hung wake up now, but a plan that crossed an
            # invalidation must not resurrect behind it.
            self.cache.publish(item.signature, plan, item.epoch)
        return plan, start, end

    # -- iteration ---------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def __iter__(self) -> Iterator[Tuple[Dict[int, LocalData], object]]:
        if self._started:
            return iter(())  # single-use, like any dataloader iterator
        self._started = True
        return self._run()

    def _account_record(self, record: IterationRecord) -> None:
        """Fold a fresh record into the running aggregates (exec time
        is folded separately, once its interval is finalized)."""
        self._plan_s += record.plan_s
        self._stall_s += record.stall
        if record.replanned:
            self._replan_plan_s += record.plan_s
        stalled = record.stall > STALL_EPS
        self._stall_count += int(stalled)
        if self._iterations > 0:  # not the first iteration ever
            self._steady_plan_s += record.plan_s
            self._steady_stall_s += record.stall
            self._steady_stall_count += int(stalled)
        self._iterations += 1
        self._cache_hits += int(record.cache_hit)
        self._depth_sum += record.queue_depth
        self._depth_max = max(self._depth_max, record.queue_depth)

    def _finalize_exec(self, record: IterationRecord, end: float) -> None:
        record.exec_end = end
        self._exec_s += record.exec_s
        if _tracing() and self._origin is not None:
            _add_span(
                f"exec {record.index}",
                "pipeline",
                self._origin + record.exec_start,
                self._origin + end,
            )

    def _run(self) -> Iterator[Tuple[Dict[int, LocalData], object]]:
        self._origin = time.perf_counter()
        self._next_index = 0
        previous: Optional[IterationRecord] = None
        try:
            self._refill()
            while self._pending:
                self._poll_events()
                item = self._pending.popleft()
                requested = self._now()
                if previous is not None:
                    self._finalize_exec(previous, requested)
                depth = (1 if item.ticket is not None and item.ticket.ready()
                         else 0)
                depth += sum(
                    1
                    for p in self._pending
                    if p.ticket is not None and p.ticket.ready()
                )
                plan, plan_start, plan_end = self._resolve(item)
                ready = self._now()
                fetch_s = max(ready - requested, 0.0)
                if item.cache_hit:
                    self._fetch_hit_s.observe(fetch_s)
                else:
                    self._fetch_dispatch_s.observe(fetch_s)
                self._iter_count.inc()
                if fetch_s > STALL_EPS:
                    self._stall_counter.inc()
                if _tracing():
                    _add_span(
                        f"fetch {item.index}",
                        "pipeline",
                        self._origin + requested,
                        self._origin + ready,
                        args={"cache_hit": item.cache_hit},
                    )
                record = IterationRecord(
                    index=item.index,
                    submit=item.submit,
                    plan_start=plan_start,
                    plan_end=plan_end,
                    exec_start=ready,
                    exec_end=ready,
                    stall=max(ready - requested, 0.0),
                    queue_depth=depth,
                    cache_hit=item.cache_hit,
                    replanned=item.replanned,
                    reused=item.reused,
                )
                self._account_record(record)
                self.records.append(record)
                previous = record
                self._refill()
                plan.meta["overlap"] = self._meta(record)
                yield _local_data(plan), plan
        finally:
            end = self._now()
            if previous is not None and previous.exec_end <= previous.exec_start:
                self._finalize_exec(previous, end)
            self._wall_s = end
            self.close()

    # -- reporting ---------------------------------------------------------

    def _meta(self, record: IterationRecord) -> dict:
        summary = self._summary().as_dict()
        summary.pop("plan_cache", None)
        return {**record.as_dict(), "running": summary}

    def _summary(self) -> OverlapStats:
        """Aggregate stats from the O(1) running counters, no records.

        This is what every iteration's ``meta["overlap"]["running"]``
        uses, so per-iteration bookkeeping stays constant-time no
        matter how long the (possibly unbounded) stream has run.
        """
        stats = OverlapStats()
        stats.iterations = self._iterations
        stats.total_plan_s = self._plan_s
        stats.total_exec_s = self._exec_s
        stats.total_stall_s = self._stall_s
        stats.stall_count = self._stall_count
        stats.steady_plan_s = self._steady_plan_s
        stats.steady_stall_s = self._steady_stall_s
        stats.steady_stall_count = self._steady_stall_count
        stats.cache_hits = self._cache_hits
        if self._iterations:
            stats.queue_depth_mean = self._depth_sum / self._iterations
            stats.queue_depth_max = self._depth_max
        stats.wall_s = self._wall_s or (
            self._now() if self._origin is not None else 0.0
        )
        stats.replans = self.replans
        stats.cluster_events = self.cluster_events
        stats.plan_retries = self.plan_retries
        stats.partial_replans = self.partial_replans
        stats.replan_jobs_reused = self.replan_jobs_reused
        stats.replan_plan_s = self._replan_plan_s
        return stats

    def stats(self) -> OverlapStats:
        """Aggregate :class:`OverlapStats` over the iterations so far.

        The returned object is a snapshot: records are copied, so a
        stats object captured mid-run keeps its values when later
        iterations update the live records (the trailing record's
        ``exec_end`` is finalized by the *next* request).  Totals come
        from incrementally maintained counters and are exact even when
        ``records_limit`` bounds the retained history; ``records`` (and
        the derived :meth:`OverlapStats.timeline`) cover the retained
        tail.
        """
        stats = self._summary()
        stats.records = [replace(record) for record in self.records]
        if self.cache is not None:
            stats.plan_cache = self.cache.stats()
        return stats

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.cache is not None:
            # Synchronous-path window items own reservations with no
            # backend ticket bridged to them; if the consumer stopped
            # early they would otherwise stay in flight forever and
            # deadlock other pipelines waiting on the shared cache.
            for item in self._pending:
                if (item.ticket is None and item.signature is not None
                        and not item.cache_hit):
                    self.cache.abandon(item.signature, epoch=item.epoch)
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "OverlapPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def device_payload(device: int, device_plan) -> bytes:
    """Canonical byte serialization of one device's executable stream.

    Everything the executor consumes for this device — instructions,
    buffer sizes, slot maps, local slices — encoded in the columnar
    wire format (:mod:`repro.core.planwire`), independently of the
    other devices and of object sharing *within* the plan: the bytes
    depend only on field values, so a plan decoded from the wire
    re-encodes to the identical payload.  The unit of identity for
    :func:`plan_fingerprint` and :func:`plan_diff` alike, and exactly
    what the KV store holds per device in partial-plan mode.
    """
    from ..core.planwire import encode_device_payload

    return encode_device_payload(device, device_plan)


def plan_fingerprint(plan) -> bytes:
    """Byte identity of a plan's executable content.

    Pickles everything the executor consumes — per-device instruction
    streams, buffer sizes, slot maps and local slices — and nothing
    incidental (``plan.meta`` holds wall-clock stats that differ run to
    run).  Two plans with equal fingerprints execute identically; the
    determinism tests use this to prove the pipeline yields exactly the
    synchronous planner's plans, and the delta re-planning tests to
    prove a delta re-plan equals a whole-window re-plan.
    """
    import pickle

    payload = [
        device_payload(device, dp)
        for device, dp in sorted(plan.device_plans.items())
    ]
    return pickle.dumps(payload, protocol=4)


def plan_diff(old_plan, new_plan) -> Tuple[int, ...]:
    """Devices whose executable content differs between two plans.

    Compares per-device :func:`device_payload` bytes; a device present
    in only one plan counts as changed.  An empty result means the
    plans are :func:`plan_fingerprint`-equal.  This is the *observer's*
    view of delta re-planning — tests and benchmarks use it to assert
    which devices an event re-plan actually touched; the enforcement on
    the wire is independent (the KV store's
    :meth:`~repro.core.kvstore.KVStore.put_if_changed` byte-compares
    each republished slice against what it already holds), so the two
    agree by construction on serialized content.
    """
    devices = sorted(set(old_plan.device_plans) | set(new_plan.device_plans))
    changed = []
    for device in devices:
        old = old_plan.device_plans.get(device)
        new = new_plan.device_plans.get(device)
        if old is None or new is None:
            changed.append(device)
        elif device_payload(device, old) != device_payload(device, new):
            changed.append(device)
    return tuple(changed)
