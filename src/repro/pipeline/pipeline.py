"""Background planning pipeline that hides planner latency (§6.1).

:class:`OverlapPipeline` is the measured counterpart of
:func:`repro.core.pool.simulate_planning_overlap`: instead of replaying
an analytic model, it actually plans batch ``i + kappa`` on background
planner workers while batch ``i`` executes, and records what fraction
of planning time was genuinely hidden behind execution.

Mechanics
---------
A bounded prefetch window of ``lookahead + 1`` planning jobs runs ahead
of the consumer.  Each iteration the pipeline

1. notes when the consumer comes back for the next batch (everything
   since the previous yield was *execution* time),
2. blocks on the head job — any wait here is *exposed* planning (a
   stall, exactly what §6.1's design must avoid),
3. refills the window and yields ``(local_data, plan)``.

Before any job is dispatched to a worker, the (thread-safe)
:class:`~repro.core.cache.PlanCache` is consulted: a hit bypasses the
worker entirely, and identical in-flight signatures are de-duplicated
onto one job.  With ``lookahead=0`` no workers run and every plan is
computed synchronously at request time — the unoverlapped baseline.

Every yielded plan carries ``plan.meta["overlap"]`` (the iteration's
measured record plus running stats) and :meth:`OverlapPipeline.stats`
returns the aggregate :class:`OverlapStats`; the per-iteration timeline
is exposed as a :class:`~repro.core.pool.PlanningTimeline`, the same
shape the analytic model produces, so measurement and model plot on one
axis.

Cached plans are shared objects: when the same plan is yielded for
several iterations (cache hits, deduplicated signatures), its
``meta["overlap"]`` reflects the *latest* of those iterations — the
same latest-wins convention ``meta["plan_cache"]`` already follows.
The authoritative per-iteration history is
:attr:`OverlapPipeline.records` / :meth:`OverlapPipeline.stats`, which
record every iteration regardless of plan identity.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.cache import PlanCache, batch_signature
from ..core.dataloader import LocalData, _local_data
from ..core.pool import PlanningTimeline
from .backends import CompletedTicket, PlanTicket, make_backend

__all__ = ["OverlapPipeline", "OverlapStats", "IterationRecord",
           "plan_fingerprint"]

#: Waits shorter than this (seconds) are queue bookkeeping, not stalls.
STALL_EPS = 1e-4


@dataclass
class IterationRecord:
    """Measured timeline of one pipeline iteration (seconds from start)."""

    index: int
    submit: float
    plan_start: float
    plan_end: float
    exec_start: float
    exec_end: float
    stall: float
    queue_depth: int
    cache_hit: bool

    @property
    def plan_s(self) -> float:
        return self.plan_end - self.plan_start

    @property
    def exec_s(self) -> float:
        return self.exec_end - self.exec_start

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "plan_s": self.plan_s,
            "exec_s": self.exec_s,
            "stall_s": self.stall,
            "queue_depth": self.queue_depth,
            "cache_hit": self.cache_hit,
        }


@dataclass
class OverlapStats:
    """Aggregate measurement of one pipeline run.

    ``hidden_fraction`` is the §6.1 headline: the share of total
    planner-worker time that execution absorbed (1.0 = planning fully
    hidden).  The ``steady_*`` variants skip the first iteration, which
    always waits for its own plan from a cold pipeline — the paper's
    claim is about steady state.
    """

    iterations: int = 0
    total_plan_s: float = 0.0
    total_exec_s: float = 0.0
    total_stall_s: float = 0.0
    stall_count: int = 0
    steady_plan_s: float = 0.0
    steady_stall_s: float = 0.0
    steady_stall_count: int = 0
    queue_depth_mean: float = 0.0
    queue_depth_max: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    plan_cache: Optional[dict] = None
    records: List[IterationRecord] = field(default_factory=list)

    @property
    def hidden_fraction(self) -> float:
        if self.total_plan_s <= 0.0:
            return 1.0
        return max(1.0 - self.total_stall_s / self.total_plan_s, 0.0)

    @property
    def steady_hidden_fraction(self) -> float:
        if self.steady_plan_s <= 0.0:
            return 1.0
        return max(1.0 - self.steady_stall_s / self.steady_plan_s, 0.0)

    def timeline(self) -> PlanningTimeline:
        """The measured run in the analytic model's own terms."""
        return PlanningTimeline(
            exec_start=[r.exec_start for r in self.records],
            exec_end=[r.exec_end for r in self.records],
            plan_start=[r.plan_start for r in self.records],
            plan_end=[r.plan_end for r in self.records],
            stalls=[r.stall for r in self.records],
        )

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "total_plan_s": self.total_plan_s,
            "total_exec_s": self.total_exec_s,
            "total_stall_s": self.total_stall_s,
            "stall_count": self.stall_count,
            "hidden_fraction": self.hidden_fraction,
            "steady_hidden_fraction": self.steady_hidden_fraction,
            "steady_stall_count": self.steady_stall_count,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
            "cache_hits": self.cache_hits,
            "wall_s": self.wall_s,
            "plan_cache": self.plan_cache,
        }


@dataclass
class _Pending:
    """One batch in the prefetch window."""

    index: int
    batch: object
    ticket: Optional[PlanTicket]  # None => plan synchronously on demand
    submit: float
    signature: Optional[Tuple]
    cache_hit: bool
    #: Joined onto an identical in-flight job (no worker dispatched);
    #: its planning time is attributed to the originating iteration.
    joined: bool = False


class OverlapPipeline:
    """Iterate ``(local_data, plan)`` with background look-ahead planning.

    Parameters
    ----------
    batches:
        Iterable of :class:`~repro.blocks.BatchSpec`.
    planner:
        Any object with ``plan_batch(batch) -> ExecutionPlan``.
    lookahead:
        The paper's ``kappa``: planning jobs kept in flight beyond the
        executing batch.  0 disables the workers and plans
        synchronously; values larger than the batch count simply leave
        the window partially filled.
    max_workers:
        Planner parallelism of the ``"thread"``/``"process"`` backends.
    backend:
        ``"thread"`` (default), ``"process"``, or a backend object such
        as :class:`~repro.pipeline.backends.KVPlannerBackend`.
    cache:
        Optional :class:`~repro.core.cache.PlanCache` consulted before
        any worker is dispatched; planned misses are inserted back.
        The cache's planner is ignored — supply the same planner here.
    """

    def __init__(
        self,
        batches: Iterable,
        planner,
        *,
        lookahead: int = 2,
        max_workers: int = 2,
        backend="thread",
        cache: Optional[PlanCache] = None,
    ) -> None:
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.planner = planner
        self.lookahead = lookahead
        self.cache = cache
        self._batches = iter(batches)
        self._backend = (
            make_backend(backend, planner, max_workers=max_workers)
            if lookahead > 0
            else None
        )
        self._pending: Deque[_Pending] = deque()
        self._inflight: Dict[Tuple, PlanTicket] = {}
        self._exhausted = False
        self._started = False
        self._closed = False
        self._origin: Optional[float] = None
        self.records: List[IterationRecord] = []
        self._wall_s = 0.0

    # -- submission --------------------------------------------------------

    def _submit(self, index: int, batch) -> _Pending:
        now = self._now()
        signature = None
        if self.cache is not None:
            signature = batch_signature(batch)
            cached = self.cache.get(signature)
            if cached is not None:
                # Tickets carry absolute perf_counter stamps (workers
                # can't see the pipeline origin); _resolve rebases them.
                return _Pending(
                    index, batch, CompletedTicket(cached, time.perf_counter()),
                    now, signature, True,
                )
            ticket = self._inflight.get(signature)
            if ticket is not None:
                return _Pending(
                    index, batch, ticket, now, signature, False, joined=True
                )
        if self._backend is None:
            return _Pending(index, batch, None, now, signature, False)
        ticket = self._backend.submit(index, batch)
        if signature is not None:
            self._inflight[signature] = ticket
        return _Pending(index, batch, ticket, now, signature, False)

    def _refill(self) -> None:
        window = self.lookahead + 1
        while not self._exhausted and len(self._pending) < window:
            try:
                batch = next(self._batches)
            except StopIteration:
                self._exhausted = True
                return
            self._pending.append(self._submit(self._next_index, batch))
            self._next_index += 1

    def _resolve(self, item: _Pending) -> Tuple:
        """Block for the item's plan; returns (plan, start, end) rel. s."""
        if item.ticket is None:  # synchronous path (lookahead == 0)
            start = self._now()
            plan = self.planner.plan_batch(item.batch)
            end = self._now()
        else:
            plan, start, end = item.ticket.result()
            start -= self._origin
            end -= self._origin
            if item.joined:
                # The worker interval already belongs to the iteration
                # that dispatched the job; this one got the plan free.
                start = end
        if item.signature is not None and not item.cache_hit:
            self.cache.put(item.signature, plan)
            self._inflight.pop(item.signature, None)
        return plan, start, end

    # -- iteration ---------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def __iter__(self) -> Iterator[Tuple[Dict[int, LocalData], object]]:
        if self._started:
            return iter(())  # single-use, like any dataloader iterator
        self._started = True
        return self._run()

    def _run(self) -> Iterator[Tuple[Dict[int, LocalData], object]]:
        self._origin = time.perf_counter()
        self._next_index = 0
        previous: Optional[IterationRecord] = None
        try:
            self._refill()
            while self._pending:
                item = self._pending.popleft()
                requested = self._now()
                if previous is not None:
                    previous.exec_end = requested
                depth = (1 if item.ticket is not None and item.ticket.ready()
                         else 0)
                depth += sum(
                    1
                    for p in self._pending
                    if p.ticket is not None and p.ticket.ready()
                )
                plan, plan_start, plan_end = self._resolve(item)
                ready = self._now()
                record = IterationRecord(
                    index=item.index,
                    submit=item.submit,
                    plan_start=plan_start,
                    plan_end=plan_end,
                    exec_start=ready,
                    exec_end=ready,
                    stall=max(ready - requested, 0.0),
                    queue_depth=depth,
                    cache_hit=item.cache_hit,
                )
                self.records.append(record)
                previous = record
                self._refill()
                plan.meta["overlap"] = self._meta(record)
                yield _local_data(plan), plan
        finally:
            end = self._now()
            if previous is not None and previous.exec_end <= previous.exec_start:
                previous.exec_end = end
            self._wall_s = end
            self.close()

    # -- reporting ---------------------------------------------------------

    def _meta(self, record: IterationRecord) -> dict:
        summary = self.stats().as_dict()
        summary.pop("plan_cache", None)
        return {**record.as_dict(), "running": summary}

    def stats(self) -> OverlapStats:
        """Aggregate :class:`OverlapStats` over the iterations so far.

        The returned object is a snapshot: records are copied, so a
        stats object captured mid-run keeps its values when later
        iterations update the live records (the trailing record's
        ``exec_end`` is finalized by the *next* request).
        """
        records = [replace(record) for record in self.records]
        stats = OverlapStats(records=records)
        stats.iterations = len(records)
        depths = []
        for record in records:
            stats.total_plan_s += record.plan_s
            stats.total_exec_s += record.exec_s
            stats.total_stall_s += record.stall
            stalled = record.stall > STALL_EPS
            stats.stall_count += int(stalled)
            if record is not records[0]:
                stats.steady_plan_s += record.plan_s
                stats.steady_stall_s += record.stall
                stats.steady_stall_count += int(stalled)
            stats.cache_hits += int(record.cache_hit)
            depths.append(record.queue_depth)
        if depths:
            stats.queue_depth_mean = sum(depths) / len(depths)
            stats.queue_depth_max = max(depths)
        stats.wall_s = self._wall_s or (
            self._now() if self._origin is not None else 0.0
        )
        if self.cache is not None:
            stats.plan_cache = self.cache.stats()
        return stats

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "OverlapPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def plan_fingerprint(plan) -> bytes:
    """Byte identity of a plan's executable content.

    Pickles everything the executor consumes — per-device instruction
    streams, buffer sizes, slot maps and local slices — and nothing
    incidental (``plan.meta`` holds wall-clock stats that differ run to
    run).  Two plans with equal fingerprints execute identically; the
    determinism tests use this to prove the pipeline yields exactly the
    synchronous planner's plans.
    """
    import pickle

    payload = [
        (
            device,
            dp.instructions,
            sorted(dp.buffer_sizes.items()),
            dp.local_slices,
            sorted(dp.o_slots.items()),
            sorted(dp.q_slots.items()),
            sorted(dp.kv_slots.items()),
            sorted(dp.acc_slots.items()),
            sorted(dp.do_slots.items()),
            sorted(dp.dq_slots.items()),
            sorted(dp.dkv_slots.items()),
        )
        for device, dp in sorted(plan.device_plans.items())
    ]
    return pickle.dumps(payload, protocol=4)
