"""Drive an :class:`OverlapPipeline` through real or modelled execution.

The pipeline measures execution as "time the consumer spends between
yields"; this module supplies the consumers:

* :class:`PipelineRunner` — executes every plan on
  :class:`~repro.runtime.SimExecutor` (the numerically exact simulated
  cluster), so the per-iteration timeline records *measured* execution
  wall time against *measured* planning wall time — the §6.1 figure as
  an experiment rather than a simulation.
* :func:`cost_model_executor` — an execute callback that prices the
  plan with :func:`~repro.sim.e2e_iteration_time` and occupies exactly
  the (scaled) simulated iteration time.  This is how the overlap
  benchmark plays an 8B-GPT training loop in seconds instead of hours:
  the planner threads race against genuine wall time either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.pool import PlanningTimeline
from .pipeline import OverlapPipeline, OverlapStats

__all__ = ["OverlapReport", "PipelineRunner", "cost_model_executor"]


@dataclass
class OverlapReport:
    """Everything one driven pipeline run measured."""

    stats: OverlapStats
    timeline: PlanningTimeline
    executions: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"stats": self.stats.as_dict(), "executions": self.executions}


class PipelineRunner:
    """Run every planned batch on the simulated cluster.

    Parameters
    ----------
    pipeline:
        The :class:`OverlapPipeline` to drain.
    execute:
        ``execute(local_data, plan) -> dict`` callback doing the
        iteration's work; defaults to a full
        :class:`~repro.runtime.SimExecutor` pass (load random inputs,
        interpret every instruction, gather outputs).
    seed:
        Input seed for the default executor.
    on_iteration:
        Optional ``on_iteration(index, info)`` callback invoked after
        each executed iteration — the hook through which streaming
        scenarios inject mid-run state (e.g. firing a
        :class:`~repro.sim.ClusterEventSource` device-removal at a
        chosen iteration, which the pipeline observes before its next
        yield).
    """

    def __init__(
        self,
        pipeline: OverlapPipeline,
        execute: Optional[Callable] = None,
        seed: int = 0,
        on_iteration: Optional[Callable[[int, dict], None]] = None,
    ) -> None:
        self.pipeline = pipeline
        self.execute = execute or self._sim_execute
        self.seed = seed
        self.on_iteration = on_iteration

    def _sim_execute(self, local_data, plan) -> dict:
        from ..runtime import BatchInputs, SimExecutor

        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=self.seed)
        executor.load_inputs(inputs)
        elapsed = executor.run()
        outputs = executor.gather_outputs()
        return {
            "executor_wall_s": elapsed,
            "num_outputs": len(outputs),
            "tokens": sum(data.tokens for data in local_data.values()),
        }

    def run(self, max_iterations: Optional[int] = None) -> OverlapReport:
        executions: List[dict] = []
        for local_data, plan in self.pipeline:
            info = self.execute(local_data, plan)
            executions.append(info or {})
            if self.on_iteration is not None:
                self.on_iteration(len(executions) - 1, executions[-1])
            if max_iterations is not None and len(executions) >= max_iterations:
                break
        stats = self.pipeline.stats()
        return OverlapReport(
            stats=stats, timeline=stats.timeline(), executions=executions
        )


def cost_model_executor(
    time_scale: float = 1.0,
    model=None,
) -> Callable:
    """Execute callback that occupies the modelled iteration time.

    Prices each plan with :func:`~repro.sim.e2e_iteration_time` (itself
    real planner-free CPU work) and sleeps out the remainder of
    ``iteration_time * time_scale``, so background planning races
    against a faithful stand-in for model execution.
    """
    if time_scale < 0:
        raise ValueError("time_scale must be non-negative")

    def execute(local_data, plan) -> dict:
        from ..sim import e2e_iteration_time

        start = time.perf_counter()
        result = e2e_iteration_time(plan, model=model)
        budget = result.iteration_time * time_scale
        remaining = budget - (time.perf_counter() - start)
        if remaining > 0:
            time.sleep(remaining)
        return {
            "simulated_iteration_s": result.iteration_time,
            "executed_wall_s": time.perf_counter() - start,
            "time_scale": time_scale,
        }

    return execute
