"""Shared-memory plan ring: the zero-copy half of plan transport.

Planner workers encode plans into the columnar wire format
(:mod:`repro.core.planwire`) and deposit the bytes into a ring of
POSIX shared-memory slots; the parent maps the slot and decodes the
plan straight out of shared memory — the only per-byte copy on the
whole path is the worker's single write into the slot.

Protocol
--------
Two segments: a control segment of per-slot headers and a data segment
of fixed-size slots.  Each header is three little-endian ``u64`` words
``[state, seq, length]`` with states ``FREE -> RESERVED -> READY ->
FREE``:

* The **parent** owns allocation: :meth:`reserve` claims a ``FREE``
  slot (``RESERVED``) *before* dispatching the job and ships the slot
  index with it, so writers never race for slots and no cross-process
  lock exists anywhere in the protocol.
* The **worker** owns its reserved slot until the job's result is
  consumed: :meth:`write` bumps ``seq`` to odd (write in progress),
  copies the payload, stores the length, bumps ``seq`` to even and
  flips the state to ``READY`` — a seqlock-style header, so a reader
  can verify it observed a quiescent slot.
* The parent maps the payload with :meth:`read` (a ``memoryview``, no
  copy), decodes, releases the view, and :meth:`free`\\ s the slot.

Fallbacks are the caller's job and transparent by construction: when
:meth:`~PlanRing.create` raises :class:`ShmUnavailable` (no
``/dev/shm``, no ``multiprocessing.shared_memory``), when the ring is
momentarily full (:meth:`reserve` returns ``None``), or when a payload
outgrows its slot (:meth:`write` returns ``False``), the encoded plan
simply travels over the process-pool result pipe instead — same bytes,
one extra copy.
"""

from __future__ import annotations

import logging
import secrets
import struct
import threading
import weakref
from typing import Optional, Tuple

from ..obs.metrics import Counter
from ..obs.trace import span as _span

__all__ = [
    "ShmUnavailable",
    "PlanRing",
    "DEFAULT_SLOT_BYTES",
    "leaked_maps",
    "reclaim_leaked",
]

_log = logging.getLogger(__name__)

#: Process-wide count of shm segments whose mapping could not be
#: released because a stray exported ``memoryview`` was still alive.
#: Module-level (not per-ring): the leak outlives the ring object that
#: caused it, and diagnosing "why is /dev/shm filling up" needs one
#: number per process, not one per long-dead ring.
_LEAKED_MAPS = Counter("shm.leaked_maps")

#: The leaked segments themselves, kept so the mapping can be retried:
#: a ``BufferError`` at close time only means some exported view was
#: *still alive at that moment* — once the view is garbage-collected,
#: a later ``close()`` succeeds and the map is reclaimed.  Guarded by
#: its own lock (leaks can come from any ring on any thread).
_LEAKED_SEGMENTS: list = []
_LEAK_LOCK = threading.Lock()


def leaked_maps() -> int:
    """Shm mappings leaked by ``BufferError`` on close (this process)."""
    return _LEAKED_MAPS.value


def _leak(segment, unlinked: bool) -> None:
    _LEAKED_MAPS.inc()
    with _LEAK_LOCK:
        _LEAKED_SEGMENTS.append(segment)
    _log.warning(
        "plan ring segment %s leaked its mapping (exported buffer still "
        "alive at close%s)",
        getattr(segment, "name", "<unknown>"),
        "; segment unlinked regardless" if unlinked else
        "; /dev/shm segment may persist",
    )


def reclaim_leaked() -> int:
    """Retry closing previously leaked mappings; return how many freed.

    Runs automatically on the next ring operation after a leak (see
    :meth:`PlanRing.reserve`), so ``shm.leaked_maps`` goes back *down*
    once the stray views that caused the ``BufferError`` have been
    released — the counter reports maps still leaked, not a high-water
    mark.  Segments whose views are still alive stay queued for the
    next attempt.
    """
    with _LEAK_LOCK:
        pending = list(_LEAKED_SEGMENTS)
        _LEAKED_SEGMENTS.clear()
        reclaimed = 0
        for segment in pending:
            try:
                segment.close()
            except BufferError:  # view still alive; keep for next pass
                _LEAKED_SEGMENTS.append(segment)
                continue
            reclaimed += 1
    if reclaimed:
        _LEAKED_MAPS.inc(-reclaimed)
        _log.info("reclaimed %d leaked plan ring mapping(s)", reclaimed)
    return reclaimed

_FREE = 0
_RESERVED = 1
_READY = 2

_HEADER = struct.Struct("<QQQ")

#: Default slot capacity.  The Fig. 18 sweep point's plan encodes to a
#: few MB; 32 MB per slot keeps even large sweeps on the zero-copy path
#: while a full default ring stays well under /dev/shm allowances
#: (pages are allocated lazily, so unused capacity costs nothing).
DEFAULT_SLOT_BYTES = 32 * 1024 * 1024


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be used on this host; fall back to pipes."""


class _untracked:
    """Suppress resource-tracker registration while attaching.

    Before Python 3.13 (``SharedMemory(track=False)``) every attach
    registers the segment with a resource tracker; a pool worker's
    tracker would then unlink the parent-owned segment when the worker
    exits (or, sharing the parent's tracker under ``fork``, corrupt the
    parent's registration).  Only the creating process may track the
    ring, so attachments register nothing.
    """

    def __enter__(self) -> None:
        from multiprocessing import resource_tracker

        self._module = resource_tracker
        self._register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None

    def __exit__(self, *exc) -> None:
        self._module.register = self._register


class PlanRing:
    """A ring of shared-memory plan slots (see module docstring)."""

    def __init__(self, control, data, slots: int, slot_bytes: int,
                 owner: bool) -> None:
        self._control = control
        self._data = data
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._owner = owner
        self._lock = threading.Lock()  # parent-side reserve/free
        self._next = 0
        if owner:
            self._finalizer = weakref.finalize(
                self, _destroy, control, data
            )
        else:
            self._finalizer = None

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, slots: int = 8,
               slot_bytes: int = DEFAULT_SLOT_BYTES) -> "PlanRing":
        """Allocate a fresh ring; raises :class:`ShmUnavailable`."""
        if slots < 1 or slot_bytes < 1:
            raise ValueError("need at least one slot of at least one byte")
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover - always present
            raise ShmUnavailable(str(exc)) from exc
        token = secrets.token_hex(4)
        control = data = None
        try:
            control = shared_memory.SharedMemory(
                name=f"planring-{token}-ctl", create=True,
                size=slots * _HEADER.size,
            )
            data = shared_memory.SharedMemory(
                name=f"planring-{token}-dat", create=True,
                size=slots * slot_bytes,
            )
        except OSError as exc:
            for segment in (control, data):
                if segment is not None:
                    segment.close()
                    segment.unlink()
            raise ShmUnavailable(str(exc)) from exc
        control.buf[:] = bytes(len(control.buf))
        return cls(control, data, slots, slot_bytes, owner=True)

    def spec(self) -> Tuple[str, str, int, int]:
        """What a worker needs to :meth:`attach`: names and geometry."""
        return (self._control.name, self._data.name, self.slots,
                self.slot_bytes)

    @classmethod
    def attach(cls, spec: Tuple[str, str, int, int]) -> "PlanRing":
        """Map an existing ring from its :meth:`spec` (worker side)."""
        from multiprocessing import shared_memory

        control_name, data_name, slots, slot_bytes = spec
        with _untracked():
            control = shared_memory.SharedMemory(name=control_name)
            data = shared_memory.SharedMemory(name=data_name)
        return cls(control, data, slots, slot_bytes, owner=False)

    # -- header access --------------------------------------------------

    def _header(self, slot: int) -> Tuple[int, int, int]:
        return _HEADER.unpack_from(self._control.buf, slot * _HEADER.size)

    def _set_header(self, slot: int, state: int, seq: int,
                    length: int) -> None:
        _HEADER.pack_into(self._control.buf, slot * _HEADER.size,
                          state, seq, length)

    # -- parent side ----------------------------------------------------

    def reserve(self) -> Optional[int]:
        """Claim a free slot for one job; ``None`` when the ring is full."""
        reclaim_leaked()
        with self._lock:
            for probe in range(self.slots):
                slot = (self._next + probe) % self.slots
                state, seq, _length = self._header(slot)
                if state == _FREE:
                    self._set_header(slot, _RESERVED, seq, 0)
                    self._next = (slot + 1) % self.slots
                    return slot
        return None

    def read(self, slot: int) -> memoryview:
        """Zero-copy view of a ready slot's payload.

        The caller must ``release()`` the view (and everything derived
        from it) before :meth:`free`-ing the slot or closing the ring.
        """
        with _span("ring.read", "transport", slot=slot):
            state, seq, length = self._header(slot)
            if state != _READY or seq % 2 != 0:
                raise RuntimeError(
                    f"slot {slot} not ready (state={state}, seq={seq})"
                )
            offset = slot * self.slot_bytes
            view = memoryview(self._data.buf)[offset:offset + length]
            if self._header(slot)[1] != seq:  # seqlock re-check
                view.release()
                raise RuntimeError(f"slot {slot} changed during read")
            return view

    def free(self, slot: int) -> None:
        """Return a slot to the ring (reserved or ready, read or not)."""
        with self._lock:
            state, seq, _length = self._header(slot)
            if state != _FREE:
                self._set_header(slot, _FREE, seq, 0)

    def free_slots(self) -> int:
        with self._lock:
            return sum(
                1 for slot in range(self.slots)
                if self._header(slot)[0] == _FREE
            )

    # -- worker side ----------------------------------------------------

    def write(self, slot: int, payload) -> bool:
        """Deposit ``payload`` into a reserved slot.

        Returns ``False`` (slot untouched, caller falls back to the
        pipe) when the payload does not fit.
        """
        with _span("ring.write", "transport", slot=slot):
            payload = memoryview(payload)
            length = payload.nbytes
            if length > self.slot_bytes:
                return False
            state, seq, _ = self._header(slot)
            if state != _RESERVED:
                raise RuntimeError(
                    f"write to slot {slot} in state {state} (not reserved)"
                )
            self._set_header(slot, _RESERVED, seq + 1, 0)  # odd: writing
            offset = slot * self.slot_bytes
            self._data.buf[offset:offset + length] = payload
            self._set_header(slot, _READY, seq + 2, length)
            return True

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Unmap; the owner also unlinks the segments."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            return
        for segment in (self._control, self._data):
            try:
                segment.close()
            except BufferError:  # a stray exported view; leak the map
                _leak(segment, unlinked=False)

    def __enter__(self) -> "PlanRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy(control, data) -> None:
    for segment in (control, data):
        try:
            segment.close()
        except BufferError:  # a stray exported view; unlink regardless
            _leak(segment, unlinked=True)
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
