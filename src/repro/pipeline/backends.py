"""Planner-worker backends for the overlap pipeline.

A backend turns ``(iteration index, batch)`` into a :class:`PlanTicket`
whose :meth:`~PlanTicket.result` eventually yields ``(plan, start,
end)`` — the plan plus the wall-clock interval the planner actually
spent on it (``time.perf_counter`` stamps; on Linux the monotonic clock
is shared across processes, so process-worker stamps compose with the
parent's).  Three implementations:

* :class:`ThreadPlannerBackend` — planner workers on a thread pool in
  this process.  The planner releases the GIL inside numpy, so real
  overlap with (simulated) execution is achieved in practice; this is
  the default.
* :class:`ProcessPlannerBackend` — planner workers in separate
  processes, the paper's "parallelized with more than 10 CPU cores"
  configuration.  The planner and batches must pickle (they do), and
  every plan pays one pickle round-trip back to the parent.
* :class:`KVPlannerBackend` — planning through a
  :class:`~repro.core.pool.PlannerPool`: jobs fan out round-robin
  across (simulated) machines and plans return via the KV store,
  the paper's full §6.1 distribution path.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Tuple

__all__ = [
    "PlanTicket",
    "ThreadPlannerBackend",
    "ProcessPlannerBackend",
    "KVPlannerBackend",
    "make_backend",
]


class PlanTicket:
    """Handle for one in-flight planning job."""

    def __init__(self, future: Future) -> None:
        self._future = future

    def ready(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> Tuple:
        """Block for ``(plan, plan_start, plan_end)``."""
        return self._future.result(timeout=timeout)


class CompletedTicket(PlanTicket):
    """An already-available plan (cache hit): zero planning time."""

    def __init__(self, plan, stamp: float) -> None:
        self._payload = (plan, stamp, stamp)

    def ready(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> Tuple:
        return self._payload


def _timed_plan(planner, batch) -> Tuple:
    start = time.perf_counter()
    plan = planner.plan_batch(batch)
    return plan, start, time.perf_counter()


class ThreadPlannerBackend:
    """Planner workers on an in-process thread pool."""

    name = "thread"

    def __init__(self, planner, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ValueError("need at least one planner worker")
        self.planner = planner
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="dcp-plan"
        )

    def submit(self, index: int, batch) -> PlanTicket:
        return PlanTicket(self._pool.submit(_timed_plan, self.planner, batch))

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class ProcessPlannerBackend:
    """Planner workers in separate processes (no GIL sharing at all).

    The planner object is pickled with every job — megabytes below any
    plan, and dwarfed by the planning time it buys back.
    """

    name = "process"

    def __init__(self, planner, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ValueError("need at least one planner worker")
        self.planner = planner
        self.max_workers = max_workers
        self._pool = ProcessPoolExecutor(max_workers=max_workers)

    def submit(self, index: int, batch) -> PlanTicket:
        return PlanTicket(self._pool.submit(_timed_plan, self.planner, batch))

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class KVPlannerBackend:
    """Planning via a :class:`~repro.core.pool.PlannerPool` + KV store.

    The pool publishes each plan under ``plan/<iteration>``;
    :meth:`PlanTicket.result` re-reads it from the store so the yielded
    plan is the genuine round-tripped article every device would see.
    """

    name = "kv"

    def __init__(self, pool, own_pool: bool = False) -> None:
        self.pool = pool
        self.own_pool = own_pool

    def submit(self, index: int, batch) -> PlanTicket:
        pool = self.pool
        inner = pool.submit(index, batch)
        wrapper: Future = Future()

        def _relay(done: Future) -> None:
            try:
                done.result()
                plan = pool.fetch(index)
                start, end = pool.plan_interval(index)
                wrapper.set_result((plan, start, end))
            except BaseException as exc:  # pragma: no cover - defensive
                wrapper.set_exception(exc)

        inner.add_done_callback(_relay)
        return PlanTicket(wrapper)

    def close(self) -> None:
        if self.own_pool:
            self.pool.shutdown()


def make_backend(backend, planner, max_workers: int = 2):
    """Resolve a backend spec: a name, a backend object, or ``None``."""
    if backend is None or not isinstance(backend, str):
        return backend
    if backend == "thread":
        return ThreadPlannerBackend(planner, max_workers=max_workers)
    if backend == "process":
        return ProcessPlannerBackend(planner, max_workers=max_workers)
    raise ValueError(
        f"unknown backend {backend!r}; use 'thread', 'process', or a "
        "backend object (e.g. KVPlannerBackend)"
    )
